//! Wall-clock cost of the balanced orientation phase algorithm (experiment E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distgraph::generators;
use distsim::{Model, Network};
use edgecolor::balanced_orientation::compute_balanced_orientation;
use edgecolor::{OrientationParams, ParamProfile};

fn bench_orientation(c: &mut Criterion) {
    let mut group = c.benchmark_group("balanced_orientation");
    group.sample_size(10);
    for &delta in &[8usize, 16, 32] {
        let bg = generators::regular_bipartite(2 * delta, delta, 3).unwrap();
        let eta = vec![0.0; bg.graph().m()];
        let params = OrientationParams::new(0.5, ParamProfile::Practical);
        group.bench_with_input(BenchmarkId::new("delta", delta), &delta, |b, _| {
            b.iter(|| {
                let mut net = Network::new(bg.graph(), Model::Local);
                compute_balanced_orientation(&bg, &eta, &params, &mut net)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orientation);
criterion_main!(benches);
