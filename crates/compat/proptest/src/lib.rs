//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the `proptest 1` API used by this workspace:
//! the [`proptest!`] macro, `prop_assert*` macros, [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`] and [`test_runner::ProptestConfig`].
//!
//! Cases are generated from a deterministic per-test seed, so failures
//! reproduce across runs. There is **no shrinking**: a failing case is
//! reported as-is. See `crates/compat/README.md` for the full caveat list.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration, errors and the deterministic case RNG.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Per-block configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the offline suite fast while
            // still exercising a meaningful spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result type every generated property body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// A deterministic RNG derived from the test's fully qualified name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test path gives a stable per-test seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An (inclusive) range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1) - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: (*r.end()).max(*r.start()),
            }
        }
    }

    /// Strategy generating `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with sizes drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi <= self.size.lo {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the enclosing property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn flat_map_sees_outer_value((n, v) in (1usize..10).prop_flat_map(|n| {
            collection::vec(0..n, 1..20).prop_map(move |v| (n, v))
        })) {
            prop_assert!(!v.is_empty());
            for &x in &v {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn exact_size_vecs(v in collection::vec(0usize..5, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0usize..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
