//! The fault-injection and asynchrony adversary layer.
//!
//! Every guarantee proved in the paper is stated against the *synchronous*,
//! lossless LOCAL/CONGEST models, but the related line of work
//! (Balliu–Kuhn–Olivetti's quasi-polylog edge coloring, Bernshteyn's
//! `(Δ+1)`-edge coloring) frames round complexity against worst-case message
//! timing. This module provides the adversary the simulator runs those
//! stress scenarios under:
//!
//! * [`FaultPlan`] — a deterministic, seed-driven fault schedule: per-message
//!   drop / duplicate / delay-by-`k`-rounds decisions (global rates with
//!   per-edge overrides), node crash/restart windows, and shard-link
//!   partitions that heal after a configured number of rounds;
//! * [`AsyncScheduler`] — executes a [`NodeProgram`](crate::NodeProgram)
//!   under the plan **plus** adversarial per-inbox message reordering;
//! * [`FaultStats`] — what the adversary actually did to a run, surfaced
//!   through [`Network::fault_stats`](crate::Network::fault_stats) and
//!   [`ProgramRun::faults`](crate::ProgramRun::faults).
//!
//! # Determinism contract
//!
//! Same seed + same plan ⇒ **bit-identical** run, under every
//! [`ExecutionPolicy`](crate::ExecutionPolicy). Two design rules make that
//! hold without any cross-thread coordination:
//!
//! 1. every per-message decision is a pure hash of
//!    `(seed, round, edge, sender)` — never of execution order — so the same
//!    message gets the same fate no matter which worker delivered it;
//! 2. faults are applied to the *canonically ordered* mailboxes the delivery
//!    paths already produce (global sender order, the bit-identity invariant
//!    of the parallel and sharded engines), so the fault layer's input is
//!    identical across policies by construction.
//!
//! Shard-link partitions sever messages between shards of a *reference
//! partition* ([`distshard::bfs_partition`] of the run's graph at the plan's
//! own granularity), not of the executing policy's partition — a
//! `Sequential` run and a `Sharded { 8, .. }` run of the same plan lose
//! exactly the same messages.
//!
//! # Fault semantics
//!
//! Rounds are numbered as charged by the engine (the first delivered round
//! is round 1). For a message delivered (consumed) at round `r`:
//!
//! * **drop** — the message is lost;
//! * **duplicate** — a second copy arrives in the same round, adjacent to
//!   the original;
//! * **delay** — the message arrives `k ∈ {1, …, max}` rounds later,
//!   ordered after the fresh messages of its sender in the arrival round;
//! * **crash window `[at, restart)`** — the node neither steps (strict
//!   layer), sends, nor receives while crashed; on `restart` it resumes
//!   with the state it crashed with (crash-recovery, not reset);
//! * **link partition `[at, at + heal_after)`** — messages between the two
//!   shards are lost while the window is open and flow again once it heals.
//!
//! The base [`Metrics`](crate::Metrics) keep accounting *attempted* traffic
//! (what the algorithm sent), so metrics stay bit-identical across policies
//! even though fewer messages arrive; the adversary's effect is reported
//! separately in [`FaultStats`].

use crate::network::Incoming;
use crate::payload::Payload;
use distgraph::{EdgeId, Graph, NodeId};
use std::any::Any;

/// Per-message fault rates, stored in permille (0..=1000) so decisions are
/// exact integer comparisons with no float-ordering hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultRates {
    /// Probability (in permille) that a message is dropped.
    pub drop_permille: u32,
    /// Probability (in permille) that a message is duplicated.
    pub duplicate_permille: u32,
    /// Probability (in permille) that a message is delayed.
    pub delay_permille: u32,
}

impl FaultRates {
    /// Builds rates from probabilities in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the rates sum to more than 1 (the three fates are mutually
    /// exclusive per message).
    pub fn new(drop: f64, duplicate: f64, delay: f64) -> Self {
        let rates = FaultRates {
            drop_permille: permille(drop),
            duplicate_permille: permille(duplicate),
            delay_permille: permille(delay),
        };
        assert!(
            rates.drop_permille + rates.duplicate_permille + rates.delay_permille <= 1000,
            "drop + duplicate + delay rates must sum to at most 1.0"
        );
        rates
    }

    fn total(&self) -> u32 {
        self.drop_permille + self.duplicate_permille + self.delay_permille
    }
}

/// Converts a probability in `[0, 1]` to permille.
fn permille(rate: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&rate),
        "fault rate {rate} outside [0, 1]"
    );
    (rate * 1000.0).round() as u32
}

/// A node crash/restart window: the node is down for rounds
/// `at <= r < restart`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// First round the node is down.
    pub at: u64,
    /// First round the node is back up (`u64::MAX` = never restarts).
    pub restart: u64,
}

/// A severed shard link: messages between shards `a` and `b` of the plan's
/// reference partition are lost for rounds `at <= r < at + heal_after`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkPartition {
    /// One side of the severed link.
    pub a: usize,
    /// The other side.
    pub b: usize,
    /// First round the link is down.
    pub at: u64,
    /// The link heals after this many rounds (`u64::MAX` = never heals).
    pub heal_after: u64,
}

impl LinkPartition {
    /// Returns `true` if this window severs the (unordered) shard pair
    /// `(x, y)` at `round`.
    fn severs(&self, x: usize, y: usize, round: u64) -> bool {
        let pair_match = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        pair_match && round >= self.at && round - self.at < self.heal_after
    }
}

/// A deterministic, seed-driven fault schedule. See the [module
/// docs](self) for the adversary model and the determinism contract.
///
/// # Examples
///
/// ```
/// use distsim::FaultPlan;
///
/// // 5% drops, 2% duplicates, 3% delays of up to 3 rounds; node 0 crashes
/// // during rounds 2..4; the link between reference shards 0 and 1 is down
/// // for rounds 1..3.
/// let plan = FaultPlan::new(42)
///     .with_drop_rate(0.05)
///     .with_duplicate_rate(0.02)
///     .with_delay_rate(0.03, 3)
///     .with_crash(0usize.into(), 2, 4)
///     .with_partition_granularity(2)
///     .with_link_cut(0, 1, 1, 2);
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    max_delay_rounds: u64,
    per_edge: Vec<(EdgeId, FaultRates)>,
    crashes: Vec<CrashWindow>,
    partitions: Vec<LinkPartition>,
    partition_shards: usize,
    reorder: bool,
}

impl FaultPlan {
    /// A fault-free plan carrying only the seed; compose faults with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: FaultRates::default(),
            max_delay_rounds: 1,
            per_edge: Vec::new(),
            crashes: Vec::new(),
            partitions: Vec::new(),
            partition_shards: 0,
            reorder: false,
        }
    }

    /// Sets the global per-message drop probability.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.rates = FaultRates {
            drop_permille: permille(rate),
            ..self.rates
        };
        assert!(self.rates.total() <= 1000, "fault rates sum to more than 1");
        self
    }

    /// Sets the global per-message duplication probability.
    pub fn with_duplicate_rate(mut self, rate: f64) -> Self {
        self.rates = FaultRates {
            duplicate_permille: permille(rate),
            ..self.rates
        };
        assert!(self.rates.total() <= 1000, "fault rates sum to more than 1");
        self
    }

    /// Sets the global per-message delay probability; a delayed message
    /// arrives `k` rounds late with `k` drawn uniformly (and
    /// deterministically) from `1..=max_rounds`.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is 0.
    pub fn with_delay_rate(mut self, rate: f64, max_rounds: u64) -> Self {
        assert!(max_rounds >= 1, "a delay must be at least one round");
        self.rates = FaultRates {
            delay_permille: permille(rate),
            ..self.rates
        };
        assert!(self.rates.total() <= 1000, "fault rates sum to more than 1");
        self.max_delay_rounds = max_rounds;
        self
    }

    /// Overrides the fault rates for one specific edge (both directions).
    pub fn with_edge_rates(mut self, edge: EdgeId, rates: FaultRates) -> Self {
        self.per_edge.retain(|(e, _)| *e != edge);
        self.per_edge.push((edge, rates));
        self
    }

    /// Crashes `node` for rounds `at <= r < restart`.
    ///
    /// # Panics
    ///
    /// Panics if `restart <= at` (an empty window).
    pub fn with_crash(mut self, node: NodeId, at: u64, restart: u64) -> Self {
        assert!(restart > at, "crash window must cover at least one round");
        self.crashes.push(CrashWindow { node, at, restart });
        self
    }

    /// Sets the granularity of the reference partition link cuts are defined
    /// against: the plan severs links of a deterministic
    /// [`distshard::bfs_partition`] of the run's graph into `shards` shards,
    /// independent of the executing policy.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn with_partition_granularity(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "reference partition needs at least one shard");
        self.partition_shards = shards;
        self
    }

    /// Severs the link between reference shards `a` and `b` for rounds
    /// `at <= r < at + heal_after`. Requires
    /// [`FaultPlan::with_partition_granularity`] to have been set.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is unset, a shard index is out of range, or
    /// `heal_after` is 0.
    pub fn with_link_cut(mut self, a: usize, b: usize, at: u64, heal_after: u64) -> Self {
        assert!(
            self.partition_shards > 0,
            "set with_partition_granularity before cutting links"
        );
        assert!(
            a < self.partition_shards && b < self.partition_shards,
            "link cut ({a}, {b}) outside the {}-shard reference partition",
            self.partition_shards
        );
        assert!(heal_after >= 1, "a link cut must cover at least one round");
        self.partitions.push(LinkPartition {
            a,
            b,
            at,
            heal_after,
        });
        self
    }

    /// Enables adversarial per-inbox message reordering (the
    /// [`AsyncScheduler`] enables this automatically).
    pub fn with_reordering(mut self) -> Self {
        self.reorder = true;
        self
    }

    /// The adversary seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns `true` if `node` is inside a crash window at `round`.
    pub fn is_crashed(&self, node: NodeId, round: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && round >= c.at && round < c.restart)
    }

    /// Returns `true` if any crash window is active at `round`.
    pub fn any_crash_at(&self, round: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| round >= c.at && round < c.restart)
    }

    /// The plan's crash windows.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The plan's global per-message fault rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// The plan's shard-link cuts.
    pub fn link_cuts(&self) -> &[LinkPartition] {
        &self.partitions
    }

    /// Returns `true` if the plan severs any shard links (and therefore
    /// needs a reference partition).
    pub fn has_link_cuts(&self) -> bool {
        self.partition_shards > 0 && !self.partitions.is_empty()
    }

    /// The fate of the message sent by `from` over `edge` and consumed at
    /// `round`: a pure hash of `(seed, round, edge, from)` so the decision
    /// is independent of execution order.
    fn fate(&self, round: u64, edge: EdgeId, from: NodeId) -> Fate {
        let rates = self
            .per_edge
            .iter()
            .find(|(e, _)| *e == edge)
            .map_or(self.rates, |(_, r)| *r);
        if rates.total() == 0 {
            return Fate::Deliver;
        }
        let h = mix(self.seed, round, edge.index() as u64, from.index() as u64);
        let roll = (h % 1000) as u32;
        if roll < rates.drop_permille {
            Fate::Drop
        } else if roll < rates.drop_permille + rates.duplicate_permille {
            Fate::Duplicate
        } else if roll < rates.total() {
            // An independent hash stream picks the delay length.
            let h2 = mix(
                self.seed ^ DELAY_SALT,
                round,
                edge.index() as u64,
                from.index() as u64,
            );
            Fate::Delay(1 + h2 % self.max_delay_rounds)
        } else {
            Fate::Deliver
        }
    }
}

/// What happens to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Deliver,
    Drop,
    Duplicate,
    Delay(u64),
}

const DELAY_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 finalizer: a full-avalanche bijection on `u64`. This is
/// the one hashing primitive every deterministic adversary decision in the
/// workspace derives from (message fates, reorder permutations, the
/// corruption injector of `edgecolor::stabilize`) — pure and
/// order-independent, the root of the determinism-under-faults contract.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Avalanche over the four-part decision key `(seed, round, edge, from)`.
fn mix(seed: u64, round: u64, edge: u64, from: u64) -> u64 {
    splitmix64(
        seed.wrapping_add(round.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(edge.wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add(from.wrapping_mul(0x2545_f491_4f6c_dd1d)),
    )
}

/// What the adversary actually did to a run. All counters are message
/// counts except [`FaultStats::crashed_steps`] (suppressed node steps) and
/// [`FaultStats::reordered_inboxes`] (inboxes permuted by the async
/// scheduler).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages that arrived (including duplicates and released delays).
    pub delivered: u64,
    /// Messages dropped by the rate adversary.
    pub dropped: u64,
    /// Extra copies injected by the duplication adversary.
    pub duplicated: u64,
    /// Messages held back by the delay adversary.
    pub delayed: u64,
    /// Delayed messages that later arrived.
    pub released: u64,
    /// Messages lost because an endpoint was inside a crash window.
    pub crash_dropped: u64,
    /// Node round-steps suppressed by crash windows (strict layer only).
    pub crashed_steps: u64,
    /// Messages lost on severed shard links.
    pub partition_dropped: u64,
    /// Inboxes (with ≥ 2 messages) permuted by the async scheduler.
    pub reordered_inboxes: u64,
}

/// A message held back by the delay adversary.
struct Delayed<M> {
    due: u64,
    target: usize,
    incoming: Incoming<M>,
}

/// The mutable state of an installed [`FaultPlan`]: the delay queue, the
/// lazily built reference partition and the accumulated [`FaultStats`].
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    stats: FaultStats,
    partition: Option<distshard::Partition>,
    /// The delay queue, type-erased because consecutive rounds may exchange
    /// different message types. A round whose message type differs from the
    /// queued one flushes the queue (counted as dropped): a delayed message
    /// can only be delivered into an inbox of its own type. The flush is
    /// deterministic because the sequence of exchanged types is.
    delayed: Option<Box<dyn Any + Send>>,
}

impl FaultState {
    /// Fresh state for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            stats: FaultStats::default(),
            partition: None,
            delayed: None,
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The accumulated adversary effect.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Records suppressed node steps (called by the strict execution layer).
    pub(crate) fn note_crashed_steps(&mut self, count: u64) {
        self.stats.crashed_steps += count;
    }

    /// The per-round crash mask for the strict layer: `mask[v] == true`
    /// means node `v` must not step at `round`. `None` when no crash window
    /// is active (the common case, so rounds without crashes pay nothing).
    pub(crate) fn crash_mask(&self, n: usize, round: u64) -> Option<Vec<bool>> {
        if !self.plan.any_crash_at(round) {
            return None;
        }
        let mut mask = vec![false; n];
        for c in &self.plan.crashes {
            if round >= c.at && round < c.restart && c.node.index() < n {
                mask[c.node.index()] = true;
            }
        }
        Some(mask)
    }

    /// Applies the plan to the canonically ordered mailboxes of the round
    /// consumed at `round`, in place. See the [module docs](self) for the
    /// per-message semantics and the ordering rules.
    ///
    /// The adversary works on materialized per-node inboxes. The fault-free
    /// delivery path never builds those (it seals rounds straight into flat
    /// CSR mailboxes); when a plan is installed, delivery materializes the
    /// boxes from the identical canonical sender order first, so every
    /// adversary decision is policy-independent by construction and the
    /// allocation cost of this generality is only paid under faults.
    pub(crate) fn apply<M: Payload + Send>(
        &mut self,
        graph: &Graph,
        round: u64,
        boxes: &mut [Vec<Incoming<M>>],
    ) {
        // Build the reference partition on first use if link cuts exist.
        if self.plan.has_link_cuts() && self.partition.is_none() {
            self.partition = Some(distshard::bfs_partition(graph, self.plan.partition_shards));
        }

        // Reclaim the (type-erased) delay queue; a message-type switch
        // flushes undeliverable entries. Empty queues are never stored (see
        // the end of this function), so a failing downcast means at least
        // one in-flight message of another type was genuinely lost; its
        // element count is unrecoverable through `Any`, so the flush is
        // counted as one drop event — still deterministic, because the
        // sequence of exchanged message types is.
        let mut queue: Vec<Delayed<M>> = match self.delayed.take() {
            None => Vec::new(),
            Some(boxed) => match boxed.downcast::<Vec<Delayed<M>>>() {
                Ok(q) => *q,
                Err(_stale) => {
                    self.stats.dropped += 1;
                    Vec::new()
                }
            },
        };

        // Release the entries due this round, preserving queue order (the
        // order they were delayed in, which is deterministic).
        let (released, keep): (Vec<Delayed<M>>, Vec<Delayed<M>>) =
            queue.drain(..).partition(|d| d.due <= round);
        queue = keep;

        for (target, inbox) in boxes.iter_mut().enumerate() {
            let target_node = NodeId::new(target);
            let fresh = std::mem::take(inbox);
            for incoming in fresh {
                if lost_in_transit(
                    &self.plan,
                    &self.partition,
                    &mut self.stats,
                    incoming.from,
                    target_node,
                    round,
                ) {
                    continue;
                }
                match self.plan.fate(round, incoming.edge, incoming.from) {
                    Fate::Deliver => {
                        self.stats.delivered += 1;
                        inbox.push(incoming);
                    }
                    Fate::Drop => self.stats.dropped += 1,
                    Fate::Duplicate => {
                        self.stats.delivered += 2;
                        self.stats.duplicated += 1;
                        inbox.push(incoming.clone());
                        inbox.push(incoming);
                    }
                    Fate::Delay(k) => {
                        self.stats.delayed += 1;
                        queue.push(Delayed {
                            due: round + k,
                            target,
                            incoming,
                        });
                    }
                }
            }
        }

        // Inject the released messages (after the fresh ones), then restore
        // the canonical per-inbox sender order: a stable sort keeps fresh
        // messages ahead of released ones from the same sender, and
        // duplicate copies adjacent.
        for d in released {
            // A released message still respects crash windows and severed
            // shard links at its *actual* arrival round: a delay into an
            // open crash/cut window loses the message, exactly like a fresh
            // one would be lost (same filter, same counters).
            if lost_in_transit(
                &self.plan,
                &self.partition,
                &mut self.stats,
                d.incoming.from,
                NodeId::new(d.target),
                round,
            ) {
                continue;
            }
            self.stats.released += 1;
            self.stats.delivered += 1;
            boxes[d.target].push(d.incoming);
        }
        for inbox in boxes.iter_mut() {
            inbox.sort_by_key(|incoming| incoming.from);
        }

        // Adversarial reordering: a seeded permutation per inbox, keyed by
        // (seed, round, target) — identical across execution policies.
        if self.plan.reorder {
            for (target, inbox) in boxes.iter_mut().enumerate() {
                if inbox.len() < 2 {
                    continue;
                }
                self.stats.reordered_inboxes += 1;
                // Fisher–Yates with hash-derived indices.
                for j in (1..inbox.len()).rev() {
                    let h = mix(
                        self.plan.seed ^ REORDER_SALT,
                        round,
                        target as u64,
                        j as u64,
                    );
                    inbox.swap(j, (h % (j as u64 + 1)) as usize);
                }
            }
        }

        // Never store an empty queue: a later round of a *different*
        // message type would fail the downcast and count a phantom drop.
        self.delayed = if queue.is_empty() {
            None
        } else {
            Some(Box::new(queue))
        };
    }
}

const REORDER_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// The transit-loss filter applied to every message — fresh or released
/// from the delay queue — at its delivery round: crash windows on either
/// endpoint, then severed shard links of the reference partition. Returns
/// `true` (and counts the loss) when the message must not arrive. One
/// function for both delivery loops, so fresh and delayed messages can
/// never diverge in loss semantics.
fn lost_in_transit(
    plan: &FaultPlan,
    partition: &Option<distshard::Partition>,
    stats: &mut FaultStats,
    from: NodeId,
    target: NodeId,
    round: u64,
) -> bool {
    if plan.is_crashed(target, round) || plan.is_crashed(from, round) {
        stats.crash_dropped += 1;
        return true;
    }
    if let Some(partition) = partition {
        let (sf, st) = (partition.shard_of(from), partition.shard_of(target));
        if plan.partitions.iter().any(|p| p.severs(sf, st, round)) {
            stats.partition_dropped += 1;
            return true;
        }
    }
    false
}

/// Executes node programs under a [`FaultPlan`] **plus** adversarial
/// message reordering — the asynchrony adversary: message arrival order
/// within a round carries no information, exactly as in an asynchronous
/// execution that has been normalized round-by-round.
///
/// The determinism contract is unchanged: same seed + plan ⇒ bit-identical
/// outputs, metrics and fault stats under every execution policy (see
/// `crates/sim/tests/fault_determinism.rs`).
///
/// # Examples
///
/// ```
/// use distgraph::{generators, EdgeId};
/// use distsim::{
///     AsyncScheduler, ExecutionPolicy, FaultPlan, IdAssignment, Incoming, Model, NodeCtx,
///     NodeProgram, Step,
/// };
///
/// // Each node broadcasts once, then halts with its received-message count.
/// struct CountInbox;
/// impl NodeProgram for CountInbox {
///     type Msg = u32;
///     type Output = usize;
///     fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u32)> {
///         ctx.ports.iter().map(|p| (p.edge, 1)).collect()
///     }
///     fn round(&mut self, _ctx: &NodeCtx, inbox: &[Incoming<u32>]) -> Step<u32, usize> {
///         Step::Halt(inbox.len())
///     }
/// }
///
/// let g = generators::cycle(8);
/// let ids = IdAssignment::contiguous(8);
/// let scheduler = AsyncScheduler::new(FaultPlan::new(7).with_drop_rate(0.2));
/// let run = scheduler.run_program(
///     &g,
///     &ids,
///     Model::Local,
///     ExecutionPolicy::Sequential,
///     4,
///     |_| CountInbox,
/// );
/// let stats = run.faults.expect("faulty run carries stats");
/// assert_eq!(stats.delivered + stats.dropped, 2 * g.m() as u64);
/// ```
#[derive(Debug, Clone)]
pub struct AsyncScheduler {
    plan: FaultPlan,
}

impl AsyncScheduler {
    /// A scheduler for `plan`, with reordering force-enabled.
    pub fn new(plan: FaultPlan) -> Self {
        AsyncScheduler {
            plan: plan.with_reordering(),
        }
    }

    /// The plan the scheduler executes under (reordering enabled).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Runs `make_program` instances on every node of `graph` under the
    /// scheduler's plan; see
    /// [`run_program_under_faults`](crate::run_program_under_faults).
    pub fn run_program<P, F>(
        &self,
        graph: &Graph,
        ids: &crate::IdAssignment,
        model: crate::Model,
        policy: crate::ExecutionPolicy,
        max_rounds: u64,
        make_program: F,
    ) -> crate::ProgramRun<P::Output>
    where
        P: crate::NodeProgram + Send,
        P::Msg: Send + Sync,
        P::Output: Send,
        F: FnMut(NodeId) -> P,
    {
        crate::run_program_under_faults(
            graph,
            ids,
            model,
            policy,
            max_rounds,
            self.plan.clone(),
            make_program,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_validate_and_convert() {
        let r = FaultRates::new(0.05, 0.02, 0.03);
        assert_eq!(r.drop_permille, 50);
        assert_eq!(r.duplicate_permille, 20);
        assert_eq!(r.delay_permille, 30);
        assert_eq!(r.total(), 100);
        assert!(std::panic::catch_unwind(|| FaultRates::new(0.6, 0.3, 0.2)).is_err());
        assert!(std::panic::catch_unwind(|| FaultRates::new(-0.1, 0.0, 0.0)).is_err());
    }

    #[test]
    fn plan_builder_composes() {
        let plan = FaultPlan::new(9)
            .with_drop_rate(0.1)
            .with_duplicate_rate(0.1)
            .with_delay_rate(0.1, 4)
            .with_crash(NodeId::new(3), 2, 5)
            .with_partition_granularity(4)
            .with_link_cut(0, 3, 1, 2)
            .with_reordering();
        assert_eq!(plan.seed(), 9);
        assert!(plan.is_crashed(NodeId::new(3), 2));
        assert!(plan.is_crashed(NodeId::new(3), 4));
        assert!(!plan.is_crashed(NodeId::new(3), 5));
        assert!(!plan.is_crashed(NodeId::new(2), 3));
        assert!(plan.any_crash_at(4));
        assert!(!plan.any_crash_at(7));
        assert!(plan.has_link_cuts());
        assert_eq!(plan.crashes().len(), 1);
    }

    #[test]
    fn builder_rejects_invalid_windows() {
        assert!(std::panic::catch_unwind(|| {
            FaultPlan::new(0).with_crash(NodeId::new(0), 3, 3)
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| FaultPlan::new(0).with_link_cut(0, 1, 0, 1)).is_err());
        assert!(std::panic::catch_unwind(|| {
            FaultPlan::new(0)
                .with_partition_granularity(2)
                .with_link_cut(0, 2, 0, 1)
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| FaultPlan::new(0).with_delay_rate(0.1, 0)).is_err());
    }

    #[test]
    fn link_partition_windows_heal() {
        let p = LinkPartition {
            a: 0,
            b: 2,
            at: 3,
            heal_after: 2,
        };
        assert!(!p.severs(0, 2, 2));
        assert!(p.severs(0, 2, 3));
        assert!(p.severs(2, 0, 4)); // symmetric
        assert!(!p.severs(0, 2, 5)); // healed
        assert!(!p.severs(0, 1, 3)); // different pair
    }

    #[test]
    fn fate_is_pure_and_spreads() {
        let plan = FaultPlan::new(1)
            .with_drop_rate(0.3)
            .with_duplicate_rate(0.1)
            .with_delay_rate(0.1, 3);
        let mut counts = [0usize; 4];
        for e in 0..500 {
            for r in 1..5u64 {
                let fate = plan.fate(r, EdgeId::new(e), NodeId::new(e % 7));
                // Purity: the same key re-evaluates to the same fate.
                assert_eq!(fate, plan.fate(r, EdgeId::new(e), NodeId::new(e % 7)));
                match fate {
                    Fate::Deliver => counts[0] += 1,
                    Fate::Drop => counts[1] += 1,
                    Fate::Duplicate => counts[2] += 1,
                    Fate::Delay(k) => {
                        assert!((1..=3).contains(&k));
                        counts[3] += 1;
                    }
                }
            }
        }
        // 2000 samples at 30/10/10% rates: each bucket must be populated
        // and roughly proportioned (very loose bounds, no flakiness).
        assert!(counts[0] > 800, "deliver {counts:?}");
        assert!(counts[1] > 400, "drop {counts:?}");
        assert!(counts[2] > 100, "duplicate {counts:?}");
        assert!(counts[3] > 100, "delay {counts:?}");
    }

    #[test]
    fn per_edge_overrides_take_precedence() {
        let plan =
            FaultPlan::new(5).with_edge_rates(EdgeId::new(7), FaultRates::new(1.0, 0.0, 0.0));
        // Edge 7 always drops; any other edge always delivers.
        for r in 1..20 {
            assert_eq!(plan.fate(r, EdgeId::new(7), NodeId::new(0)), Fate::Drop);
            assert_eq!(plan.fate(r, EdgeId::new(8), NodeId::new(0)), Fate::Deliver);
        }
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let plan = FaultPlan::new(123);
        for r in 0..50 {
            assert_eq!(
                plan.fate(r, EdgeId::new(r as usize), NodeId::new(1)),
                Fate::Deliver
            );
        }
    }
}
