//! Parameter profiles and the parameter formulas of Sections 4 and 5.
//!
//! The paper's guarantees are asymptotic: the additive slack of the balanced
//! orientation is `β = Θ(log³ Δ̄ / ε⁵)` (Theorem 5.6) and several thresholds
//! compare edge degrees against `β/ε`. For the graph sizes a simulation can
//! handle (Δ up to a few thousand), the literal constants put the algorithm
//! permanently below those thresholds, so in addition to the literal
//! [`ParamProfile::Paper`] constants we provide a [`ParamProfile::Practical`]
//! profile with the same *formulas* but smaller constant factors, which lets
//! the recursive machinery engage at moderate degrees. All correctness
//! properties (properness, list compliance) hold for both profiles; the
//! defect/slack *bounds* are guaranteed only for the paper profile and are
//! measured empirically for the practical one (see DESIGN.md, substitutions).

use distsim::ExecutionPolicy;
use serde::{Deserialize, Serialize};

/// Which constant-factor regime to use for the paper's parameter formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ParamProfile {
    /// The literal constants of Equations (4)–(7) of the paper.
    Paper,
    /// The same formulas with the `log Δ̄` factors and the small leading
    /// constants removed, so that the divide-and-conquer recursion is
    /// exercised at simulation-scale degrees.
    #[default]
    Practical,
}

/// Parameters of the Section 5 balanced-orientation algorithm for a fixed
/// target `ε` and maximum edge degree `Δ̄`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrientationParams {
    /// The target `ε` of Definition 5.2 / Theorem 5.6.
    pub eps: f64,
    /// The phase parameter `ν` (Equation (4): `0 < ν ≤ 1/8`); the paper sets
    /// `ε = 8ν`.
    pub nu: f64,
    /// The constant-factor profile.
    pub profile: ParamProfile,
    /// How the per-round node work of the orientation machinery (including
    /// its token dropping games) is executed. Does not affect results, only
    /// wall-clock time.
    pub policy: ExecutionPolicy,
}

impl OrientationParams {
    /// Creates the parameters for a target `ε ∈ (0, 1]` (clamped) and profile.
    pub fn new(eps: f64, profile: ParamProfile) -> Self {
        let eps = eps.clamp(1e-6, 1.0);
        // Equation (4): ν ≤ 1/8, and the analysis sets ε = 8ν.
        let nu = (eps / 8.0).clamp(1e-7, 0.125);
        OrientationParams {
            eps,
            nu,
            profile,
            policy: ExecutionPolicy::Sequential,
        }
    }

    /// Same parameters with a different execution policy.
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Natural logarithm of Δ̄, floored at 1 so the formulas never divide by 0.
    fn ln_dbar(delta_bar: usize) -> f64 {
        (delta_bar.max(3) as f64).ln().max(1.0)
    }

    /// The per-node slack-control parameter `α_v(φ)` of Equation (5):
    /// `max{1, ¼ · ν²/ln Δ̄ · (d⁻_φ(v) + 1)}`.
    ///
    /// `d_minus` is `d⁻_φ(v)`, the minimum `deg_G(e)` over the edges incident
    /// to `v` that are already oriented (use 0 if there is none).
    pub fn alpha(&self, d_minus: usize, delta_bar: usize) -> usize {
        let value = match self.profile {
            ParamProfile::Paper => {
                0.25 * self.nu * self.nu / Self::ln_dbar(delta_bar) * (d_minus as f64 + 1.0)
            }
            ParamProfile::Practical => 0.25 * self.nu * (d_minus as f64 + 1.0),
        };
        (value.floor() as usize).max(1)
    }

    /// The token budget `k_φ = ⌈ν (1−ν)^{φ−1} Δ̄⌉` of step 3 of the phase
    /// algorithm (`phi` is 1-based).
    pub fn k_phi(&self, phi: u32, delta_bar: usize) -> usize {
        let value = self.nu * (1.0 - self.nu).powi(phi as i32 - 1) * delta_bar as f64;
        (value.ceil() as usize).max(1)
    }

    /// The token-dropping granularity `δ_φ` of Equation (6):
    /// `max{1, ⌊ 1/16 · ν⁶/ln³ Δ̄ · (1−ν)^{φ−1} Δ̄ ⌋}`.
    pub fn delta_phi(&self, phi: u32, delta_bar: usize) -> usize {
        let decay = (1.0 - self.nu).powi(phi as i32 - 1) * delta_bar as f64;
        let value = match self.profile {
            ParamProfile::Paper => {
                let ln3 = Self::ln_dbar(delta_bar).powi(3);
                self.nu.powi(6) / (16.0 * ln3) * decay
            }
            ParamProfile::Practical => self.nu * self.nu / 16.0 * decay,
        };
        (value.floor() as usize).max(1)
    }

    /// The number of phases `φ̂` after which every node has `O(1)` unoriented
    /// incident edges: the smallest `φ` with `(1−ν)^φ Δ̄ < 1` (Theorem 5.6).
    pub fn phase_count(&self, delta_bar: usize) -> u32 {
        if delta_bar <= 1 {
            return 1;
        }
        let phases = (delta_bar as f64).ln() / -(1.0 - self.nu).ln();
        (phases.ceil() as u32).max(1) + 1
    }

    /// The additive slack `β` guaranteed by Theorem 5.6 for the *paper*
    /// profile: `C · ln³ Δ̄ / ε⁵` (with the explicit constants of the proof,
    /// `β = 4 + 7/2 + 28 · ln³ Δ̄ / ν⁵` before substituting `ε = 8ν`).
    ///
    /// For the practical profile the same proof with the practical `α`/`δ`
    /// yields a weaker analytic bound; the returned value is that weaker
    /// bound, and experiments additionally record the *measured* slack.
    pub fn beta_bound(&self, delta_bar: usize) -> f64 {
        let ln = Self::ln_dbar(delta_bar);
        match self.profile {
            ParamProfile::Paper => 7.5 + 28.0 * ln.powi(3) / self.nu.powi(5),
            // With α ≈ ν d/4 and δ ≈ ν² (1−ν)^{φ−1} Δ̄ / 16, the per-phase
            // slack of Theorem 4.3 is ≈ ν·deg(e) + (1−ν)^{φ−1} Δ̄ (16/ν² + 8/ν)·(ν²/16);
            // summed over the φ̂ = O(log Δ̄ / ν) phases the degree-independent
            // part telescopes to ≈ Δ̄·(1 + ν/2)/ν · ν²/16 ≈ ν Δ̄ / 8, so the
            // additive bound is Θ(ν Δ̄) + O(1/ν).
            ParamProfile::Practical => 7.5 + self.nu * delta_bar as f64 / 4.0 + 16.0 / self.nu,
        }
    }

    /// `k_e = ⌈ν/(1−ν) · deg_G(e)⌉` from Equation (7).
    pub fn k_e(&self, edge_degree: usize) -> f64 {
        (self.nu / (1.0 - self.nu) * edge_degree as f64).ceil()
    }

    /// `ξ_e = 5/2 · ν/ln Δ̄ · k_e + 28 · ln² Δ̄ / ν⁴` from Equation (7)
    /// (paper profile; the practical profile uses the analogous expression
    /// with its `α`/`δ` choices).
    pub fn xi_e(&self, edge_degree: usize, delta_bar: usize) -> f64 {
        let ln = Self::ln_dbar(delta_bar);
        match self.profile {
            ParamProfile::Paper => {
                2.5 * self.nu / ln * self.k_e(edge_degree) + 28.0 * ln * ln / self.nu.powi(4)
            }
            ParamProfile::Practical => self.nu * edge_degree as f64 + 16.0 / (self.nu * self.nu),
        }
    }
}

/// Parameters for the higher-level coloring algorithms (Sections 6, 7 and
/// Appendices C, D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColoringParams {
    /// Target `ε` of the headline bounds ((8+ε)Δ, (2+ε)Δ, list slack loss).
    pub eps: f64,
    /// Constant-factor profile for the orientation machinery.
    pub profile: ParamProfile,
    /// Degree cutoff below which recursions stop splitting and color greedily.
    ///
    /// The paper stops splitting when an edge's degree falls below `β/ε`
    /// (Lemma D.1 requires `d(e) ≥ β/ε`); this field is that threshold for the
    /// practical profile, where the literal `β/ε` would exceed any simulated
    /// degree.
    pub low_degree_cutoff: usize,
    /// Safety cap on outer iterations (the theory needs `O(log Δ)`; the cap is
    /// generous so that it never binds unless something is wrong).
    pub max_outer_iterations: u32,
    /// How the simulator executes each round's per-node work:
    /// [`ExecutionPolicy::Sequential`], a worker pool
    /// (`Parallel { threads }`) or the partitioned substrate
    /// (`Sharded { shards, threads }`, which runs rounds shard-locally and
    /// batches cross-shard boundary messages). The produced colorings,
    /// metrics and mailboxes are bit-identical under every policy; only
    /// wall-clock time and the delivery route change.
    pub policy: ExecutionPolicy,
}

impl ColoringParams {
    /// Parameters for a target `ε` with the default (practical) profile.
    pub fn new(eps: f64) -> Self {
        ColoringParams {
            eps: eps.clamp(1e-6, 1.0),
            profile: ParamProfile::Practical,
            low_degree_cutoff: 16,
            max_outer_iterations: 64,
            policy: ExecutionPolicy::Sequential,
        }
    }

    /// Same parameters but with the literal paper constants.
    pub fn paper(eps: f64) -> Self {
        ColoringParams {
            profile: ParamProfile::Paper,
            ..Self::new(eps)
        }
    }

    /// Same parameters with a different execution policy.
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The orientation parameters induced by these coloring parameters for a
    /// given per-level `ε` value (the execution policy is inherited).
    pub fn orientation(&self, eps: f64) -> OrientationParams {
        OrientationParams::new(eps, self.profile).with_policy(self.policy)
    }

    /// The degree threshold below which an edge stops being split further.
    ///
    /// Paper profile: `β/ε` as in Lemma D.1; practical profile: the fixed
    /// cutoff.
    pub fn split_cutoff(&self, delta_bar: usize, eps: f64) -> usize {
        match self.profile {
            ParamProfile::Paper => {
                let beta = OrientationParams::new(eps, self.profile).beta_bound(delta_bar);
                ((beta / eps.max(1e-9)).ceil() as usize).max(self.low_degree_cutoff)
            }
            ParamProfile::Practical => self.low_degree_cutoff,
        }
    }
}

impl Default for ColoringParams {
    fn default() -> Self {
        ColoringParams::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nu_is_clamped_to_one_eighth() {
        let p = OrientationParams::new(2.0, ParamProfile::Paper);
        assert!(p.nu <= 0.125 + 1e-12);
        assert!(p.eps <= 1.0);
        let tiny = OrientationParams::new(-1.0, ParamProfile::Paper);
        assert!(tiny.nu > 0.0);
    }

    #[test]
    fn alpha_is_at_least_one_and_monotone_in_dminus() {
        let p = OrientationParams::new(0.5, ParamProfile::Paper);
        assert_eq!(p.alpha(0, 100), 1);
        let a_small = p.alpha(10, 1000);
        let a_big = p.alpha(100_000, 1000);
        assert!(a_big >= a_small);
        assert!(a_small >= 1);
        // the practical profile reaches larger alphas at the same degree
        let pr = OrientationParams::new(0.5, ParamProfile::Practical);
        assert!(pr.alpha(1000, 1000) >= p.alpha(1000, 1000));
    }

    #[test]
    fn k_phi_decays_geometrically() {
        let p = OrientationParams::new(0.8, ParamProfile::Paper);
        let k1 = p.k_phi(1, 1000);
        let k5 = p.k_phi(5, 1000);
        let k50 = p.k_phi(50, 1000);
        assert!(k1 >= k5);
        assert!(k5 >= k50);
        assert!(k50 >= 1);
        assert_eq!(k1, (p.nu * 1000.0).ceil() as usize);
    }

    #[test]
    fn delta_phi_is_at_least_one() {
        for profile in [ParamProfile::Paper, ParamProfile::Practical] {
            let p = OrientationParams::new(0.5, profile);
            for phi in 1..20 {
                assert!(p.delta_phi(phi, 500) >= 1);
            }
        }
    }

    #[test]
    fn delta_phi_never_exceeds_alpha_requirement_regime() {
        // Lemma 5.5 needs α_v(φ) ≥ δ_φ for nodes incident to previously
        // oriented edges (whose degree is ≥ (1−ν)^{φ−1} Δ̄). Check the formulas
        // satisfy this for representative values.
        for profile in [ParamProfile::Paper, ParamProfile::Practical] {
            let p = OrientationParams::new(1.0, profile);
            let delta_bar = 4096;
            for phi in 1..p.phase_count(delta_bar) {
                let d_minus = ((1.0 - p.nu).powi(phi as i32 - 1) * delta_bar as f64) as usize;
                assert!(
                    p.alpha(d_minus, delta_bar) >= p.delta_phi(phi, delta_bar),
                    "alpha < delta at phase {phi} for {profile:?}"
                );
            }
        }
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let p = OrientationParams::new(0.8, ParamProfile::Paper);
        let small = p.phase_count(8);
        let large = p.phase_count(8192);
        assert!(large > small);
        // roughly ln(Δ̄)/ν phases
        assert!(large as f64 <= (8192f64).ln() / p.nu * 1.5 + 2.0);
        assert_eq!(p.phase_count(1), 1);
    }

    #[test]
    fn beta_bound_profiles_differ() {
        let paper = OrientationParams::new(0.5, ParamProfile::Paper);
        let practical = OrientationParams::new(0.5, ParamProfile::Practical);
        // The paper bound is astronomically larger at moderate Δ̄.
        assert!(paper.beta_bound(256) > practical.beta_bound(256));
        assert!(paper.beta_bound(256) > 1e6);
        assert!(practical.beta_bound(256) < 1e4);
    }

    #[test]
    fn xi_and_ke_are_positive() {
        for profile in [ParamProfile::Paper, ParamProfile::Practical] {
            let p = OrientationParams::new(0.3, profile);
            assert!(p.k_e(100) >= 1.0);
            assert!(p.xi_e(100, 256) > 0.0);
        }
    }

    #[test]
    fn coloring_params_constructors() {
        let c = ColoringParams::new(0.5);
        assert_eq!(c.profile, ParamProfile::Practical);
        let p = ColoringParams::paper(0.5);
        assert_eq!(p.profile, ParamProfile::Paper);
        assert_eq!(ColoringParams::default().profile, ParamProfile::Practical);
        assert!(c.orientation(0.25).nu > 0.0);
    }

    #[test]
    fn execution_policy_defaults_and_propagates() {
        let c = ColoringParams::new(0.5);
        assert_eq!(c.policy, ExecutionPolicy::Sequential);
        let par = c.with_policy(ExecutionPolicy::parallel(4));
        assert_eq!(par.policy, ExecutionPolicy::parallel(4));
        // The induced orientation parameters inherit the policy.
        assert_eq!(par.orientation(0.25).policy, ExecutionPolicy::parallel(4));
        let o =
            OrientationParams::new(0.5, ParamProfile::Paper).with_policy(ExecutionPolicy::auto());
        assert!(o.policy.threads() >= 1);
    }

    #[test]
    fn split_cutoff_reflects_profile() {
        let practical = ColoringParams::new(0.5);
        assert_eq!(
            practical.split_cutoff(1000, 0.5),
            practical.low_degree_cutoff
        );
        let paper = ColoringParams::paper(0.5);
        assert!(paper.split_cutoff(1000, 0.5) > 1000);
    }
}
