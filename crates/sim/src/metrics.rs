//! Round, message and bandwidth accounting.
//!
//! Every quantitative claim of the paper is about the number of synchronous
//! communication rounds (and, in the CONGEST model, the size of the messages).
//! [`Metrics`] is the single place where those quantities are accumulated.

use serde::{Deserialize, Serialize};

/// Accumulated cost of a (partial) distributed execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of synchronous communication rounds.
    pub rounds: u64,
    /// Total number of messages sent over all rounds.
    pub messages: u64,
    /// Total number of bits sent over all rounds.
    pub total_bits: u64,
    /// The largest single message, in bits.
    pub max_message_bits: u64,
    /// Number of messages that exceeded the CONGEST bandwidth limit
    /// (always 0 in the LOCAL model).
    pub congest_violations: u64,
}

impl Metrics {
    /// A fresh, all-zero metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one message of the given size.
    pub fn record_message(&mut self, bits: u64, bandwidth_limit: Option<u64>) {
        self.messages += 1;
        self.total_bits += bits;
        self.max_message_bits = self.max_message_bits.max(bits);
        if let Some(limit) = bandwidth_limit {
            if bits > limit {
                self.congest_violations += 1;
            }
        }
    }

    /// Folds another metrics block's per-message costs (messages, bits,
    /// size maximum, violations) into this one **without touching rounds**:
    /// the merge the round engines apply to per-chunk / per-shard workers of
    /// a single round, whose round was already charged once by the caller.
    /// Sums and maxima only, so the fold is order-independent — the root of
    /// the bit-identity guarantee for metrics.
    pub fn fold_costs(&mut self, other: &Metrics) {
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.congest_violations += other.congest_violations;
    }

    /// Adds the cost of another execution that ran *after* this one
    /// (sequential composition): rounds add up.
    pub fn absorb_sequential(&mut self, other: &Metrics) {
        self.rounds += other.rounds;
        self.fold_costs(other);
    }

    /// Adds the cost of several executions that ran *in parallel* with each
    /// other (parallel composition, e.g. recursively coloring edge-disjoint
    /// subgraphs): rounds increase by the maximum of the children, messages
    /// and bits by the sum.
    pub fn absorb_parallel(&mut self, children: &[Metrics]) {
        let max_rounds = children.iter().map(|c| c.rounds).max().unwrap_or(0);
        self.rounds += max_rounds;
        for c in children {
            self.fold_costs(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_message_tracks_totals_and_max() {
        let mut m = Metrics::new();
        m.record_message(10, None);
        m.record_message(4, None);
        assert_eq!(m.messages, 2);
        assert_eq!(m.total_bits, 14);
        assert_eq!(m.max_message_bits, 10);
        assert_eq!(m.congest_violations, 0);
    }

    #[test]
    fn record_message_flags_congest_violations() {
        let mut m = Metrics::new();
        m.record_message(10, Some(8));
        m.record_message(8, Some(8));
        assert_eq!(m.congest_violations, 1);
    }

    #[test]
    fn sequential_composition_adds_rounds() {
        let mut a = Metrics {
            rounds: 3,
            messages: 5,
            total_bits: 50,
            max_message_bits: 20,
            congest_violations: 1,
        };
        let b = Metrics {
            rounds: 2,
            messages: 1,
            total_bits: 30,
            max_message_bits: 30,
            congest_violations: 0,
        };
        a.absorb_sequential(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 6);
        assert_eq!(a.total_bits, 80);
        assert_eq!(a.max_message_bits, 30);
        assert_eq!(a.congest_violations, 1);
    }

    #[test]
    fn parallel_composition_takes_max_rounds() {
        let mut base = Metrics::new();
        let children = [
            Metrics {
                rounds: 7,
                messages: 10,
                total_bits: 100,
                max_message_bits: 12,
                congest_violations: 0,
            },
            Metrics {
                rounds: 3,
                messages: 20,
                total_bits: 200,
                max_message_bits: 16,
                congest_violations: 2,
            },
        ];
        base.absorb_parallel(&children);
        assert_eq!(base.rounds, 7);
        assert_eq!(base.messages, 30);
        assert_eq!(base.total_bits, 300);
        assert_eq!(base.max_message_bits, 16);
        assert_eq!(base.congest_violations, 2);
    }

    #[test]
    fn parallel_composition_with_no_children_is_noop() {
        let mut base = Metrics {
            rounds: 1,
            ..Metrics::new()
        };
        base.absorb_parallel(&[]);
        assert_eq!(base.rounds, 1);
        assert_eq!(base.messages, 0);
    }
}
