//! Out-of-core snapshot walkthrough: the three load paths side by side.
//!
//! Generates a torus, writes it as a text edge list and as a binary
//! snapshot (with an RCM reordering permutation attached), then times the
//! three ways of getting it back:
//!
//! 1. text parse (`read_edge_list` → `Graph::from_edges`),
//! 2. binary decode (`Snapshot::open` → `LoadedSnapshot` → `Graph`),
//! 3. zero-copy open (`Snapshot::open` → `SnapshotView`, no materialization),
//!
//! and finishes by driving a simulator round from the materialized
//! snapshot. Run with:
//!
//! ```text
//! cargo run --release --example snapshot_io            # 100×50 torus
//! cargo run --release --example snapshot_io 1000 500   # the bench's million-edge torus
//! ```

use distgraph::{generators, reorder_permutation, NodeId, ReorderStrategy};
use distsim::{ExecutionPolicy, Model};
use diststore::{read_edge_list, write_edge_list, LoadedSnapshot, Snapshot, SnapshotSource};
use std::time::Instant;

fn main() -> Result<(), diststore::SnapshotError> {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let cols: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    let graph = generators::grid_torus(rows, cols);
    println!(
        "grid_torus({rows}x{cols}): n = {}, m = {}, Δ = {}",
        graph.n(),
        graph.m(),
        graph.max_degree()
    );

    // Reorder for locality and keep the permutation in the snapshot, so the
    // original node ids stay recoverable (`SnapshotView::original_id`).
    let perm = reorder_permutation(&graph, ReorderStrategy::Rcm);
    let reordered = graph.renumber_nodes(&perm);

    let dir = std::env::temp_dir();
    let txt = dir.join(format!("snapshot_io_{}.txt", std::process::id()));
    let snap = dir.join(format!("snapshot_io_{}.snap", std::process::id()));
    write_edge_list(&reordered, &txt)?;
    SnapshotSource::graph(&reordered)
        .with_permutation(&perm)
        .write_to(&snap)?;
    let size = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    println!(
        "on disk: text {:.2} MiB, snapshot {:.2} MiB",
        size(&txt) as f64 / 1048576.0,
        size(&snap) as f64 / 1048576.0
    );

    // Path 1: text parse.
    let started = Instant::now();
    let parsed = read_edge_list(&txt)?;
    let text_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(parsed, reordered);
    println!("text parse:     {text_ms:8.1} ms");

    // Path 2: binary decode (open + validate + materialize a Graph).
    let started = Instant::now();
    let snapshot = Snapshot::open(&snap)?;
    let open_ms = started.elapsed().as_secs_f64() * 1e3;
    let loaded = LoadedSnapshot::load(&snapshot)?;
    let decode_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(loaded.graph(), &reordered);
    println!(
        "binary decode:  {decode_ms:8.1} ms   ({text_ms:.0} ms / {decode_ms:.0} ms = {:.1}x)",
        text_ms / decode_ms
    );

    // Path 3: zero-copy open — the view serves point queries straight from
    // the file bytes; nothing was deserialized.
    let view = snapshot.view();
    let probe = NodeId::new(0);
    assert_eq!(view.degree(probe), reordered.degree(probe));
    assert_eq!(view.original_id(probe), Some(perm.old_id(probe)));
    println!(
        "zero-copy open: {open_ms:8.1} ms   ({text_ms:.0} ms / {open_ms:.0} ms = {:.1}x)",
        text_ms / open_ms
    );

    // The materialized snapshot drives the simulator directly.
    let mut net = loaded.network(Model::Local, ExecutionPolicy::Sequential);
    net.broadcast(|v| loaded.graph().degree(v) as u64);
    println!(
        "one broadcast round from the snapshot: rounds = {}",
        net.rounds()
    );

    std::fs::remove_file(&txt).ok();
    std::fs::remove_file(&snap).ok();
    Ok(())
}
