//! The daemon's state machine: epoch-published graph + coloring, admission
//! control, per-tick batch coalescing and snapshot hot-swap.
//!
//! # Concurrency contract
//!
//! The served state lives in an immutable [`EpochState`] behind
//! `RwLock<Arc<EpochState>>`. Readers clone the `Arc` under a briefly held
//! read lock and then answer entirely off that pinned state — an in-flight
//! read always observes one consistent `(epoch, version)` pair, never a torn
//! mix, even while a tick or hot swap publishes a successor. Writers
//! (`tick`, `swap`) serialize on a dedicated mutex, build the successor
//! state *off to the side* on clones, and publish it with one pointer swap.
//!
//! # Admission control
//!
//! Submissions pass through a bounded queue with full validation at the
//! door: every delete must name a live stable id not already spoken for,
//! every insert a non-loop, in-range endpoint pair that is neither live
//! (unless its live edge is pending deletion) nor already pending. The
//! rules exactly mirror [`DynamicGraph::apply`]'s batch validation, so the
//! per-tick coalesced batch — all admitted deletes, then all admitted
//! inserts, in admission order — is always accepted by `apply`, and
//! admission order equals application order. Overflow and quiesced states
//! answer with typed [`RejectCode`]s instead of errors.
//!
//! # Lock order
//!
//! `writer → pending → state`. Admission takes `pending → state(read)`,
//! reads take `state(read)` only; no path acquires them in the opposite
//! order, so the hierarchy is deadlock-free.

use crate::error::SetupError;
use crate::wire::{LookupOutcome, MetricsReport, RejectCode, Request, Response};
use distgraph::{DynamicGraph, EdgeColoring, EdgeId, Graph, NodeId, UpdateBatch};
use distshard::bfs_partition;
use distsim::{ExecutionPolicy, IdAssignment};
use diststore::{LoadedSnapshot, Snapshot};
use edgecolor::{default_palette, ColoringParams, Recoloring, SelfStabilizing};
use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for a serving session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum admitted-but-unapplied batches before submissions are
    /// rejected with [`RejectCode::QueueFull`].
    pub queue_capacity: usize,
    /// Background tick period. `None` runs no tick thread — batches apply
    /// on `Flush` requests or explicit [`ServerCore::tick`] calls (the mode
    /// the deterministic tests drive).
    pub tick_interval_ms: Option<u64>,
    /// Δ-growth headroom provisioned into the palette budget
    /// ([`Recoloring::with_budget`] semantics): the initial budget is
    /// `2(Δ + headroom) − 1`.
    pub headroom: usize,
    /// Target ε of the coloring parameters.
    pub eps: f64,
    /// Execution policy for repair passes (the `distsim` policy knob).
    pub policy: ExecutionPolicy,
    /// Seed of the scattered node-id assignment.
    pub id_seed: u64,
    /// Optional full-sweep period for the self-stabilization layer
    /// ([`SelfStabilizing::with_full_sweep_every`]).
    pub full_sweep_every: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            tick_interval_ms: Some(2),
            headroom: 2,
            eps: 0.5,
            policy: ExecutionPolicy::Sequential,
            id_seed: 1,
            full_sweep_every: None,
        }
    }
}

/// One immutable published generation of served state. Everything a read
/// needs — graph, coloring, ids — is reachable from one `Arc`, so a reader
/// holding it observes a single consistent generation.
#[derive(Debug, Clone)]
pub struct EpochState {
    epoch: u64,
    version: u64,
    dg: DynamicGraph,
    stab: SelfStabilizing,
    ids: Arc<IdAssignment>,
}

impl EpochState {
    /// The snapshot epoch (bumped only by hot swaps).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The applied-batch version within the epoch (bumped every tick).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The dynamic graph of this generation.
    pub fn dynamic(&self) -> &DynamicGraph {
        &self.dg
    }

    /// The self-stabilizing session of this generation.
    pub fn stabilizer(&self) -> &SelfStabilizing {
        &self.stab
    }

    /// The maintained coloring of this generation.
    pub fn coloring(&self) -> &EdgeColoring {
        self.stab.coloring()
    }

    /// The node-id assignment repairs run under.
    pub fn ids(&self) -> &IdAssignment {
        &self.ids
    }
}

/// Pending (admitted, unapplied) work plus the bookkeeping sets admission
/// validates against.
#[derive(Debug, Default)]
struct Pending {
    batches: Vec<UpdateBatch>,
    /// Stable ids pending deletion (admitted, not yet drained).
    deletes: HashSet<EdgeId>,
    /// Normalized endpoint pairs pending insertion.
    pairs: HashSet<(usize, usize)>,
    /// Drained into a tick but not yet published.
    in_flight_deletes: HashSet<EdgeId>,
    /// Drained into a tick but not yet published.
    in_flight_pairs: HashSet<(usize, usize)>,
    admitted: u64,
    applied: u64,
}

#[derive(Debug, Default)]
struct Counters {
    lookups: AtomicU64,
    lookup_hits: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    ticks: AtomicU64,
    coalesced_batches: AtomicU64,
    repaired_edges: AtomicU64,
    full_recolors: AtomicU64,
    stabilizations: AtomicU64,
    conflicts_found: AtomicU64,
    swaps: AtomicU64,
    swaps_rejected: AtomicU64,
    protocol_errors: AtomicU64,
    internal_errors: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The shared serving core: published state, admission queue, counters.
/// [`DaemonHandle`](crate::daemon::DaemonHandle) wraps it in an `Arc` and
/// drives it from connection threads; tests can drive it directly without
/// any sockets.
#[derive(Debug)]
pub struct ServerCore {
    state: RwLock<Arc<EpochState>>,
    pending: Mutex<Pending>,
    drained: Condvar,
    /// Serializes state writers (`tick` vs `swap`).
    writer: Mutex<()>,
    swapping: AtomicBool,
    config: ServeConfig,
    params: ColoringParams,
    counters: Counters,
    repair_ms: Mutex<Vec<f64>>,
    batch_log: Mutex<Vec<(u64, UpdateBatch)>>,
}

impl ServerCore {
    /// Builds a serving core over `graph`, coloring it from scratch with the
    /// configured budget.
    ///
    /// # Errors
    ///
    /// Propagates errors of the initial coloring run.
    pub fn new(graph: Graph, config: ServeConfig) -> Result<Self, SetupError> {
        Self::from_dynamic(DynamicGraph::from_graph(graph), None, config)
    }

    /// Builds a serving core over an existing dynamic graph, adopting
    /// `coloring` if one is supplied and it passes the audit (falling back
    /// to a fresh coloring run if it does not).
    ///
    /// # Errors
    ///
    /// Propagates errors of the initial coloring run.
    pub fn from_dynamic(
        dg: DynamicGraph,
        coloring: Option<EdgeColoring>,
        config: ServeConfig,
    ) -> Result<Self, SetupError> {
        let ids = Arc::new(IdAssignment::scattered(dg.n(), config.id_seed));
        let params = ColoringParams::new(config.eps).with_policy(config.policy);
        let (rec, _) = session_for(&dg, coloring, &ids, &params, config.headroom)?;
        let mut stab = SelfStabilizing::new(rec);
        if let Some(period) = config.full_sweep_every {
            stab = stab.with_full_sweep_every(period);
        }
        let state = EpochState {
            epoch: 1,
            version: 0,
            dg,
            stab,
            ids,
        };
        Ok(ServerCore {
            state: RwLock::new(Arc::new(state)),
            pending: Mutex::new(Pending::default()),
            drained: Condvar::new(),
            writer: Mutex::new(()),
            swapping: AtomicBool::new(false),
            config,
            params,
            counters: Counters::default(),
            repair_ms: Mutex::new(Vec::new()),
            batch_log: Mutex::new(Vec::new()),
        })
    }

    /// Builds a serving core from a snapshot file (the daemon's boot path):
    /// open + validate, materialize, adopt the stored coloring if present.
    ///
    /// # Errors
    ///
    /// [`SetupError::Snapshot`] if the file fails validation,
    /// [`SetupError::Coloring`] if the initial coloring run fails.
    pub fn from_snapshot_path(
        path: impl AsRef<Path>,
        config: ServeConfig,
    ) -> Result<Self, SetupError> {
        let loaded = LoadedSnapshot::load_path(path)?;
        let coloring = loaded.coloring().cloned();
        let dg = loaded.into_dynamic()?;
        Self::from_dynamic(dg, coloring, config)
    }

    /// The session configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The coloring parameters repairs run under.
    pub fn params(&self) -> &ColoringParams {
        &self.params
    }

    /// Pins and returns the current published generation.
    pub fn state_snapshot(&self) -> Arc<EpochState> {
        self.state.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The coalesced batches applied so far, tagged with the epoch each was
    /// applied in — the sequential-replay log the concurrency battery and
    /// the bench harness certify against.
    pub fn batch_log(&self) -> Vec<(u64, UpdateBatch)> {
        lock(&self.batch_log).clone()
    }

    /// Admitted-but-unapplied batch count.
    pub fn queue_depth(&self) -> usize {
        lock(&self.pending).batches.len()
    }

    /// Counts a malformed frame/payload (called by the transport layer).
    pub fn note_protocol_error(&self) {
        self.counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Ticks that dropped a batch to an internal apply/repair failure —
    /// admission control makes this unreachable; nonzero values mean a bug.
    pub fn internal_errors(&self) -> u64 {
        self.counters.internal_errors.load(Ordering::Relaxed)
    }

    // -- request handlers ---------------------------------------------------

    /// Dispatches one decoded request. `Shutdown` only answers
    /// [`Response::ShuttingDown`]; actually stopping the daemon is the
    /// transport layer's job.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Lookup { stable } => self.lookup(*stable),
            Request::Submit { delete, insert } => self.submit(delete, insert),
            Request::Metrics => Response::Metrics(self.metrics()),
            Request::Palette => self.palette(),
            Request::ShardInfo { shards } => self.shards(*shards),
            Request::Swap { path } => self.swap(path),
            Request::Flush => self.flush(),
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    /// Answers a color lookup off the pinned current generation.
    pub fn lookup(&self, stable: u64) -> Response {
        let st = self.state_snapshot();
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        // Stable ids beyond the id space are simply unknown, not a fault.
        let sid = EdgeId::try_new(stable as usize).ok();
        let outcome = match sid.and_then(|sid| st.dg.internal_id(sid)) {
            None => LookupOutcome::Unknown,
            Some(e) => {
                self.counters.lookup_hits.fetch_add(1, Ordering::Relaxed);
                let (u, v) = st.dg.graph().endpoints(e);
                match st.coloring().color(e) {
                    Some(c) => LookupOutcome::Colored {
                        color: c as u64,
                        u: u.index() as u64,
                        v: v.index() as u64,
                    },
                    None => LookupOutcome::Uncolored {
                        u: u.index() as u64,
                        v: v.index() as u64,
                    },
                }
            }
        };
        Response::Color {
            epoch: st.epoch,
            version: st.version,
            outcome,
        }
    }

    /// Validates and admits one mutation batch, or rejects it with a typed
    /// code. Admission is atomic: the first violating operation rejects the
    /// whole batch and nothing is queued.
    pub fn submit(&self, delete: &[u64], insert: &[(u32, u32)]) -> Response {
        let mut p = lock(&self.pending);
        // Checked under the pending lock so no admission can slip past a
        // swap's quiesce barrier (`swap` raises the flag, then drains).
        if self.swapping.load(Ordering::SeqCst) {
            return self.reject(
                RejectCode::SwapInProgress,
                "snapshot swap in progress".into(),
            );
        }
        if p.batches.len() >= self.config.queue_capacity {
            return self.reject(
                RejectCode::QueueFull,
                format!("queue at capacity {}", self.config.queue_capacity),
            );
        }
        let st = self.state_snapshot();
        let n = st.dg.n();

        let mut batch_deletes: HashSet<EdgeId> = HashSet::new();
        for &d in delete {
            let Ok(sid) = EdgeId::try_new(d as usize) else {
                return self.reject(
                    RejectCode::UnknownEdge,
                    format!("stable id {d} exceeds the id space"),
                );
            };
            let spoken_for = p.deletes.contains(&sid)
                || p.in_flight_deletes.contains(&sid)
                || batch_deletes.contains(&sid);
            if spoken_for || st.dg.internal_id(sid).is_none() {
                return self.reject(
                    RejectCode::UnknownEdge,
                    format!("stable id {d} is not live (or already pending deletion)"),
                );
            }
            batch_deletes.insert(sid);
        }

        let mut batch_pairs: HashSet<(usize, usize)> = HashSet::new();
        for &(u, v) in insert {
            let (u, v) = (u as usize, v as usize);
            if u >= n || v >= n {
                return self.reject(
                    RejectCode::NodeOutOfRange,
                    format!("endpoint out of range: ({u}, {v}) with n = {n}"),
                );
            }
            if u == v {
                return self.reject(RejectCode::SelfLoop, format!("self-loop at node {u}"));
            }
            let key = (u.min(v), u.max(v));
            if p.pairs.contains(&key)
                || p.in_flight_pairs.contains(&key)
                || batch_pairs.contains(&key)
            {
                return self.reject(
                    RejectCode::DuplicateEdge,
                    format!("pair ({u}, {v}) is already pending insertion"),
                );
            }
            // A live edge blocks the insert unless that edge is pending
            // deletion (deletes apply before inserts within a tick).
            let live = st
                .dg
                .graph()
                .neighbors(NodeId::new(u))
                .iter()
                .find(|nb| nb.node.index() == v);
            if let Some(nb) = live {
                let sid = st.dg.stable_id(nb.edge);
                let dying = p.deletes.contains(&sid)
                    || p.in_flight_deletes.contains(&sid)
                    || batch_deletes.contains(&sid);
                if !dying {
                    return self.reject(
                        RejectCode::DuplicateEdge,
                        format!(
                            "pair ({u}, {v}) is already live as stable id {}",
                            sid.index()
                        ),
                    );
                }
            }
            batch_pairs.insert(key);
        }

        p.deletes.extend(batch_deletes);
        p.pairs.extend(batch_pairs);
        p.batches.push(UpdateBatch {
            delete: delete.iter().map(|&d| EdgeId::new(d as usize)).collect(),
            insert: insert
                .iter()
                .map(|&(u, v)| (u as usize, v as usize))
                .collect(),
        });
        p.admitted += 1;
        let ticket = p.admitted;
        let queued = p.batches.len() as u32;
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        Response::Submitted { ticket, queued }
    }

    fn reject(&self, code: RejectCode, detail: String) -> Response {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
        Response::Rejected { code, detail }
    }

    /// Applies every admitted batch as one coalesced repair. Returns `true`
    /// if a tick ran (there was pending work).
    pub fn tick(&self) -> bool {
        let _w = lock(&self.writer);
        self.tick_locked()
    }

    /// Tick body; caller holds the writer mutex.
    fn tick_locked(&self) -> bool {
        let (batch, count) = {
            let mut p = lock(&self.pending);
            if p.batches.is_empty() {
                return false;
            }
            let mut delete = Vec::new();
            let mut insert = Vec::new();
            let count = p.batches.len();
            for b in p.batches.drain(..) {
                delete.extend(b.delete);
                insert.extend(b.insert);
            }
            let deletes = std::mem::take(&mut p.deletes);
            p.in_flight_deletes.extend(deletes);
            let pairs = std::mem::take(&mut p.pairs);
            p.in_flight_pairs.extend(pairs);
            (UpdateBatch { delete, insert }, count)
        };

        let cur = self.state_snapshot();
        let mut dg = cur.dg.clone();
        let mut stab = cur.stab.clone();
        let started = Instant::now();
        let repaired = dg
            .apply(&batch)
            .map_err(|e| e.to_string())
            .and_then(|diff| {
                stab.repair(&dg, &diff, &cur.ids, &self.params)
                    .map_err(|e| e.to_string())
            });
        match repaired {
            Ok(report) => {
                // Certify (and, if anything were ever inconsistent, heal)
                // through the self-stabilization layer before publishing.
                let stabilized = stab.stabilize(&dg, &report.touched, &cur.ids, &self.params);
                let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                self.counters.ticks.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .coalesced_batches
                    .fetch_add(count as u64, Ordering::Relaxed);
                self.counters
                    .repaired_edges
                    .fetch_add(report.repaired_edges as u64, Ordering::Relaxed);
                self.counters
                    .full_recolors
                    .fetch_add(u64::from(report.full_recolor), Ordering::Relaxed);
                match stabilized {
                    Ok(srep) => {
                        self.counters.stabilizations.fetch_add(1, Ordering::Relaxed);
                        self.counters
                            .conflicts_found
                            .fetch_add(srep.conflicts_found as u64, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.counters
                            .internal_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                lock(&self.repair_ms).push(elapsed_ms);
                lock(&self.batch_log).push((cur.epoch, batch));
                let next = Arc::new(EpochState {
                    epoch: cur.epoch,
                    version: cur.version + 1,
                    dg,
                    stab,
                    ids: cur.ids.clone(),
                });
                self.publish(next, count as u64);
            }
            Err(_) => {
                // Admission control makes this unreachable; account for the
                // dropped batch so flushes still terminate and the failure
                // is visible in `internal_errors`.
                self.counters
                    .internal_errors
                    .fetch_add(1, Ordering::Relaxed);
                self.publish(cur, count as u64);
            }
        }
        true
    }

    /// Publishes `next` as the current generation and clears in-flight
    /// bookkeeping, under the pending lock so admissions never observe a
    /// half-updated (state, in-flight) pair.
    fn publish(&self, next: Arc<EpochState>, applied: u64) {
        {
            let mut p = lock(&self.pending);
            let mut st = self.state.write().unwrap_or_else(|e| e.into_inner());
            *st = next;
            p.in_flight_deletes.clear();
            p.in_flight_pairs.clear();
            p.applied += applied;
        }
        self.drained.notify_all();
    }

    /// Applies every batch admitted before this call, then reports the
    /// resulting version. Concurrent ticks count toward the target.
    pub fn flush(&self) -> Response {
        let target = lock(&self.pending).admitted;
        loop {
            {
                let p = lock(&self.pending);
                if p.applied >= target {
                    break;
                }
            }
            if !self.tick() {
                // Another writer holds the in-flight work; wait for its
                // publish instead of spinning.
                let p = lock(&self.pending);
                if p.applied >= target {
                    break;
                }
                let _ = self
                    .drained
                    .wait_timeout(p, Duration::from_millis(10))
                    .map(|(_, _)| ());
            }
        }
        let st = self.state_snapshot();
        Response::Flushed {
            epoch: st.epoch,
            version: st.version,
            ticks: self.counters.ticks.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the server-side counters and latency percentiles.
    pub fn metrics(&self) -> MetricsReport {
        let st = self.state_snapshot();
        let queue_depth = self.queue_depth() as u64;
        let (p50, p95, p99) = {
            let samples = lock(&self.repair_ms);
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            (
                percentile(&sorted, 50.0),
                percentile(&sorted, 95.0),
                percentile(&sorted, 99.0),
            )
        };
        let c = &self.counters;
        MetricsReport {
            epoch: st.epoch,
            version: st.version,
            n: st.dg.n() as u64,
            m: st.dg.m() as u64,
            max_degree: st.dg.graph().max_degree() as u64,
            palette: st.stab.palette() as u64,
            queue_depth,
            lookups: c.lookups.load(Ordering::Relaxed),
            lookup_hits: c.lookup_hits.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            ticks: c.ticks.load(Ordering::Relaxed),
            coalesced_batches: c.coalesced_batches.load(Ordering::Relaxed),
            repaired_edges: c.repaired_edges.load(Ordering::Relaxed),
            full_recolors: c.full_recolors.load(Ordering::Relaxed),
            stabilizations: c.stabilizations.load(Ordering::Relaxed),
            conflicts_found: c.conflicts_found.load(Ordering::Relaxed),
            swaps: c.swaps.load(Ordering::Relaxed),
            swaps_rejected: c.swaps_rejected.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            repair_p50_ms: p50,
            repair_p95_ms: p95,
            repair_p99_ms: p99,
        }
    }

    /// Palette introspection off the pinned current generation.
    pub fn palette(&self) -> Response {
        let st = self.state_snapshot();
        Response::Palette {
            epoch: st.epoch,
            palette: st.stab.palette() as u64,
            max_degree: st.dg.graph().max_degree() as u64,
            colors_used: st.coloring().colors_used() as u64,
        }
    }

    /// Partitions the current graph with the shard substrate and reports
    /// the cut. Built on demand — the daemon serves colors, not shards, so
    /// nothing is cached across epochs.
    pub fn shards(&self, shards: u32) -> Response {
        let st = self.state_snapshot();
        let wanted = shards.clamp(1, 1 << 16) as usize;
        let report = bfs_partition(st.dg.graph(), wanted).report(st.dg.graph());
        Response::Shards {
            shards: report.shards as u32,
            cut_edges: report.cut_edges as u64,
            cut_fraction: report.cut_fraction,
            balance_factor: report.balance_factor,
        }
    }

    /// Hot-swaps the served snapshot: quiesce admissions, apply what was
    /// already admitted, open + validate the new snapshot, publish it under
    /// `epoch + 1`. Any failure leaves the old generation serving.
    pub fn swap(&self, path: &str) -> Response {
        if self.swapping.swap(true, Ordering::SeqCst) {
            self.counters.swaps_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::SwapRejected {
                detail: "another swap is in progress".into(),
            };
        }
        let resp = self.swap_quiesced(path);
        self.swapping.store(false, Ordering::SeqCst);
        resp
    }

    fn swap_quiesced(&self, path: &str) -> Response {
        let _w = lock(&self.writer);
        // Drain everything admitted before the flag went up; the flag stops
        // new admissions, so this terminates.
        while self.tick_locked() {}

        let rejected = |detail: String| {
            self.counters.swaps_rejected.fetch_add(1, Ordering::Relaxed);
            Response::SwapRejected { detail }
        };
        let loaded = match Snapshot::open(path).and_then(|s| LoadedSnapshot::load(&s)) {
            Ok(l) => l,
            Err(e) => return rejected(e.to_string()),
        };
        let coloring = loaded.coloring().cloned();
        let dg = match loaded.into_dynamic() {
            Ok(d) => d,
            Err(e) => return rejected(e.to_string()),
        };
        let ids = Arc::new(IdAssignment::scattered(dg.n(), self.config.id_seed));
        let session = session_for(&dg, coloring, &ids, &self.params, self.config.headroom);
        let (rec, _) = match session {
            Ok(s) => s,
            Err(e) => return rejected(e.to_string()),
        };
        let mut stab = SelfStabilizing::new(rec);
        if let Some(period) = self.config.full_sweep_every {
            stab = stab.with_full_sweep_every(period);
        }

        let cur = self.state_snapshot();
        let (epoch, n, m) = (cur.epoch + 1, dg.n() as u64, dg.m() as u64);
        let next = Arc::new(EpochState {
            epoch,
            version: 0,
            dg,
            stab,
            ids,
        });
        self.publish(next, 0);
        self.counters.swaps.fetch_add(1, Ordering::Relaxed);
        Response::Swapped { epoch, n, m }
    }
}

/// Builds the recoloring session for a (possibly snapshot-carried) coloring:
/// adopt it when it passes the audit, otherwise color from scratch with the
/// configured headroom.
fn session_for(
    dg: &DynamicGraph,
    coloring: Option<EdgeColoring>,
    ids: &IdAssignment,
    params: &ColoringParams,
    headroom: usize,
) -> Result<(Recoloring, bool), SetupError> {
    let budget = default_palette(dg.graph().max_degree() + headroom);
    if let Some(col) = coloring {
        // A stored coloring may use more colors than the tight budget if it
        // was maintained with its own headroom; widen the audit budget to
        // whatever it actually uses (never below ours).
        let audit_budget = budget.max(col.palette_size());
        if let Ok(rec) = Recoloring::adopt(dg, col, audit_budget) {
            return Ok((rec, true));
        }
    }
    let (rec, _) = Recoloring::with_budget(dg, ids, params, budget)?;
    Ok((rec, false))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;
    use edgecolor_verify::{check_complete, check_proper_edge_coloring};

    fn small_core() -> ServerCore {
        let config = ServeConfig {
            tick_interval_ms: None,
            ..ServeConfig::default()
        };
        ServerCore::new(generators::grid_torus(6, 6), config).unwrap()
    }

    #[test]
    fn lookup_hits_and_misses() {
        let core = small_core();
        match core.lookup(0) {
            Response::Color {
                epoch: 1,
                version: 0,
                outcome,
            } => {
                assert!(matches!(outcome, LookupOutcome::Colored { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        match core.lookup(1 << 40) {
            Response::Color {
                outcome: LookupOutcome::Unknown,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        let metrics = core.metrics();
        assert_eq!(metrics.lookups, 2);
        assert_eq!(metrics.lookup_hits, 1);
    }

    #[test]
    fn admission_rules_reject_typed() {
        let core = small_core();
        let reject_code = |resp: Response| match resp {
            Response::Rejected { code, .. } => code,
            other => panic!("expected a reject, got {other:?}"),
        };
        // Unknown stable id.
        assert_eq!(
            reject_code(core.submit(&[1 << 40], &[])),
            RejectCode::UnknownEdge
        );
        // Duplicate delete across submissions.
        assert!(matches!(core.submit(&[0], &[]), Response::Submitted { .. }));
        assert_eq!(reject_code(core.submit(&[0], &[])), RejectCode::UnknownEdge);
        // Out-of-range and self-loop inserts.
        assert_eq!(
            reject_code(core.submit(&[], &[(0, 999)])),
            RejectCode::NodeOutOfRange
        );
        assert_eq!(
            reject_code(core.submit(&[], &[(3, 3)])),
            RejectCode::SelfLoop
        );
        // Inserting the pair of a live edge (one NOT pending deletion) is a
        // duplicate. Query stable id 2's endpoints so the pair can't collide
        // with the delete of stable id 0 queued above.
        let st = core.state_snapshot();
        let live = st.dynamic().internal_id(EdgeId::new(2)).unwrap();
        let (lu, lv) = st.dynamic().graph().endpoints(live);
        assert_eq!(
            reject_code(core.submit(&[], &[(lu.index() as u32, lv.index() as u32)])),
            RejectCode::DuplicateEdge
        );
        // (0,7) is not a torus edge of the 6×6 grid torus: admitted once,
        // duplicate the second time.
        assert!(matches!(
            core.submit(&[], &[(0, 7)]),
            Response::Submitted { .. }
        ));
        assert_eq!(
            reject_code(core.submit(&[], &[(0, 7)])),
            RejectCode::DuplicateEdge
        );
        // Deleting a live edge frees its pair for reinsertion in the same
        // coalesced tick.
        let live_pair_sid = 1u64; // stable id 1 exists; find its endpoints
        let st = core.state_snapshot();
        let e = st
            .dynamic()
            .internal_id(EdgeId::new(live_pair_sid as usize))
            .unwrap();
        let (u, v) = st.dynamic().graph().endpoints(e);
        assert!(matches!(
            core.submit(&[live_pair_sid], &[(u.index() as u32, v.index() as u32)]),
            Response::Submitted { .. }
        ));
        assert!(core.tick());
        let st = core.state_snapshot();
        check_proper_edge_coloring(st.dynamic().graph(), st.coloring()).assert_ok();
        check_complete(st.dynamic().graph(), st.coloring()).assert_ok();
        assert_eq!(core.internal_errors(), 0);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let config = ServeConfig {
            tick_interval_ms: None,
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let core = ServerCore::new(generators::grid_torus(6, 6), config).unwrap();
        assert!(matches!(
            core.submit(&[], &[(0, 7)]),
            Response::Submitted { .. }
        ));
        assert!(matches!(
            core.submit(&[], &[(1, 8)]),
            Response::Submitted { .. }
        ));
        match core.submit(&[], &[(2, 9)]) {
            Response::Rejected {
                code: RejectCode::QueueFull,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        // A tick drains the queue and capacity frees up.
        assert!(core.tick());
        assert!(matches!(
            core.submit(&[], &[(2, 9)]),
            Response::Submitted { .. }
        ));
        match core.flush() {
            Response::Flushed {
                epoch: 1,
                version: 2,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metrics_and_introspection_track_work() {
        let core = small_core();
        assert!(matches!(
            core.submit(&[0, 1], &[(0, 7), (1, 8)]),
            Response::Submitted { .. }
        ));
        core.flush();
        let m = core.metrics();
        assert_eq!(m.epoch, 1);
        assert_eq!(m.version, 1);
        assert_eq!(m.ticks, 1);
        assert_eq!(m.coalesced_batches, 1);
        assert_eq!(m.accepted, 1);
        assert_eq!(m.repaired_edges, 2);
        assert_eq!(m.full_recolors, 0);
        assert_eq!(m.conflicts_found, 0);
        assert_eq!(m.m, 72);
        assert!(m.repair_p50_ms >= 0.0 && m.repair_p95_ms >= m.repair_p50_ms);
        match core.palette() {
            Response::Palette {
                palette,
                max_degree,
                colors_used,
                ..
            } => {
                // The mutation shifted degrees; Δ stays within the diagonal
                // bound the loadgen documents.
                assert!((4..=6).contains(&max_degree));
                assert!(palette >= 2 * max_degree - 1);
                assert!(colors_used <= palette);
            }
            other => panic!("unexpected {other:?}"),
        }
        match core.shards(4) {
            Response::Shards {
                shards: 4,
                cut_edges,
                balance_factor,
                ..
            } => {
                assert!(cut_edges > 0);
                assert!(balance_factor >= 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(core.batch_log().len(), 1);
    }

    #[test]
    fn adopting_a_stored_coloring_skips_the_initial_run() {
        let g = generators::grid_torus(6, 6);
        let dg = DynamicGraph::from_graph(g);
        let ids = Arc::new(IdAssignment::scattered(dg.n(), 1));
        let params = ColoringParams::new(0.5);
        let (rec, _) = Recoloring::color_initial(&dg, &ids, &params).unwrap();
        let stored = rec.coloring().clone();
        let (adopted, was_adopted) =
            session_for(&dg, Some(stored.clone()), &ids, &params, 2).unwrap();
        assert!(was_adopted);
        assert_eq!(adopted.coloring(), &stored);
        // A corrupt coloring fails the audit and falls back to a fresh run.
        let mut corrupt = stored;
        corrupt.unset(EdgeId::new(0));
        let (fresh, was_adopted) = session_for(&dg, Some(corrupt), &ids, &params, 2).unwrap();
        assert!(!was_adopted);
        check_complete(dg.graph(), fresh.coloring()).assert_ok();
    }
}
