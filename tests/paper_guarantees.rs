//! The paper's headline guarantees, pinned on a seeded generator matrix.
//!
//! For every graph in the matrix (path, cycle, complete bipartite, random
//! d-regular, star) each algorithm must produce a proper, complete edge
//! coloring whose palette respects the stated budget:
//!
//! * greedy baseline — at most `2Δ − 1` colors (folklore bound);
//! * Misra–Gries baseline — at most `Δ + 1` colors (Vizing);
//! * bipartite algorithm (Lemma 6.1) — at most `(2 + ε)Δ` colors;
//! * CONGEST algorithm (Theorem 1.2) — at most `(8 + ε)Δ` colors.

use distgraph::{generators, BipartiteGraph, Graph};
use distsim::{IdAssignment, Model, Network};
use edgecolor::bipartite_coloring::color_bipartite;
use edgecolor::{color_congest, color_edges_local, ColoringParams};
use edgecolor_baselines as baselines;
use edgecolor_verify::{check_complete, check_palette_size, check_proper_edge_coloring};

/// The seeded test matrix: `(name, graph)` pairs covering every generator
/// family the satellite task names.
fn matrix() -> Vec<(String, Graph)> {
    let mut graphs = Vec::new();
    for n in [2usize, 9, 24] {
        graphs.push((format!("path({n})"), generators::path(n)));
    }
    for n in [3usize, 8, 17] {
        graphs.push((format!("cycle({n})"), generators::cycle(n)));
    }
    for (a, b) in [(1usize, 5usize), (4, 4), (6, 9)] {
        graphs.push((
            format!("complete_bipartite({a},{b})"),
            generators::complete_bipartite(a, b).graph().clone(),
        ));
    }
    for (n, d, seed) in [(10usize, 3usize, 1u64), (24, 4, 2), (36, 6, 3)] {
        graphs.push((
            format!("random_regular({n},{d},{seed})"),
            generators::random_regular(n, d, seed).expect("feasible regular instance"),
        ));
    }
    for leaves in [1usize, 7, 20] {
        graphs.push((format!("star({leaves})"), generators::star(leaves)));
    }
    graphs
}

/// Bipartite members of the matrix, as `BipartiteGraph`s.
fn bipartite_matrix() -> Vec<(String, BipartiteGraph)> {
    let mut graphs = Vec::new();
    for (a, b) in [(1usize, 5usize), (4, 4), (6, 9)] {
        graphs.push((
            format!("complete_bipartite({a},{b})"),
            generators::complete_bipartite(a, b),
        ));
    }
    for (n, d, seed) in [(8usize, 3usize, 5u64), (16, 5, 6)] {
        graphs.push((
            format!("regular_bipartite({n},{d},{seed})"),
            generators::regular_bipartite(n, d, seed).expect("feasible bipartite instance"),
        ));
    }
    // Paths and stars are bipartite; exercise the conversion path too.
    for n in [2usize, 9, 24] {
        let g = generators::path(n);
        graphs.push((
            format!("path({n})"),
            BipartiteGraph::from_graph(g).expect("paths are bipartite"),
        ));
    }
    for leaves in [1usize, 7, 20] {
        let g = generators::star(leaves);
        graphs.push((
            format!("star({leaves})"),
            BipartiteGraph::from_graph(g).expect("stars are bipartite"),
        ));
    }
    graphs
}

#[test]
fn greedy_baseline_stays_within_two_delta_minus_one() {
    for (name, g) in matrix() {
        let coloring = baselines::greedy_sequential(&g);
        check_proper_edge_coloring(&g, &coloring).assert_ok();
        check_complete(&g, &coloring).assert_ok();
        let budget = (2 * g.max_degree()).saturating_sub(1).max(1);
        check_palette_size(&coloring, budget).assert_ok();
        assert!(
            coloring.palette_size() <= budget,
            "{name}: greedy used {} colors, budget 2Δ−1 = {budget}",
            coloring.palette_size()
        );
    }
}

#[test]
fn misra_gries_baseline_stays_within_delta_plus_one() {
    for (name, g) in matrix() {
        let coloring = baselines::misra_gries(&g);
        check_proper_edge_coloring(&g, &coloring).assert_ok();
        check_complete(&g, &coloring).assert_ok();
        let budget = g.max_degree() + 1;
        check_palette_size(&coloring, budget).assert_ok();
        assert!(
            coloring.palette_size() <= budget,
            "{name}: Misra–Gries used {} colors, budget Δ+1 = {budget}",
            coloring.palette_size()
        );
    }
}

#[test]
fn local_algorithm_stays_within_two_delta_minus_one() {
    for (name, g) in matrix() {
        let ids = IdAssignment::scattered(g.n(), 17);
        let params = ColoringParams::new(0.5);
        let outcome = color_edges_local(&g, &ids, &params).expect("full palette is feasible");
        check_proper_edge_coloring(&g, &outcome.coloring).assert_ok();
        check_complete(&g, &outcome.coloring).assert_ok();
        let budget = (2 * g.max_degree()).saturating_sub(1).max(1);
        assert!(
            outcome.coloring.palette_size() <= budget,
            "{name}: LOCAL coloring used {} colors, budget 2Δ−1 = {budget}",
            outcome.coloring.palette_size()
        );
    }
}

#[test]
fn bipartite_algorithm_stays_within_two_plus_eps_delta() {
    for (name, bg) in bipartite_matrix() {
        let g = bg.graph();
        if g.m() == 0 {
            continue;
        }
        let params = ColoringParams::new(0.5);
        let mut net = Network::new(g, Model::Local);
        let result = color_bipartite(&bg, &params, &mut net);
        check_proper_edge_coloring(g, &result.coloring).assert_ok();
        check_complete(g, &result.coloring).assert_ok();
        let budget = ((2.0 + params.eps) * g.max_degree() as f64).ceil() as usize;
        assert!(
            result.colors_used <= budget.max(1),
            "{name}: bipartite coloring used {} colors, budget (2+ε)Δ = {budget}",
            result.colors_used
        );
    }
}

#[test]
fn congest_algorithm_stays_within_eight_plus_eps_delta() {
    for (name, g) in matrix() {
        if g.m() == 0 {
            continue;
        }
        let ids = IdAssignment::scattered(g.n(), 23);
        let params = ColoringParams::new(0.5);
        let result = color_congest(&g, &ids, &params);
        check_proper_edge_coloring(&g, &result.coloring).assert_ok();
        check_complete(&g, &result.coloring).assert_ok();
        let budget = ((8.0 + params.eps) * g.max_degree() as f64).ceil() as usize;
        assert!(
            result.colors_used <= budget.max(1),
            "{name}: CONGEST coloring used {} colors, budget (8+ε)Δ = {budget}",
            result.colors_used
        );
        assert_eq!(
            result.metrics.congest_violations, 0,
            "{name}: CONGEST run exceeded the bandwidth limit"
        );
    }
}
