//! Opening snapshots and serving them zero-copy.
//!
//! [`Snapshot::open`] maps the file (through the `mmapc` shim), validates
//! **everything** — header, section table, per-section checksums, and the
//! full set of CSR structural invariants — and then hands out
//! [`SnapshotView`]s: `Graph`-shaped accessors that read `u32`s straight out
//! of the backing buffer. Because validation is complete at open time, the
//! accessors are panic-free and allocation-free; a million-edge graph is
//! queryable for `degree`/`neighbors`/`color` without ever materializing a
//! [`distgraph::Graph`].
//!
//! All byte slicing goes through the safe [`U32s`] wrapper
//! (`chunks_exact(4)` + `u32::from_le_bytes`); the crate keeps
//! `#![forbid(unsafe_code)]` with zero transmutes.

use crate::error::{tag_name, SnapshotError};
use crate::format::{
    checksum64, FLAG_ALL, FLAG_COLORING, FLAG_PERMUTATION, FLAG_STABLE, HEADER_LEN, MAGIC,
    META_LEN, TABLE_ENTRY_LEN, TAG_ADJE, TAG_ADJN, TAG_COLR, TAG_ENDP, TAG_META, TAG_OFFS,
    TAG_PERM, TAG_STBL, VERSION,
};
use distgraph::{Color, EdgeId, NodeId};
use mmapc::Mmap;
use std::ops::Range;
use std::path::Path;

/// A borrowed little-endian `u32` array inside a snapshot buffer.
///
/// Constructed only by [`Snapshot`] after the byte length has been checked
/// to be a multiple of 4 and every index the accessors can produce has been
/// validated, so [`U32s::get`] never observes an out-of-range index in
/// practice (and is still a safe, bounds-checked slice read if it did).
#[derive(Debug, Clone, Copy)]
pub struct U32s<'a>(&'a [u8]);

impl<'a> U32s<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        debug_assert_eq!(bytes.len() % 4, 0);
        U32s(bytes)
    }

    /// Number of `u32` elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len() / 4
    }

    /// Returns `true` for an empty array.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The element at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` — which open-time validation rules out for
    /// every index reachable through [`SnapshotView`].
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        let bytes: [u8; 4] = self.0[i * 4..i * 4 + 4]
            .try_into()
            .expect("4-byte window of a u32 array");
        u32::from_le_bytes(bytes)
    }

    /// Iterator over all elements.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        self.0
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4) yields 4 bytes")))
    }

    /// Iterator over consecutive element pairs `(a[2i], a[2i + 1])` — the
    /// interleaved layout of the `ENDP` section. A trailing odd element is
    /// never observed: every pair-shaped section holds `2m` elements.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (u32, u32)> + 'a {
        self.0.chunks_exact(8).map(|c| {
            (
                u32::from_le_bytes(c[..4].try_into().expect("4-byte low half")),
                u32::from_le_bytes(c[4..].try_into().expect("4-byte high half")),
            )
        })
    }
}

/// Ranges of every section inside the backing buffer, plus the decoded META
/// words. Byte ranges, not copies: the payloads stay where the file put them.
#[derive(Debug, Clone)]
struct Layout {
    n: usize,
    m: usize,
    max_degree: usize,
    next_stable: usize,
    offs: Range<usize>,
    adjn: Range<usize>,
    adje: Range<usize>,
    endp: Range<usize>,
    colr: Option<Range<usize>>,
    stbl: Option<Range<usize>>,
    perm: Option<Range<usize>>,
}

/// An opened, fully validated snapshot.
///
/// Owns the backing buffer (an [`mmapc::Mmap`]); [`Snapshot::view`] borrows
/// zero-copy accessors out of it.
///
/// # Examples
///
/// ```
/// use diststore::{Snapshot, SnapshotSource};
/// use distgraph::{generators, NodeId};
///
/// let g = generators::grid_torus(10, 10);
/// let snap = Snapshot::from_bytes(SnapshotSource::graph(&g).encode()?)?;
/// let view = snap.view();
/// assert_eq!(view.n(), g.n());
/// assert_eq!(view.degree(NodeId::new(7)), 4);
/// # Ok::<(), diststore::SnapshotError>(())
/// ```
#[derive(Debug)]
pub struct Snapshot {
    data: Mmap,
    layout: Layout,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte window"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte window"))
}

impl Snapshot {
    /// Opens and validates the snapshot file at `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] for filesystem failures, otherwise any of the
    /// format errors described on [`SnapshotError`]: corrupted inputs of
    /// every kind return typed errors, never panic.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_mmap(Mmap::map_path(path)?)
    }

    /// Validates an in-memory snapshot buffer.
    ///
    /// # Errors
    ///
    /// Same as [`Snapshot::open`], minus the I/O.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        Self::from_mmap(Mmap::from_vec(bytes))
    }

    fn from_mmap(data: Mmap) -> Result<Self, SnapshotError> {
        let layout = validate(&data)?;
        Ok(Snapshot { data, layout })
    }

    /// A zero-copy view over the snapshot's contents.
    pub fn view(&self) -> SnapshotView<'_> {
        let l = &self.layout;
        let bytes: &[u8] = &self.data;
        SnapshotView {
            n: l.n,
            m: l.m,
            max_degree: l.max_degree,
            next_stable: l.next_stable,
            offs: U32s::new(&bytes[l.offs.clone()]),
            adjn: U32s::new(&bytes[l.adjn.clone()]),
            adje: U32s::new(&bytes[l.adje.clone()]),
            endp: U32s::new(&bytes[l.endp.clone()]),
            colr: l.colr.clone().map(|r| U32s::new(&bytes[r])),
            stbl: l.stbl.clone().map(|r| U32s::new(&bytes[r])),
            perm: l.perm.clone().map(|r| U32s::new(&bytes[r])),
        }
    }

    /// Total size of the backing buffer in bytes.
    pub fn file_len(&self) -> usize {
        self.data.len()
    }
}

/// Full open-time validation: header, section table, checksums, then every
/// structural invariant the view accessors rely on. `O(n + m)` time with no
/// scratch allocation; returns the first violation as a typed error.
fn validate(data: &[u8]) -> Result<Layout, SnapshotError> {
    let file_len = data.len() as u64;
    if data.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            what: "header",
            needed: HEADER_LEN as u64,
            available: file_len,
        });
    }
    if data[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u32(data, 8);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let count = read_u32(data, 12) as usize;
    let table_end = HEADER_LEN + count * TABLE_ENTRY_LEN;
    if data.len() < table_end {
        return Err(SnapshotError::Truncated {
            what: "section table",
            needed: table_end as u64,
            available: file_len,
        });
    }

    // Walk the table: resolve each known tag to its byte range, verifying
    // bounds, uniqueness and checksums as we go. Unknown tags are rejected —
    // version 1 defines the complete tag set, so anything else is corruption.
    let mut ranges: [Option<Range<usize>>; 8] = Default::default();
    const TAGS: [[u8; 4]; 8] = [
        TAG_META, TAG_OFFS, TAG_ADJN, TAG_ADJE, TAG_ENDP, TAG_COLR, TAG_STBL, TAG_PERM,
    ];
    for i in 0..count {
        let at = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let tag: [u8; 4] = data[at..at + 4].try_into().expect("4-byte tag");
        let offset = read_u64(data, at + 4);
        let len = read_u64(data, at + 12);
        let checksum = read_u64(data, at + 20);
        let end = offset
            .checked_add(len)
            .ok_or(SnapshotError::SectionOutOfBounds {
                tag: tag_name(tag),
                offset,
                len,
                file_len,
            })?;
        if end > file_len || offset < table_end as u64 {
            return Err(SnapshotError::SectionOutOfBounds {
                tag: tag_name(tag),
                offset,
                len,
                file_len,
            });
        }
        let range = offset as usize..end as usize;
        if checksum64(&data[range.clone()]) != checksum {
            return Err(SnapshotError::ChecksumMismatch { tag: tag_name(tag) });
        }
        let slot = TAGS
            .iter()
            .position(|t| *t == tag)
            .ok_or(SnapshotError::CorruptSection {
                tag: tag_name(tag),
                detail: "unknown section tag for format version 1".to_string(),
            })?;
        if ranges[slot].replace(range).is_some() {
            return Err(SnapshotError::DuplicateSection { tag: tag_name(tag) });
        }
    }

    let require = |slot: usize| -> Result<Range<usize>, SnapshotError> {
        ranges[slot].clone().ok_or(SnapshotError::MissingSection {
            tag: tag_name(TAGS[slot]),
        })
    };

    // META first: it declares the element counts everything else is sized by.
    let meta = require(0)?;
    if meta.len() != META_LEN {
        return Err(SnapshotError::MisalignedSection {
            tag: tag_name(TAG_META),
            len: meta.len() as u64,
        });
    }
    let meta_err = |detail: String| SnapshotError::CorruptSection {
        tag: tag_name(TAG_META),
        detail,
    };
    let n_raw = read_u64(data, meta.start);
    let m_raw = read_u64(data, meta.start + 8);
    let flags = read_u64(data, meta.start + 16);
    let next_stable_raw = read_u64(data, meta.start + 24);
    let max_degree_raw = read_u64(data, meta.start + 32);
    // Node/edge ids are u32 and CSR offsets (up to 2m) are stored as u32.
    if n_raw > u32::MAX as u64 {
        return Err(meta_err(format!("node count {n_raw} exceeds u32 ids")));
    }
    if 2 * m_raw > u32::MAX as u64 {
        return Err(meta_err(format!("edge count {m_raw} exceeds u32 offsets")));
    }
    if flags & !FLAG_ALL != 0 {
        return Err(meta_err(format!("unknown flag bits {flags:#x}")));
    }
    if next_stable_raw > u32::MAX as u64 + 1 {
        return Err(meta_err(format!(
            "stable-id high-water mark {next_stable_raw} exceeds u32 ids"
        )));
    }
    let n = n_raw as usize;
    let m = m_raw as usize;

    // Resolve the required array sections, checking alignment and exact
    // element counts against META.
    let sized = |slot: usize, elems: usize| -> Result<Range<usize>, SnapshotError> {
        let range = require(slot)?;
        if range.len() % 4 != 0 {
            return Err(SnapshotError::MisalignedSection {
                tag: tag_name(TAGS[slot]),
                len: range.len() as u64,
            });
        }
        if range.len() / 4 != elems {
            return Err(SnapshotError::CorruptSection {
                tag: tag_name(TAGS[slot]),
                detail: format!("holds {} elements, META promises {elems}", range.len() / 4),
            });
        }
        Ok(range)
    };
    let offs_r = sized(1, n + 1)?;
    let adjn_r = sized(2, 2 * m)?;
    let adje_r = sized(3, 2 * m)?;
    let endp_r = sized(4, 2 * m)?;
    let optional =
        |slot: usize, flag: u64, elems: usize| -> Result<Option<Range<usize>>, SnapshotError> {
            if flags & flag != 0 {
                sized(slot, elems).map(Some)
            } else if ranges[slot].is_some() {
                Err(SnapshotError::CorruptSection {
                    tag: tag_name(TAGS[slot]),
                    detail: "section present but its META flag is clear".to_string(),
                })
            } else {
                Ok(None)
            }
        };
    let colr_r = optional(5, FLAG_COLORING, m)?;
    let stbl_r = optional(6, FLAG_STABLE, m)?;
    let perm_r = optional(7, FLAG_PERMUTATION, n)?;

    // Structural invariants, exactly the ones `Graph::from_csr_parts`
    // enforces — validated here so the zero-copy accessors (which skip
    // materialization entirely) and the trusted materialization path
    // (`Graph::from_csr_parts_trusted`) can rely on them. The walk streams
    // raw byte slices with `chunks_exact` instead of indexing element by
    // element: this pass touches every section byte and sits on the
    // cold-start path the IO benchmark gates.
    let offs_b = &data[offs_r.clone()];
    let adjn_b = &data[adjn_r.clone()];
    let adje_b = &data[adje_r.clone()];
    let endp_b = &data[endp_r.clone()];
    let corrupt = |tag: [u8; 4], detail: String| SnapshotError::CorruptSection {
        tag: tag_name(tag),
        detail,
    };

    if read_u32(offs_b, 0) != 0 {
        return Err(corrupt(
            TAG_OFFS,
            format!("offsets[0] is {}, expected 0", read_u32(offs_b, 0)),
        ));
    }
    if read_u32(offs_b, n * 4) as usize != 2 * m {
        return Err(corrupt(
            TAG_OFFS,
            format!(
                "offsets end at {}, expected 2m = {}",
                read_u32(offs_b, n * 4),
                2 * m
            ),
        ));
    }
    let (ok, max_degree) = structure_sweep(offs_b, adjn_b, adje_b, endp_b, n, m);
    if !ok {
        return Err(structure_error(offs_b, adjn_b, adje_b, endp_b, n, m));
    }
    // META's max_degree must agree with the offsets-derived walk.
    if max_degree_raw != max_degree as u64 {
        return Err(meta_err(format!(
            "max degree {max_degree_raw} disagrees with offsets ({max_degree})"
        )));
    }

    // Optional sections: stable ids must respect the high-water mark
    // (distinctness is re-checked by `DynamicGraph::from_saved` when
    // materializing); a permutation must be a bijection on the nodes.
    if let Some(r) = &stbl_r {
        for (e, id) in U32s::new(&data[r.clone()]).iter().enumerate() {
            if u64::from(id) >= next_stable_raw {
                return Err(corrupt(
                    TAG_STBL,
                    format!("stable id {id} of edge {e} exceeds high-water mark {next_stable_raw}"),
                ));
            }
        }
    }
    if let Some(r) = &perm_r {
        let mut hit = vec![false; n];
        for old in U32s::new(&data[r.clone()]).iter() {
            let old = old as usize;
            if old >= n {
                return Err(corrupt(
                    TAG_PERM,
                    format!("permutation entry {old} out of range for {n} nodes"),
                ));
            }
            if hit[old] {
                return Err(corrupt(
                    TAG_PERM,
                    format!("permutation maps two new ids to old node {old}"),
                ));
            }
            hit[old] = true;
        }
    }
    // COLR needs no deep check: any u32 is a valid color or the uncolored
    // sentinel, and the checksum already vouches for the bytes.

    Ok(Layout {
        n,
        m,
        max_degree,
        next_stable: next_stable_raw as usize,
        offs: offs_r,
        adjn: adjn_r,
        adje: adje_r,
        endp: endp_r,
        colr: colr_r,
        stbl: stbl_r,
        perm: perm_r,
    })
}

/// Branch-light structural sweep over the CSR sections: returns whether
/// every invariant holds, plus the offsets-derived maximum degree (garbage
/// when the sweep fails — callers must check `ok` first).
///
/// This is the hot half of open-time validation (the cold-start path the IO
/// benchmark gates): violations are folded into one boolean instead of
/// branching per element, so the loops stay pipelined, and the exact typed
/// error is recovered by [`structure_error`]'s detailed re-walk only on
/// failure. Callers must have checked `offsets[0] == 0` and
/// `offsets[n] == 2m` already.
///
/// The invariants checked are exactly `Graph::from_csr_parts`'s, minus its
/// per-edge appearance counter, which is implied here: strict per-node
/// sorting means a node lists each neighbor at most once, and
/// endpoint agreement means edge `e` can only ever be listed at its two
/// endpoints — so each edge appears at most twice, and with the adjacency
/// holding exactly `2m` entries, pigeonhole makes it exactly twice.
fn structure_sweep(
    offs_b: &[u8],
    adjn_b: &[u8],
    adje_b: &[u8],
    endp_b: &[u8],
    n: usize,
    m: usize,
) -> (bool, usize) {
    let two_m = 2 * m;
    let mut ok = true;

    // OFFS: monotone and bounded by 2m (entries 1..=n; 0 and n are pinned
    // by the caller). Degrees fall out of the same scan.
    let mut prev = 0u32;
    let mut max_degree = 0u32;
    for c in offs_b[4..].chunks_exact(4) {
        let o = u32::from_le_bytes(c.try_into().expect("4-byte offset"));
        ok &= o >= prev;
        ok &= o as usize <= two_m;
        max_degree = max_degree.max(o.wrapping_sub(prev));
        prev = o;
    }

    // ENDP: smaller-first pairs with both endpoints in range (`u < v < n`
    // covers `u`).
    for pair in endp_b.chunks_exact(8) {
        let u = u32::from_le_bytes(pair[..4].try_into().expect("4-byte endpoint"));
        let v = u32::from_le_bytes(pair[4..].try_into().expect("4-byte endpoint"));
        ok &= u < v;
        ok &= (v as usize) < n;
    }

    // Adjacency: per-node strict sorting, ids in range, and agreement with
    // ENDP. Only entered once the offsets proved monotone-bounded, so the
    // zipped iterator is consumed exactly `2m` times and never exhausts
    // early. The endpoint read is clamped (`min(e, m - 1)`) so an
    // out-of-range edge id folds into `ok` instead of panicking the gather.
    if ok {
        let mut entries = adjn_b.chunks_exact(4).zip(adje_b.chunks_exact(4));
        let mut start = 0usize;
        for v in 0..n {
            let end = read_u32(offs_b, (v + 1) * 4) as usize;
            let vv = v as u32;
            let mut prev_w = -1i64;
            for _ in start..end {
                let (nc, ec) = entries.next().expect("offsets sum to 2m");
                let w = u32::from_le_bytes(nc.try_into().expect("4-byte neighbor id"));
                let e = u32::from_le_bytes(ec.try_into().expect("4-byte edge id")) as usize;
                ok &= (w as usize) < n;
                ok &= i64::from(w) > prev_w;
                prev_w = i64::from(w);
                ok &= e < m;
                let at = e.min(m - 1) * 8;
                ok &= read_u32(endp_b, at) == vv.min(w);
                ok &= read_u32(endp_b, at + 4) == vv.max(w);
            }
            start = end;
        }
    }
    (ok, max_degree as usize)
}

/// The detailed re-walk behind [`structure_sweep`]: finds the first
/// violated invariant and names it in a typed error. Only runs on corrupt
/// input, so it favors clarity over speed.
#[cold]
fn structure_error(
    offs_b: &[u8],
    adjn_b: &[u8],
    adje_b: &[u8],
    endp_b: &[u8],
    n: usize,
    m: usize,
) -> SnapshotError {
    let corrupt = |tag: [u8; 4], detail: String| SnapshotError::CorruptSection {
        tag: tag_name(tag),
        detail,
    };
    for (e, pair) in endp_b.chunks_exact(8).enumerate() {
        let u = u32::from_le_bytes(pair[..4].try_into().expect("4-byte endpoint"));
        let v = u32::from_le_bytes(pair[4..].try_into().expect("4-byte endpoint"));
        if u as usize >= n || v as usize >= n {
            return corrupt(
                TAG_ENDP,
                format!("endpoint pair ({u}, {v}) of edge {e} out of range"),
            );
        }
        if u >= v {
            return corrupt(
                TAG_ENDP,
                format!("endpoint pair ({u}, {v}) not stored smaller-first (or self loop)"),
            );
        }
    }
    let mut start = 0usize; // offsets[0], pinned to 0 by the caller
    for v in 0..n {
        let end = read_u32(offs_b, (v + 1) * 4) as usize;
        if start > end {
            return corrupt(TAG_OFFS, format!("offsets not monotone at node {v}"));
        }
        // An inflated intermediate offset must be rejected *before* it is
        // used to index the adjacency: only the final offset is pinned to
        // 2m, so a forged-checksum OFFS section can otherwise smuggle
        // `end > 2m` into this loop (and used to panic the walk rather
        // than produce a typed error).
        if end > 2 * m {
            return corrupt(
                TAG_OFFS,
                format!(
                    "offset {end} at node {v} exceeds adjacency length {}",
                    2 * m
                ),
            );
        }
        let mut prev: Option<u32> = None;
        for i in start..end {
            let w = read_u32(adjn_b, i * 4);
            if w as usize >= n {
                return corrupt(TAG_ADJN, format!("neighbor {w} of node {v} out of range"));
            }
            if prev.is_some_and(|p| p >= w) {
                return corrupt(
                    TAG_ADJN,
                    format!("adjacency of node {v} not strictly sorted by neighbor id"),
                );
            }
            prev = Some(w);
            let e = read_u32(adje_b, i * 4) as usize;
            if e >= m {
                return corrupt(TAG_ADJE, format!("adjacency edge {e} out of range"));
            }
            let (lo, hi) = (read_u32(endp_b, e * 8), read_u32(endp_b, e * 8 + 4));
            let (a, b) = if (v as u32) < w {
                (v as u32, w)
            } else {
                (w, v as u32)
            };
            if (lo, hi) != (a, b) {
                return corrupt(
                    TAG_ADJE,
                    format!(
                        "adjacency entry ({w}, {e}) at node {v} disagrees with endpoints ({lo}, {hi})"
                    ),
                );
            }
        }
        start = end;
    }
    // The sweep tripped but the walk found nothing: a diststore bug, but
    // still a typed rejection rather than accepting a flagged snapshot.
    corrupt(
        TAG_OFFS,
        "structural sweep failed but the detailed walk found no violation".to_string(),
    )
}

/// `Graph`-shaped zero-copy accessors over an opened [`Snapshot`].
///
/// Every method reads little-endian `u32`s directly from the snapshot
/// buffer; nothing is deserialized up front and nothing allocates. The
/// structural invariants behind the indexing were checked at open time, so
/// no accessor can panic on any buffer that [`Snapshot::open`] accepted.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    n: usize,
    m: usize,
    max_degree: usize,
    next_stable: usize,
    offs: U32s<'a>,
    adjn: U32s<'a>,
    adje: U32s<'a>,
    endp: U32s<'a>,
    colr: Option<U32s<'a>>,
    stbl: Option<U32s<'a>>,
    perm: Option<U32s<'a>>,
}

impl<'a> SnapshotView<'a> {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Maximum node degree Δ (from META, verified against the offsets).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range (as the same call on [`distgraph::Graph`]
    /// would); never panics for in-range nodes.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offs.get(v.index() + 1) - self.offs.get(v.index())) as usize
    }

    /// The neighbors of `v` with their connecting edges, in ascending
    /// neighbor-id order — the same contract as [`distgraph::Graph::neighbors`],
    /// served straight from the file bytes.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = distgraph::Neighbor> + 'a {
        let start = self.offs.get(v.index()) as usize;
        let end = self.offs.get(v.index() + 1) as usize;
        let (adjn, adje) = (self.adjn, self.adje);
        (start..end).map(move |i| distgraph::Neighbor {
            node: NodeId(adjn.get(i)),
            edge: EdgeId(adje.get(i)),
        })
    }

    /// The two endpoints of edge `e` (smaller node id first).
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        (
            NodeId(self.endp.get(2 * e.index())),
            NodeId(self.endp.get(2 * e.index() + 1)),
        )
    }

    /// Returns `true` if the snapshot carries an edge coloring.
    pub fn has_coloring(&self) -> bool {
        self.colr.is_some()
    }

    /// The stored color of edge `e`: `None` if the snapshot has no coloring
    /// section or the edge is uncolored.
    #[inline]
    pub fn color(&self, e: EdgeId) -> Option<Color> {
        let raw = self.colr?.get(e.index());
        (raw != u32::MAX).then_some(raw as Color)
    }

    /// Returns `true` if the snapshot carries a stable-id table.
    pub fn has_stable_ids(&self) -> bool {
        self.stbl.is_some()
    }

    /// The stable id of edge `e`, if the snapshot carries the table.
    #[inline]
    pub fn stable_id(&self, e: EdgeId) -> Option<EdgeId> {
        self.stbl.map(|t| EdgeId(t.get(e.index())))
    }

    /// The stable-id high-water mark (0 when no table is stored).
    pub fn next_stable_id(&self) -> usize {
        self.next_stable
    }

    /// Returns `true` if the snapshot records the node permutation that
    /// produced its numbering.
    pub fn has_permutation(&self) -> bool {
        self.perm.is_some()
    }

    /// The original id of renumbered node `new`, if a permutation is stored.
    #[inline]
    pub fn original_id(&self, new: NodeId) -> Option<NodeId> {
        self.perm.map(|p| NodeId(p.get(new.index())))
    }

    /// Raw CSR offsets as a borrowed `u32` array (length `n + 1`).
    pub fn csr_offsets(&self) -> U32s<'a> {
        self.offs
    }

    /// The raw parallel adjacency arrays (`ADJN`, `ADJE`), `2m` elements
    /// each — the bulk decode path of [`crate::LoadedSnapshot`] streams
    /// these instead of calling [`SnapshotView::neighbors`] per node.
    pub(crate) fn adj_arrays(&self) -> (U32s<'a>, U32s<'a>) {
        (self.adjn, self.adje)
    }

    /// The raw interleaved endpoint array (`ENDP`), `m` `(u, v)` pairs.
    pub(crate) fn endpoint_array(&self) -> U32s<'a> {
        self.endp
    }
}
