//! Strongly typed identifiers for nodes, edges and colors.
//!
//! The simulator and the coloring algorithms pass identifiers around
//! constantly; newtypes prevent mixing them up (a node index used as an edge
//! index is a compile error rather than a silent bug).

use crate::error::GraphError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (vertex) of a [`Graph`](crate::Graph).
///
/// Node identifiers are dense indices in `0..n`. The *distributed* unique
/// identifiers from `{1, ..., poly n}` required by the LOCAL model are a
/// separate concept handled by the simulator (`distsim::IdAssignment`);
/// `NodeId` is purely the array index of the node in the simulated topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an undirected edge of a [`Graph`](crate::Graph).
///
/// Edge identifiers are dense indices in `0..m` in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// A color, used both for vertex and edge colorings.
///
/// Colors are plain `usize` values from a color space `{0, ..., C-1}`.
/// (The paper uses `{1, ..., C}`; we use zero-based indices throughout.)
pub type Color = usize;

impl NodeId {
    /// Creates a node identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`. Loader / ingestion code paths
    /// that may face corrupt or oversized inputs must use
    /// [`NodeId::try_new`] instead so overflow surfaces as a typed error.
    #[inline]
    pub fn new(index: usize) -> Self {
        Self::try_new(index).expect("node index exceeds u32::MAX")
    }

    /// Creates a node identifier from a dense index, returning a typed
    /// error instead of panicking when the index does not fit in `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IndexOverflow`] if `index > u32::MAX`.
    #[inline]
    pub fn try_new(index: usize) -> Result<Self, GraphError> {
        u32::try_from(index)
            .map(NodeId)
            .map_err(|_| GraphError::IndexOverflow {
                what: "node index",
                index: index as u64,
            })
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`. Loader / ingestion code paths
    /// that may face corrupt or oversized inputs must use
    /// [`EdgeId::try_new`] instead so overflow surfaces as a typed error.
    #[inline]
    pub fn new(index: usize) -> Self {
        Self::try_new(index).expect("edge index exceeds u32::MAX")
    }

    /// Creates an edge identifier from a dense index, returning a typed
    /// error instead of panicking when the index does not fit in `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IndexOverflow`] if `index > u32::MAX`.
    #[inline]
    pub fn try_new(index: usize) -> Result<Self, GraphError> {
        u32::try_from(index)
            .map(EdgeId)
            .map_err(|_| GraphError::IndexOverflow {
                what: "edge index",
                index: index as u64,
            })
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId::new(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The side of a node in a 2-colored bipartite graph.
///
/// The paper's Section 5 algorithms assume a bipartite graph `G = (U ∪ V, E)`
/// in which every node knows whether it belongs to `U` or to `V`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The `U` side of the bipartition.
    U,
    /// The `V` side of the bipartition.
    V,
}

impl Side {
    /// Returns the opposite side.
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::U => Side::V,
            Side::V => Side::U,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::U => write!(f, "U"),
            Side::V => write!(f, "V"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42usize), id);
        assert_eq!(format!("{id}"), "v42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(EdgeId::from(7usize), id);
        assert_eq!(format!("{id}"), "e7");
    }

    #[test]
    fn try_new_rejects_oversized_indices_with_typed_errors() {
        // Regression: these used to be reachable only as `expect` panics,
        // which let a corrupt snapshot header abort the process instead of
        // surfacing a decodable error.
        let too_big = u32::MAX as usize + 1;
        assert_eq!(
            NodeId::try_new(too_big),
            Err(GraphError::IndexOverflow {
                what: "node index",
                index: too_big as u64,
            })
        );
        assert_eq!(
            EdgeId::try_new(too_big),
            Err(GraphError::IndexOverflow {
                what: "edge index",
                index: too_big as u64,
            })
        );
        assert_eq!(NodeId::try_new(u32::MAX as usize), Ok(NodeId(u32::MAX)));
        assert_eq!(EdgeId::try_new(0), Ok(EdgeId(0)));
    }

    #[test]
    fn node_id_ordering_matches_index_order() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(10));
    }

    #[test]
    fn side_opposite_is_involution() {
        assert_eq!(Side::U.opposite(), Side::V);
        assert_eq!(Side::V.opposite(), Side::U);
        assert_eq!(Side::U.opposite().opposite(), Side::U);
    }

    #[test]
    fn side_display() {
        assert_eq!(format!("{} {}", Side::U, Side::V), "U V");
    }
}
