//! Typed blocking clients for the wire protocol.
//!
//! Two surfaces, both built by [`ClientBuilder`]:
//!
//! * [`Client`] — strict request-reply. Speaks protocol v2 (handshake,
//!   routing headers, graph targeting via [`Client::set_graph`]) by
//!   default, or v1 (headerless, default graph only) via
//!   [`ClientBuilder::connect_v1`]. Every method decodes the response into
//!   the type it promises — [`lookup`](Client::lookup) returns the outcome
//!   with its pinning epoch/version, [`metrics`](Client::metrics) a
//!   [`MetricsReport`], [`submit`](Client::submit) an
//!   `Ok(`[`Admitted`]`)`/`Err(`[`Rejection`]`)` admission verdict —
//!   and maps everything unexpected to a typed [`ClientError`].
//! * [`PipelinedClient`] — v2 only, decoupled send/receive:
//!   [`send`](PipelinedClient::send) writes a frame and returns a
//!   [`Ticket`]; [`recv`](PipelinedClient::recv) blocks for that ticket's
//!   answer, buffering out-of-order arrivals;
//!   [`recv_any`](PipelinedClient::recv_any) takes whatever completes
//!   next. Responses are re-associated by the echoed `request_id`, so
//!   answers may arrive in any order across graphs.

use crate::error::{ClientError, WireError};
use crate::wire::{
    encode_v2_request, read_frame, write_frame, GraphInfo, LookupOutcome, MetricsReport,
    RejectCode, Request, Response, PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A typed admission verdict: the batch was queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admitted {
    /// Admission ticket (1-based, dense per tenant lifetime).
    pub ticket: u64,
    /// Queue depth after admission.
    pub queued: u32,
}

/// A typed admission verdict: the batch was turned away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Which admission rule fired.
    pub code: RejectCode,
    /// Human-readable detail from the daemon.
    pub detail: String,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.detail)
    }
}

/// A completed flush: every batch admitted before the request is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flushed {
    /// Current epoch.
    pub epoch: u64,
    /// Version after the flush.
    pub version: u64,
    /// Ticks run since daemon start.
    pub ticks: u64,
}

/// A completed snapshot hot-swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Swapped {
    /// The new epoch.
    pub epoch: u64,
    /// Nodes in the new graph.
    pub n: u64,
    /// Edges in the new graph.
    pub m: u64,
}

/// Palette introspection of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaletteInfo {
    /// Current epoch.
    pub epoch: u64,
    /// Palette budget `P`.
    pub palette: u64,
    /// Current maximum degree Δ.
    pub max_degree: u64,
    /// Distinct colors actually used.
    pub colors_used: u64,
}

/// Shard-cut introspection of one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCut {
    /// Shard count the partition was built with.
    pub shards: u32,
    /// Edges crossing shard boundaries.
    pub cut_edges: u64,
    /// `cut_edges / m`.
    pub cut_fraction: f64,
    /// `max shard nodes / (n / shards)`.
    pub balance_factor: f64,
}

/// Handle for one in-flight pipelined request; redeem it with
/// [`PipelinedClient::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    id: u64,
}

impl Ticket {
    /// The client-chosen `request_id` the response will echo.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Connection options for both client surfaces.
#[derive(Debug, Clone, Default)]
pub struct ClientBuilder {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
}

impl ClientBuilder {
    /// A builder with no timeouts (blocking connect, blocking reads).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail `connect` calls that take longer than `d`.
    pub fn connect_timeout(mut self, d: Duration) -> Self {
        self.connect_timeout = Some(d);
        self
    }

    /// Fail reads that stall longer than `d` (surfaces as
    /// [`ClientError::Wire`] with a timeout [`io::Error`]).
    pub fn read_timeout(mut self, d: Duration) -> Self {
        self.read_timeout = Some(d);
        self
    }

    fn open(&self, addr: impl ToSocketAddrs) -> Result<TcpStream, ClientError> {
        let stream = match self.connect_timeout {
            Some(t) => {
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    ClientError::from(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "address resolved to nothing",
                    ))
                })?;
                TcpStream::connect_timeout(&resolved, t)?
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        Ok(stream)
    }

    /// Connects and performs the v2 handshake; requests target graph 0
    /// until [`Client::set_graph`] changes that.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Handshake`] if the daemon
    /// refuses the version or answers anything but a `Welcome`.
    pub fn connect(&self, addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = self.open(addr)?;
        let (max_inflight, graphs) = handshake(&mut stream)?;
        Ok(Client {
            stream,
            mode: Mode::V2 { next_id: 1 },
            graph: 0,
            max_inflight,
            graphs,
        })
    }

    /// Connects **without** a handshake: v1 semantics, default graph only.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_v1(&self, addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Ok(Client {
            stream: self.open(addr)?,
            mode: Mode::V1,
            graph: 0,
            max_inflight: 1,
            graphs: Vec::new(),
        })
    }

    /// Connects and performs the v2 handshake for pipelined use.
    ///
    /// # Errors
    ///
    /// As [`ClientBuilder::connect`].
    pub fn connect_pipelined(
        &self,
        addr: impl ToSocketAddrs,
    ) -> Result<PipelinedClient, ClientError> {
        let mut stream = self.open(addr)?;
        let (max_inflight, graphs) = handshake(&mut stream)?;
        Ok(PipelinedClient {
            stream,
            next_id: 1,
            max_inflight,
            graphs,
            stashed: HashMap::new(),
        })
    }
}

/// Sends `Hello`, expects `Welcome`; both frames are headerless.
fn handshake(stream: &mut TcpStream) -> Result<(u32, Vec<GraphInfo>), ClientError> {
    write_frame(
        stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )?;
    match read_response(stream)? {
        Response::Welcome {
            version,
            max_inflight,
            graphs,
        } => {
            if version != PROTOCOL_VERSION {
                return Err(ClientError::Handshake {
                    detail: format!("daemon answered unexpected version {version}"),
                });
            }
            Ok((max_inflight, graphs))
        }
        Response::ProtocolRejected { detail } => Err(ClientError::Handshake { detail }),
        other => Err(ClientError::Handshake {
            detail: format!("expected Welcome, got {other:?}"),
        }),
    }
}

fn read_payload(stream: &mut TcpStream) -> Result<Vec<u8>, ClientError> {
    match read_frame(stream)? {
        Some(payload) => Ok(payload),
        None => Err(ClientError::Wire(WireError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed before responding",
        )))),
    }
}

fn read_response(stream: &mut TcpStream) -> Result<Response, ClientError> {
    let payload = read_payload(stream)?;
    Ok(Response::decode(&payload)?)
}

#[derive(Debug)]
enum Mode {
    V1,
    V2 { next_id: u64 },
}

/// A strict request-reply client over one TCP connection. See the module
/// docs for the v1/v2 distinction.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    mode: Mode,
    graph: u32,
    max_inflight: u32,
    graphs: Vec<GraphInfo>,
}

impl Client {
    /// Connects with the v2 handshake and no timeouts — shorthand for
    /// `ClientBuilder::new().connect(addr)`.
    ///
    /// # Errors
    ///
    /// See [`ClientBuilder::connect`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        ClientBuilder::new().connect(addr)
    }

    /// The served-graph catalog from the handshake (empty on a v1
    /// connection, which never sees one).
    pub fn catalog(&self) -> &[GraphInfo] {
        &self.graphs
    }

    /// The in-flight cap the daemon advertised (1 on a v1 connection).
    pub fn max_inflight(&self) -> u32 {
        self.max_inflight
    }

    /// Targets all subsequent requests at `graph` (v2 routing; ignored on
    /// a v1 connection, which can only reach the default graph).
    pub fn set_graph(&mut self, graph: u32) -> &mut Self {
        self.graph = graph;
        self
    }

    /// The graph id requests currently target.
    pub fn graph(&self) -> u32 {
        self.graph
    }

    /// Low-level escape hatch: sends one request and returns the raw
    /// decoded response. The typed methods below are built on this; tests
    /// that probe protocol corners use it directly.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on transport/codec failures; on v2 also
    /// [`ClientError::Unexpected`] if the echoed `request_id` does not
    /// match (impossible against a correct daemon in request-reply use).
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        match &mut self.mode {
            Mode::V1 => {
                write_frame(&mut self.stream, &req.encode())?;
                read_response(&mut self.stream)
            }
            Mode::V2 { next_id } => {
                let rid = *next_id;
                *next_id += 1;
                write_frame(&mut self.stream, &encode_v2_request(rid, self.graph, req))?;
                let payload = read_payload(&mut self.stream)?;
                let (got, resp) = crate::wire::decode_v2_response(&payload)?;
                if got != rid {
                    return Err(ClientError::Unexpected {
                        expected: "matching request id",
                        got: format!("response tagged {got}, expected {rid}"),
                    });
                }
                Ok(resp)
            }
        }
    }

    /// Color lookup by stable edge id: the outcome plus the `(epoch,
    /// version)` pair that pins it.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; a non-`Color` answer is
    /// [`ClientError::Unexpected`] (or [`ClientError::Rejected`] for an
    /// unknown graph).
    pub fn lookup(&mut self, stable: u64) -> Result<(LookupOutcome, u64, u64), ClientError> {
        match self.request(&Request::Lookup { stable })? {
            Response::Color {
                epoch,
                version,
                outcome,
            } => Ok((outcome, epoch, version)),
            other => Err(unexpected("Color", other)),
        }
    }

    /// Submits a mutation batch; the admission verdict is data, not an
    /// error — only transport/protocol failures surface as `Err`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn submit(
        &mut self,
        delete: Vec<u64>,
        insert: Vec<(u32, u32)>,
    ) -> Result<Result<Admitted, Rejection>, ClientError> {
        match self.request(&Request::Submit { delete, insert })? {
            Response::Submitted { ticket, queued } => Ok(Ok(Admitted { ticket, queued })),
            Response::Rejected { code, detail } => Ok(Err(Rejection { code, detail })),
            other => Err(unexpected("Submitted or Rejected", other)),
        }
    }

    /// Fetches the metrics snapshot of the targeted graph.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(report) => Ok(*report),
            other => Err(unexpected("Metrics", other)),
        }
    }

    /// Palette introspection of the targeted graph.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn palette(&mut self) -> Result<PaletteInfo, ClientError> {
        match self.request(&Request::Palette)? {
            Response::Palette {
                epoch,
                palette,
                max_degree,
                colors_used,
            } => Ok(PaletteInfo {
                epoch,
                palette,
                max_degree,
                colors_used,
            }),
            other => Err(unexpected("Palette", other)),
        }
    }

    /// Shard-cut introspection of the targeted graph.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shards(&mut self, shards: u32) -> Result<ShardCut, ClientError> {
        match self.request(&Request::ShardInfo { shards })? {
            Response::Shards {
                shards,
                cut_edges,
                cut_fraction,
                balance_factor,
            } => Ok(ShardCut {
                shards,
                cut_edges,
                cut_fraction,
                balance_factor,
            }),
            other => Err(unexpected("Shards", other)),
        }
    }

    /// Applies all batches admitted so far on the targeted graph.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn flush(&mut self) -> Result<Flushed, ClientError> {
        match self.request(&Request::Flush)? {
            Response::Flushed {
                epoch,
                version,
                ticks,
            } => Ok(Flushed {
                epoch,
                version,
                ticks,
            }),
            other => Err(unexpected("Flushed", other)),
        }
    }

    /// Requests a snapshot hot-swap on the targeted graph.
    ///
    /// # Errors
    ///
    /// [`ClientError::SwapRejected`] if the daemon refused the snapshot
    /// (the old generation is still serving); otherwise see
    /// [`Client::request`].
    pub fn swap(&mut self, path: &str) -> Result<Swapped, ClientError> {
        match self.request(&Request::Swap { path: path.into() })? {
            Response::Swapped { epoch, n, m } => Ok(Swapped { epoch, n, m }),
            Response::SwapRejected { detail } => Err(ClientError::SwapRejected { detail }),
            other => Err(unexpected("Swapped", other)),
        }
    }

    /// Asks the daemon to stop.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", other)),
        }
    }
}

/// Maps an off-contract response to the right [`ClientError`]: typed
/// daemon-side failures stay typed; anything else is `Unexpected`.
fn unexpected(expected: &'static str, got: Response) -> ClientError {
    match got {
        Response::Rejected { code, detail } => ClientError::Rejected(Rejection { code, detail }),
        Response::ServerError { detail } => ClientError::Server { detail },
        Response::ProtocolRejected { detail } => ClientError::ProtocolRejected { detail },
        other => ClientError::Unexpected {
            expected,
            got: format!("{other:?}"),
        },
    }
}

/// A pipelined v2 client: decoupled `send`/`recv` with out-of-order
/// completion. Not `Sync` — one thread drives one connection; spin up more
/// connections for more concurrency (the loadgen does).
#[derive(Debug)]
pub struct PipelinedClient {
    stream: TcpStream,
    next_id: u64,
    max_inflight: u32,
    graphs: Vec<GraphInfo>,
    /// Responses that arrived while waiting for a different ticket.
    stashed: HashMap<u64, Response>,
}

impl PipelinedClient {
    /// Connects with the v2 handshake and no timeouts — shorthand for
    /// `ClientBuilder::new().connect_pipelined(addr)`.
    ///
    /// # Errors
    ///
    /// See [`ClientBuilder::connect_pipelined`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        ClientBuilder::new().connect_pipelined(addr)
    }

    /// The served-graph catalog from the handshake.
    pub fn catalog(&self) -> &[GraphInfo] {
        &self.graphs
    }

    /// The in-flight cap the daemon advertised. Sending past it does not
    /// error — the daemon simply stops reading until answers drain, and
    /// TCP backpressure eventually blocks `send`.
    pub fn max_inflight(&self) -> u32 {
        self.max_inflight
    }

    /// Writes one request frame routed to `graph` and returns the ticket
    /// its answer will carry. Does not wait for any response.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn send(&mut self, graph: u32, req: &Request) -> Result<Ticket, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &encode_v2_request(id, graph, req))?;
        Ok(Ticket { id })
    }

    /// Blocks until `ticket`'s answer arrives, stashing any other
    /// responses that complete first (they stay redeemable).
    ///
    /// # Errors
    ///
    /// Transport/codec failures.
    pub fn recv(&mut self, ticket: Ticket) -> Result<Response, ClientError> {
        loop {
            if let Some(resp) = self.stashed.remove(&ticket.id) {
                return Ok(resp);
            }
            let (id, resp) = self.read_one()?;
            if id == ticket.id {
                return Ok(resp);
            }
            self.stashed.insert(id, resp);
        }
    }

    /// Returns the next completed response — stashed arrivals first, then
    /// whatever the daemon answers next — with the `request_id` it
    /// carried. This is how out-of-order completion is observed.
    ///
    /// # Errors
    ///
    /// Transport/codec failures.
    pub fn recv_any(&mut self) -> Result<(u64, Response), ClientError> {
        if let Some(&id) = self.stashed.keys().next() {
            let resp = self.stashed.remove(&id).expect("key just observed");
            return Ok((id, resp));
        }
        self.read_one()
    }

    fn read_one(&mut self) -> Result<(u64, Response), ClientError> {
        let payload = read_payload(&mut self.stream)?;
        Ok(crate::wire::decode_v2_response(&payload)?)
    }
}
