//! Edge orientations.
//!
//! Section 5 of the paper computes *generalized balanced edge orientations*
//! (Definition 5.2): every edge gets a direction and the quantity `x_w`, the
//! number of edges oriented *towards* a node `w`, must satisfy per-edge
//! inequalities. [`Orientation`] stores a (possibly partial) orientation of a
//! graph's edges and maintains the `x_w` counters incrementally, because the
//! phase algorithm of Section 5 re-orients edges when tokens move over them.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// A partial orientation of the edges of a graph.
///
/// Each edge is either unoriented or oriented towards one of its endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Orientation {
    /// For each edge, the node it is oriented towards (its "head"), if any.
    head: Vec<Option<NodeId>>,
    /// For each node `w`, the number of edges currently oriented towards `w`
    /// (the paper's `x_w`).
    indegree: Vec<usize>,
}

impl Orientation {
    /// Creates an all-unoriented orientation for `graph`.
    pub fn new(graph: &Graph) -> Self {
        Orientation {
            head: vec![None; graph.m()],
            indegree: vec![0; graph.n()],
        }
    }

    /// Number of edges this orientation was created for.
    pub fn num_edges(&self) -> usize {
        self.head.len()
    }

    /// Returns the head (the node the edge points to) of `e`, or `None` if the
    /// edge is unoriented.
    #[inline]
    pub fn head(&self, e: EdgeId) -> Option<NodeId> {
        self.head[e.index()]
    }

    /// Returns `true` if `e` has been assigned a direction.
    #[inline]
    pub fn is_oriented(&self, e: EdgeId) -> bool {
        self.head[e.index()].is_some()
    }

    /// The number of edges oriented towards `w` — the paper's `x_w`.
    #[inline]
    pub fn indegree(&self, w: NodeId) -> usize {
        self.indegree[w.index()]
    }

    /// Orients edge `e` of `graph` towards `towards`.
    ///
    /// If the edge was already oriented, the previous head's indegree is
    /// decremented first, so this can also be used to flip an edge.
    ///
    /// # Panics
    ///
    /// Panics if `towards` is not an endpoint of `e`.
    pub fn orient(&mut self, graph: &Graph, e: EdgeId, towards: NodeId) {
        assert!(
            graph.is_endpoint(e, towards),
            "{towards} is not an endpoint of {e}"
        );
        if let Some(prev) = self.head[e.index()] {
            self.indegree[prev.index()] -= 1;
        }
        self.head[e.index()] = Some(towards);
        self.indegree[towards.index()] += 1;
    }

    /// Reverses the direction of an oriented edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge is unoriented.
    pub fn flip(&mut self, graph: &Graph, e: EdgeId) {
        let head = self.head[e.index()].expect("cannot flip an unoriented edge");
        let tail = graph.other_endpoint(e, head);
        self.orient(graph, e, tail);
    }

    /// Removes the direction of `e` (used only in tests and tooling; the
    /// paper's algorithm never un-orients an edge).
    pub fn clear(&mut self, e: EdgeId) {
        if let Some(prev) = self.head[e.index()].take() {
            self.indegree[prev.index()] -= 1;
        }
    }

    /// Number of edges that currently have a direction.
    pub fn oriented_count(&self) -> usize {
        self.head.iter().filter(|h| h.is_some()).count()
    }

    /// Iterator over `(edge, head)` pairs of all oriented edges.
    pub fn oriented_edges(&self) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.head
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|head| (EdgeId::new(i), head)))
    }

    /// Recomputes the indegrees from scratch and checks they match the
    /// incrementally maintained counters. Intended for tests / debugging.
    pub fn check_consistency(&self, graph: &Graph) -> bool {
        let mut fresh = vec![0usize; graph.n()];
        for (e, head) in self.oriented_edges() {
            if !graph.is_endpoint(e, head) {
                return false;
            }
            fresh[head.index()] += 1;
        }
        fresh == self.indegree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn new_is_unoriented() {
        let g = path4();
        let o = Orientation::new(&g);
        assert_eq!(o.oriented_count(), 0);
        for e in g.edges() {
            assert!(!o.is_oriented(e));
            assert_eq!(o.head(e), None);
        }
        for v in g.nodes() {
            assert_eq!(o.indegree(v), 0);
        }
    }

    #[test]
    fn orient_and_indegree() {
        let g = path4();
        let mut o = Orientation::new(&g);
        o.orient(&g, EdgeId::new(0), NodeId::new(1));
        o.orient(&g, EdgeId::new(1), NodeId::new(1));
        assert_eq!(o.indegree(NodeId::new(1)), 2);
        assert_eq!(o.indegree(NodeId::new(0)), 0);
        assert_eq!(o.oriented_count(), 2);
        assert!(o.check_consistency(&g));
    }

    #[test]
    fn reorient_updates_counters() {
        let g = path4();
        let mut o = Orientation::new(&g);
        o.orient(&g, EdgeId::new(0), NodeId::new(1));
        o.orient(&g, EdgeId::new(0), NodeId::new(0));
        assert_eq!(o.indegree(NodeId::new(1)), 0);
        assert_eq!(o.indegree(NodeId::new(0)), 1);
        assert!(o.check_consistency(&g));
    }

    #[test]
    fn flip_reverses_direction() {
        let g = path4();
        let mut o = Orientation::new(&g);
        o.orient(&g, EdgeId::new(2), NodeId::new(3));
        o.flip(&g, EdgeId::new(2));
        assert_eq!(o.head(EdgeId::new(2)), Some(NodeId::new(2)));
        assert_eq!(o.indegree(NodeId::new(3)), 0);
        assert_eq!(o.indegree(NodeId::new(2)), 1);
    }

    #[test]
    #[should_panic(expected = "cannot flip")]
    fn flip_unoriented_panics() {
        let g = path4();
        let mut o = Orientation::new(&g);
        o.flip(&g, EdgeId::new(0));
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn orient_towards_non_endpoint_panics() {
        let g = path4();
        let mut o = Orientation::new(&g);
        o.orient(&g, EdgeId::new(0), NodeId::new(3));
    }

    #[test]
    fn clear_removes_direction() {
        let g = path4();
        let mut o = Orientation::new(&g);
        o.orient(&g, EdgeId::new(0), NodeId::new(1));
        o.clear(EdgeId::new(0));
        assert!(!o.is_oriented(EdgeId::new(0)));
        assert_eq!(o.indegree(NodeId::new(1)), 0);
        assert_eq!(o.oriented_count(), 0);
    }

    #[test]
    fn oriented_edges_iterates_pairs() {
        let g = path4();
        let mut o = Orientation::new(&g);
        o.orient(&g, EdgeId::new(1), NodeId::new(2));
        let pairs: Vec<_> = o.oriented_edges().collect();
        assert_eq!(pairs, vec![(EdgeId::new(1), NodeId::new(2))]);
    }
}
