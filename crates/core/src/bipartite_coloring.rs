//! `(2+ε)Δ`-edge coloring of 2-colored bipartite graphs (Lemma 6.1,
//! Appendix C).
//!
//! The graph is recursively split with the generalized defective 2-edge
//! coloring of Corollary 5.7 (always with `λ_e = 1/2`): each application cuts
//! the maximum edge degree roughly in half while the color space is split
//! into two disjoint ranges, so the two halves can be colored recursively *in
//! parallel*. After `k ≈ ln(1+ε/4)/χ` levels the leaf subgraphs have small
//! degree and are colored greedily with `d+1` colors each (schedule = the
//! one-round port-pair coloring). The union of the per-leaf palettes has size
//! `(2+ε)Δ` for the paper's parameters.

use crate::defective_edge::{defective_two_edge_coloring, uniform_lambda};
use crate::greedy_finish::{greedy_palette_coloring_by_schedule, port_pair_edge_coloring};
use crate::params::ColoringParams;
use distgraph::{BipartiteGraph, EdgeColoring, EdgeId};
use distsim::{LedgerEntry, Metrics, Network};

/// Result of the bipartite `(2+ε)Δ`-edge coloring.
#[derive(Debug, Clone)]
pub struct BipartiteColoringResult {
    /// The complete proper edge coloring.
    pub coloring: EdgeColoring,
    /// Number of colors in the palette actually used (`≤ (2+ε)Δ + O(β)`).
    pub colors_used: usize,
    /// Recursion depth (number of defective-splitting levels).
    pub levels: u32,
    /// Number of leaf subgraphs colored greedily.
    pub leaves: usize,
}

/// One leaf of the splitting recursion.
struct Leaf {
    graph: BipartiteGraph,
    /// Map from the leaf's edge ids to the *original* graph's edge ids.
    map: Vec<EdgeId>,
}

/// Computes a proper edge coloring of the 2-colored bipartite graph `bg` with
/// at most `(2+ε)Δ + O(β·2^k)` colors in `poly(log Δ / ε)` rounds
/// (Lemma 6.1). Rounds and bandwidth are charged to `net`.
pub fn color_bipartite(
    bg: &BipartiteGraph,
    params: &ColoringParams,
    net: &mut Network<'_>,
) -> BipartiteColoringResult {
    let graph = bg.graph();
    let m = graph.m();
    let mut coloring = EdgeColoring::empty(m);
    if m == 0 {
        return BipartiteColoringResult {
            coloring,
            colors_used: 0,
            levels: 0,
            leaves: 0,
        };
    }

    let eps = params.eps;
    let dbar = graph.max_edge_degree().max(1);
    // χ = Θ(ε / log Δ̄) and k = ⌊ln(1 + ε/4)/χ⌋ recursion levels (Appendix C).
    //
    // NOTE: ε intentionally controls the *round* cost, not only the palette.
    // χ feeds the orientation as ν = χ/8, and each defective split runs
    // Θ(ln Δ̄ / ν) phases, so tightening ε (fewer colors) costs poly(1/ε)
    // more rounds — exactly the poly(log Δ̄ / ε) trade of Lemma 6.1 /
    // Theorem 6.3. When Δ̄ ≤ the split cutoff no level runs at all and the
    // rounds are ε-invariant. Pinned by
    // `congest_rounds_eps_dependence_is_intended` in congest_coloring.rs.
    let chi = (eps / (4.0 * (dbar as f64).ln().max(1.0))).clamp(1e-6, 0.5);
    let max_levels = ((1.0 + eps / 4.0).ln() / chi).floor() as u32;
    let cutoff = params.split_cutoff(dbar, chi);

    // Level-by-level splitting. All subgraphs of one level are processed in
    // parallel (their rounds are absorbed as the maximum over the level).
    let identity_map: Vec<EdgeId> = graph.edges().collect();
    let mut active: Vec<Leaf> = vec![Leaf {
        graph: bg.clone(),
        map: identity_map,
    }];
    let mut leaves: Vec<Leaf> = Vec::new();
    let mut levels_used = 0u32;

    for _level in 0..max_levels {
        // Move the subgraphs that are already small enough to the leaf list.
        let (to_split, done): (Vec<Leaf>, Vec<Leaf>) = active
            .into_iter()
            .partition(|leaf| leaf.graph.graph().max_edge_degree() > cutoff);
        leaves.extend(done);
        if to_split.is_empty() {
            active = Vec::new();
            break;
        }
        levels_used += 1;
        let level_dbar = to_split
            .iter()
            .map(|l| l.graph.graph().max_edge_degree())
            .max()
            .unwrap_or(0);
        let level_edges: usize = to_split.iter().map(|l| l.graph.graph().m()).sum();
        let mut next: Vec<Leaf> = Vec::new();
        let mut level_metrics: Vec<Metrics> = Vec::new();
        for leaf in to_split {
            let sub_graph = leaf.graph.graph();
            let lambda = uniform_lambda(sub_graph.m());
            let orientation_params = params.orientation(chi);
            let mut child_net = net.child(sub_graph);
            let split = defective_two_edge_coloring(
                &leaf.graph,
                &lambda,
                &orientation_params,
                &mut child_net,
            );
            level_metrics.push(child_net.metrics());
            // Partition the leaf's edges into the red and the blue subgraph.
            let (red_graph, red_map) = leaf.graph.edge_subgraph(|e| split.is_red(e));
            let (blue_graph, blue_map) = leaf.graph.edge_subgraph(|e| !split.is_red(e));
            let remap = |local_map: Vec<EdgeId>| -> Vec<EdgeId> {
                local_map.into_iter().map(|e| leaf.map[e.index()]).collect()
            };
            if red_graph.graph().m() > 0 {
                next.push(Leaf {
                    graph: red_graph,
                    map: remap(red_map),
                });
            }
            if blue_graph.graph().m() > 0 {
                next.push(Leaf {
                    graph: blue_graph,
                    map: remap(blue_map),
                });
            }
        }
        net.absorb_parallel(&level_metrics);
        net.record_ledger(LedgerEntry {
            depth: levels_used,
            stage: "bipartite-split",
            delta_level: level_dbar,
            edges: level_edges,
            rounds: level_metrics.iter().map(|m| m.rounds).max().unwrap_or(0),
            defect_ratio: f64::NAN,
            fallback: false,
        });
        active = next;
        if active.is_empty() {
            break;
        }
    }
    leaves.extend(active);

    // Color every leaf greedily with its own disjoint color range.
    let mut offset = 0usize;
    let mut leaf_metrics: Vec<Metrics> = Vec::new();
    for leaf in &leaves {
        let sub_graph = leaf.graph.graph();
        if sub_graph.m() == 0 {
            continue;
        }
        let mut child_net = net.child(sub_graph);
        let schedule = port_pair_edge_coloring(&leaf.graph, &mut child_net);
        let palette = sub_graph.max_edge_degree() + 1;
        let mut sub_coloring = EdgeColoring::empty(sub_graph.m());
        let outcome = greedy_palette_coloring_by_schedule(
            sub_graph,
            &schedule,
            palette,
            &mut sub_coloring,
            &mut child_net,
        );
        debug_assert!(
            outcome.uncolorable.is_empty(),
            "palette d̄+1 always suffices"
        );
        leaf_metrics.push(child_net.metrics());
        for e in sub_graph.edges() {
            if let Some(c) = sub_coloring.color(e) {
                coloring.set(leaf.map[e.index()], c + offset);
            }
        }
        offset += palette;
    }
    net.absorb_parallel(&leaf_metrics);
    net.record_ledger(LedgerEntry {
        depth: levels_used,
        stage: "bipartite-leaves",
        delta_level: leaves
            .iter()
            .map(|l| l.graph.graph().max_edge_degree())
            .max()
            .unwrap_or(0),
        edges: leaves.iter().map(|l| l.graph.graph().m()).sum(),
        rounds: leaf_metrics.iter().map(|m| m.rounds).max().unwrap_or(0),
        defect_ratio: f64::NAN,
        fallback: false,
    });

    BipartiteColoringResult {
        colors_used: coloring.palette_size(),
        coloring,
        levels: levels_used,
        leaves: leaves.iter().filter(|l| l.graph.graph().m() > 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;
    use distsim::Model;
    use edgecolor_verify::{check_complete, check_proper_edge_coloring};

    fn check_result(bg: &BipartiteGraph, result: &BipartiteColoringResult) {
        check_proper_edge_coloring(bg.graph(), &result.coloring).assert_ok();
        check_complete(bg.graph(), &result.coloring).assert_ok();
    }

    #[test]
    fn small_graph_is_colored_greedily_without_splitting() {
        let bg = generators::regular_bipartite(8, 3, 1).unwrap();
        let params = ColoringParams::new(0.5);
        let mut net = Network::new(bg.graph(), Model::Local);
        let result = color_bipartite(&bg, &params, &mut net);
        check_result(&bg, &result);
        assert_eq!(result.levels, 0);
        // degree 3 ⇒ edge degree 4 ⇒ at most 5 colors
        assert!(result.colors_used <= bg.graph().max_edge_degree() + 1);
    }

    #[test]
    fn large_regular_bipartite_graph_splits_and_respects_color_budget() {
        let bg = generators::regular_bipartite(96, 48, 7).unwrap();
        let eps = 0.5;
        let params = ColoringParams::new(eps);
        let mut net = Network::new(bg.graph(), Model::Local);
        let result = color_bipartite(&bg, &params, &mut net);
        check_result(&bg, &result);
        assert!(result.levels >= 1, "expected at least one splitting level");
        let delta = bg.graph().max_degree();
        // Lemma 6.1 budget with the practical profile's additive slack: the
        // palette must stay close to (2+ε)Δ; allow the additive β per leaf.
        let budget = ((2.0 + eps) * delta as f64 + 4.0 * result.leaves as f64).ceil() as usize
            + params.low_degree_cutoff;
        assert!(
            result.colors_used <= budget,
            "colors {} exceed budget {budget} (Δ = {delta})",
            result.colors_used
        );
        assert!(net.rounds() > 0);
    }

    #[test]
    fn irregular_bipartite_graphs_are_colored_properly() {
        let bg = generators::random_bipartite(60, 60, 0.4, 13);
        let params = ColoringParams::new(0.5);
        let mut net = Network::new(bg.graph(), Model::Local);
        let result = color_bipartite(&bg, &params, &mut net);
        check_result(&bg, &result);
        assert!(result.colors_used <= 3 * bg.graph().max_degree().max(1));
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = distgraph::Graph::from_edges(3, &[]).unwrap();
        let bg = BipartiteGraph::from_graph(g).unwrap();
        let params = ColoringParams::new(0.5);
        let mut net = Network::new(bg.graph(), Model::Local);
        let result = color_bipartite(&bg, &params, &mut net);
        assert_eq!(result.colors_used, 0);
        assert_eq!(result.leaves, 0);
    }

    #[test]
    fn paper_profile_never_splits_at_simulation_scale_but_stays_correct() {
        let bg = generators::regular_bipartite(32, 16, 3).unwrap();
        let params = ColoringParams::paper(0.5);
        let mut net = Network::new(bg.graph(), Model::Local);
        let result = color_bipartite(&bg, &params, &mut net);
        check_result(&bg, &result);
        // The paper-profile cutoff β/ε is astronomically larger than Δ̄ here,
        // so no splitting happens and the greedy bound d̄+1 applies.
        assert_eq!(result.levels, 0);
        assert!(result.colors_used <= bg.graph().max_edge_degree() + 1);
    }

    #[test]
    fn complete_bipartite_graph() {
        let bg = generators::complete_bipartite(24, 24);
        let params = ColoringParams::new(1.0);
        let mut net = Network::new(bg.graph(), Model::Local);
        let result = color_bipartite(&bg, &params, &mut net);
        check_result(&bg, &result);
    }
}
