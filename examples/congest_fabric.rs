//! CONGEST-model coloring of a large fabric with a bandwidth audit
//! (Theorem 1.2).
//!
//! The (8+ε)Δ CONGEST algorithm only ever sends counters and color indices,
//! so every message fits in O(log n) bits. This example runs it on a few
//! graph families and prints the measured maximum message size against the
//! model's bandwidth limit.
//!
//! Run with `cargo run --release --example congest_fabric`.

use distgraph::generators;
use distsim::IdAssignment;
use edgecolor::{color_congest, ColoringParams};
use edgecolor_verify::{check_complete, check_proper_edge_coloring};

fn main() {
    let params = ColoringParams::new(0.5);
    let workloads: Vec<(&str, distgraph::Graph)> = vec![
        ("hypercube dim 9", generators::hypercube(9)),
        (
            "random 16-regular, n=512",
            generators::random_regular(512, 16, 9).unwrap(),
        ),
        ("power-law n=600", generators::power_law(600, 2.5, 24, 4)),
        ("grid 32x32", generators::grid(32, 32)),
    ];

    println!(
        "{:<26} {:>6} {:>8} {:>4} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "graph", "n", "m", "Δ", "colors", "budget", "rounds", "max msg bits", "violations"
    );
    for (name, graph) in workloads {
        let ids = IdAssignment::scattered(graph.n(), 1);
        let result = color_congest(&graph, &ids, &params);
        check_proper_edge_coloring(&graph, &result.coloring).assert_ok();
        check_complete(&graph, &result.coloring).assert_ok();
        let budget = ((8.0 + 6.0 * params.eps) * graph.max_degree() as f64).ceil() as usize + 16;
        println!(
            "{:<26} {:>6} {:>8} {:>4} {:>8} {:>8} {:>10} {:>12} {:>10}",
            name,
            graph.n(),
            graph.m(),
            graph.max_degree(),
            result.colors_used,
            budget,
            result.metrics.rounds,
            result.metrics.max_message_bits,
            result.metrics.congest_violations
        );
    }
}
