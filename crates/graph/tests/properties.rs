//! Property-based tests for the graph substrate.

use distgraph::{
    generators, EdgeColoring, Graph, GraphError, ListAssignment, Side, VertexColoring,
};
use proptest::prelude::*;

/// Strategy producing a random simple graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(120)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(key);
                }
            }
            Graph::from_edges(n, &edges).expect("sanitized edges are valid")
        })
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        prop_assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn edge_degree_formula(g in arb_graph()) {
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert_eq!(g.edge_degree(e), g.degree(u) + g.degree(v) - 2);
            prop_assert_eq!(g.adjacent_edges(e).len(), g.edge_degree(e));
        }
    }

    #[test]
    fn max_edge_degree_bound(g in arb_graph()) {
        // Δ̄ ≤ 2Δ − 2 whenever the graph has an edge (Section 2 of the paper).
        if g.m() > 0 {
            prop_assert!(g.max_edge_degree() <= 2 * g.max_degree() - 2);
        }
    }

    #[test]
    fn edge_between_is_symmetric_and_consistent(g in arb_graph()) {
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert_eq!(g.edge_between(u, v), Some(e));
            prop_assert_eq!(g.edge_between(v, u), Some(e));
            prop_assert_eq!(g.other_endpoint(e, u), v);
            prop_assert_eq!(g.other_endpoint(e, v), u);
        }
    }

    #[test]
    fn bipartition_is_proper_when_found(g in arb_graph()) {
        if let Some(sides) = g.bipartition() {
            for e in g.edges() {
                let (u, v) = g.endpoints(e);
                prop_assert_ne!(sides[u.index()], sides[v.index()]);
            }
        }
    }

    #[test]
    fn subgraph_degrees_never_increase(g in arb_graph()) {
        let (sub, map) = g.edge_subgraph(|e| e.index() % 2 == 0);
        prop_assert_eq!(sub.n(), g.n());
        prop_assert!(sub.m() <= g.m());
        for v in sub.nodes() {
            prop_assert!(sub.degree(v) <= g.degree(v));
        }
        for (new_idx, orig) in map.iter().enumerate() {
            let (a, b) = sub.endpoints(distgraph::EdgeId::new(new_idx));
            let (oa, ob) = g.endpoints(*orig);
            prop_assert_eq!((a, b), (oa, ob));
        }
    }

    #[test]
    fn degree_plus_one_lists_always_satisfy_invariant(g in arb_graph()) {
        let lists = ListAssignment::degree_plus_one(&g);
        prop_assert!(lists.is_degree_plus_one(&g));
        for e in g.edges() {
            prop_assert!(lists.list_size(e) > g.edge_degree(e));
        }
    }

    #[test]
    fn identity_vertex_coloring_is_proper(g in arb_graph()) {
        let coloring = VertexColoring::from_vec((0..g.n()).collect());
        prop_assert!(coloring.is_proper(&g));
        prop_assert_eq!(coloring.max_defect(&g), 0);
    }

    #[test]
    fn monochromatic_edge_coloring_defect_equals_edge_degree(g in arb_graph()) {
        let mut coloring = EdgeColoring::empty(g.m());
        for e in g.edges() {
            coloring.set(e, 0);
        }
        for e in g.edges() {
            prop_assert_eq!(coloring.defect(&g, e), g.edge_degree(e));
        }
    }
}

/// A valid sanitized edge list for `n` nodes (helper for the error-path
/// properties below).
fn sanitized_edges(pairs: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for (u, v) in pairs {
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    edges
}

proptest! {
    // ---- `Graph::from_edges` error paths -----------------------------------

    #[test]
    fn from_edges_rejects_out_of_range_endpoints(
        (n, pairs, bad_pos, overshoot, flip) in (2usize..24).prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 0..40),
                0usize..64,
                0usize..10,
                0u8..2,
            )
        })
    ) {
        let mut edges = sanitized_edges(pairs);
        let bad_node = n + overshoot;
        let bad_edge = if flip == 0 { (0, bad_node) } else { (bad_node, 0) };
        let pos = bad_pos.min(edges.len());
        edges.insert(pos, bad_edge);
        prop_assert_eq!(
            Graph::from_edges(n, &edges),
            Err(GraphError::NodeOutOfRange { node: bad_node, n })
        );
    }

    #[test]
    fn from_edges_rejects_self_loops(
        (n, pairs, bad_pos, loop_node) in (2usize..24).prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 0..40),
                0usize..64,
                0usize..n,
            )
        })
    ) {
        let mut edges = sanitized_edges(pairs);
        let pos = bad_pos.min(edges.len());
        edges.insert(pos, (loop_node, loop_node));
        prop_assert_eq!(
            Graph::from_edges(n, &edges),
            Err(GraphError::SelfLoop { node: loop_node })
        );
    }

    #[test]
    fn from_edges_rejects_duplicates_in_either_orientation(
        (n, pairs, dup_pick, flip) in (2usize..24).prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 1..40),
                0usize..64,
                0u8..2,
            )
        })
    ) {
        let mut edges = sanitized_edges(pairs);
        if edges.is_empty() {
            return Ok(());
        }
        let (u, v) = edges[dup_pick % edges.len()];
        let dup = if flip == 0 { (u, v) } else { (v, u) };
        edges.push(dup);
        let err = Graph::from_edges(n, &edges).unwrap_err();
        prop_assert_eq!(err, GraphError::DuplicateEdge { u: dup.0, v: dup.1 });
    }

    // ---- CSR representation invariants -------------------------------------

    #[test]
    fn csr_offsets_are_monotone_and_consistent(g in arb_graph()) {
        // The per-node adjacency slices partition 2m entries: their lengths
        // (the degrees, i.e. consecutive offset differences) are non-negative
        // and sum to the handshake total.
        let mut total = 0usize;
        for v in g.nodes() {
            let slice = g.neighbors(v);
            prop_assert_eq!(slice.len(), g.degree(v));
            total += slice.len();
        }
        prop_assert_eq!(total, 2 * g.m());
    }

    #[test]
    fn csr_adjacency_is_sorted_and_self_consistent(g in arb_graph()) {
        for v in g.nodes() {
            let slice = g.neighbors(v);
            for pair in slice.windows(2) {
                // Strictly increasing: sorted and no parallel edges.
                prop_assert!(pair[0].node < pair[1].node);
            }
            for nb in slice {
                prop_assert!(g.is_endpoint(nb.edge, v));
                prop_assert_eq!(g.other_endpoint(nb.edge, v), nb.node);
                prop_assert_eq!(g.edge_between(v, nb.node), Some(nb.edge));
            }
        }
    }

    #[test]
    fn edge_degree_is_consistent_with_csr_views(g in arb_graph()) {
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert!(u < v, "endpoints stored smaller-first");
            prop_assert_eq!(
                g.edge_degree(e),
                g.neighbors(u).len() + g.neighbors(v).len() - 2
            );
            prop_assert_eq!(g.adjacent_edges(e).len(), g.edge_degree(e));
        }
        if g.m() > 0 {
            let max_by_scan = g.edges().map(|e| g.edge_degree(e)).max().unwrap();
            prop_assert_eq!(g.max_edge_degree(), max_by_scan);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grid_torus_generator_is_four_regular(rows in 3usize..12, cols in 3usize..12) {
        let g = generators::grid_torus(rows, cols);
        prop_assert_eq!(g.n(), rows * cols);
        prop_assert_eq!(g.m(), 2 * rows * cols);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), 4);
        }
        prop_assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn power_law_generator_is_deterministic(n in 10usize..200, seed in 0u64..500) {
        let a = generators::power_law(n, 2.5, 16, seed);
        let b = generators::power_law(n, 2.5, 16, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn regular_bipartite_generator_is_regular(n in 4usize..24, d in 1usize..6, seed in 0u64..1000) {
        let d = d.min(n);
        let bg = generators::regular_bipartite(n, d, seed).unwrap();
        let g = bg.graph();
        prop_assert_eq!(g.n(), 2 * n);
        prop_assert_eq!(g.m(), n * d);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), d);
        }
        for e in g.edges() {
            let (u, v) = bg.endpoints_uv(e);
            prop_assert_eq!(bg.side(u), Side::U);
            prop_assert_eq!(bg.side(v), Side::V);
        }
    }

    #[test]
    fn random_regular_generator_respects_degree_bound(n in 6usize..40, d in 2usize..6, seed in 0u64..1000) {
        let d = d.min(n - 1);
        if n * d % 2 == 1 {
            return Ok(());
        }
        let g = generators::random_regular(n, d, seed).unwrap();
        prop_assert!(g.max_degree() <= d);
    }

    #[test]
    fn trees_are_connected_and_acyclic(n in 2usize..128, seed in 0u64..1000) {
        let g = generators::random_tree(n, seed);
        prop_assert_eq!(g.m(), n - 1);
        prop_assert_eq!(g.connected_components(), 1);
    }
}
