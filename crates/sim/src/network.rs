//! The synchronous-round network: the orchestrated execution layer.
//!
//! A [`Network`] wraps a graph and provides the primitive the LOCAL/CONGEST
//! models are built on: one synchronous round in which every node sends one
//! message along each incident edge it chooses and receives the messages sent
//! to it. The network charges rounds, counts messages and bits, and checks
//! the CONGEST bandwidth limit.
//!
//! Algorithms written against this layer express each communication round
//! explicitly (via [`Network::exchange`] or [`Network::broadcast`]), so the
//! round counts reported in the experiments are exactly the number of
//! `exchange`/`broadcast` calls plus explicitly charged sub-protocol rounds.
//!
//! # Execution policies
//!
//! Every network carries an [`ExecutionPolicy`]. Rounds issued through
//! [`Network::exchange_sync`] or [`Network::broadcast`] honor it: under
//! `Parallel { threads }` the per-node send closures run on a scoped worker
//! pool over degree-weighted contiguous node chunks and the per-chunk
//! arenas and metrics are merged in chunk order, which makes the result
//! **byte-identical** to the sequential execution at any thread count.
//! [`Network::exchange`] takes a stateful `FnMut` closure and therefore
//! always runs sequentially.
//!
//! # The flat-arena delivery path
//!
//! Delivery is allocation-free in steady state. Each worker appends packed
//! `(target, Incoming { from, edge, msg })` rows to a reusable arena buffer
//! owned by the network (pooled per message type); the sealed round counts
//! rows per target, prefix-sums the counts into CSR offsets, and permutes
//! the concatenated rows in place into target-major order — yielding the
//! structure-of-arrays [`Mailboxes`] without ever materializing per-node
//! `Vec`s. Because workers are visited in chunk order and the permutation
//! is stable per target, every inbox reads in global sender order, exactly
//! what the sequential reference loop produces. When a fault plan is
//! installed the round falls back to materialized per-node boxes (the
//! adversary mutates inboxes in place), so fault-free hot paths never pay
//! for that generality.

use crate::executor::{map_chunks_with, map_node_chunks, Chunks, ExecutionPolicy};
use crate::faults::{FaultPlan, FaultState, FaultStats};
use crate::ledger::{LedgerEntry, RoundLedger};
use crate::metrics::Metrics;
use crate::model::Model;
use crate::payload::Payload;
use distgraph::{EdgeId, Graph, NodeId};
use distshard::{bfs_partition, PartitionReport, RouterStats, ShardRouter, ShardedGraph};
use std::any::{Any, TypeId};
use std::collections::HashMap;

/// One undelivered message: the destination node index paired with the
/// [`Incoming`] entry its inbox will receive.
type Targeted<M> = (usize, Incoming<M>);

/// A message received by a node in a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming<M> {
    /// The node that sent the message.
    pub from: NodeId,
    /// The edge over which it arrived.
    pub edge: EdgeId,
    /// The payload.
    pub msg: M,
}

/// Per-node inboxes produced by one round of communication, stored as a
/// structure-of-arrays CSR: one flat target-major entry array plus `n + 1`
/// offsets, so a round delivers all inboxes in two allocations regardless of
/// the node count.
///
/// Equality compares the logical content; two mailboxes with identical
/// inboxes have identical representations no matter which delivery path
/// built them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mailboxes<M> {
    /// CSR offsets (length `n + 1`): node `v`'s inbox is
    /// `entries[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<usize>,
    /// All delivered messages, target-major; each inbox slice is in global
    /// sender order.
    entries: Vec<Incoming<M>>,
}

impl<M> Mailboxes<M> {
    /// Flattens per-node inboxes into the CSR layout (the slow-path
    /// constructor used by the fault-injection adversary, which mutates
    /// materialized boxes in place).
    pub(crate) fn from_boxes(boxes: Vec<Vec<Incoming<M>>>) -> Self {
        let mut offsets = Vec::with_capacity(boxes.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for inbox in &boxes {
            acc += inbox.len();
            offsets.push(acc);
        }
        let mut entries = Vec::with_capacity(acc);
        for inbox in boxes {
            entries.extend(inbox);
        }
        Mailboxes { offsets, entries }
    }

    /// The messages received by node `v` this round.
    #[inline]
    pub fn inbox(&self, v: NodeId) -> &[Incoming<M>] {
        &self.entries[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Total number of messages delivered (O(1): the flat entry count).
    pub fn total(&self) -> usize {
        self.entries.len()
    }

    /// Consumes the mailboxes and returns per-node vectors (allocates one
    /// `Vec` per node — an off-hot-path convenience, not a delivery step).
    pub fn into_inner(self) -> Vec<Vec<Incoming<M>>> {
        let Mailboxes { offsets, entries } = self;
        let mut out = Vec::with_capacity(offsets.len().saturating_sub(1));
        let mut entries = entries.into_iter();
        for pair in offsets.windows(2) {
            out.push(entries.by_ref().take(pair[1] - pair[0]).collect());
        }
        out
    }
}

/// The shard-aware delivery state of a [`Network`] running under
/// [`ExecutionPolicy::Sharded`]: the partitioned view of the graph plus the
/// cumulative cross-shard traffic of every sharded round executed so far.
///
/// Built lazily on the first sharded round (the partition is a
/// [`bfs_partition`] of the network's graph) and rebuilt if the policy's
/// shard count changes.
#[derive(Debug)]
pub struct ShardState {
    sharded: ShardedGraph,
    report: PartitionReport,
    stats: RouterStats,
}

impl ShardState {
    fn build(graph: &Graph, shards: usize) -> Self {
        let partition = bfs_partition(graph, shards);
        let report = partition.report(graph);
        ShardState {
            sharded: ShardedGraph::new(graph, partition),
            report,
            stats: RouterStats::default(),
        }
    }

    /// The quality report of the partition the delivery path runs on.
    pub fn report(&self) -> &PartitionReport {
        &self.report
    }

    /// Cumulative cross-shard traffic over all sharded rounds so far.
    pub fn router_stats(&self) -> RouterStats {
        self.stats
    }

    /// The partitioned view of the graph.
    pub fn sharded_graph(&self) -> &ShardedGraph {
        &self.sharded
    }
}

/// The reusable per-round delivery scratch owned by a [`Network`].
///
/// `exchange*`/`broadcast` are generic over the message type but the network
/// is not, so the per-worker arena buffers and pooled routers are stored
/// type-erased, keyed by the message's `TypeId` (the same pattern the fault
/// layer uses for its delay queues). The untyped count/slot buffers are
/// shared across all message types. Everything here is capacity that
/// survives between rounds; none of it affects delivery semantics.
#[derive(Default)]
struct RoundScratch {
    /// Per message type: the per-worker arena row buffers
    /// (`Vec<Vec<Targeted<M>>>`).
    arenas: HashMap<TypeId, Box<dyn Any + Send>>,
    /// Per message type: the pooled cross-shard router
    /// (`ShardRouter<Targeted<M>>`).
    routers: HashMap<TypeId, Box<dyn Any + Send>>,
    /// Per-node message counts, reused as delivery cursors.
    counts: Vec<usize>,
    /// Row-to-CSR-slot permutation buffer.
    slots: Vec<usize>,
}

impl RoundScratch {
    /// Takes (or creates) the per-worker arena buffers for message type `M`,
    /// cleared and sized to `workers` buffers with capacity retained.
    fn take_arena<M: Payload + Send>(&mut self, workers: usize) -> Vec<Vec<Targeted<M>>> {
        let mut arena: Vec<Vec<Targeted<M>>> = self
            .arenas
            .remove(&TypeId::of::<M>())
            .and_then(|boxed| boxed.downcast::<Vec<Vec<Targeted<M>>>>().ok())
            .map(|boxed| *boxed)
            .unwrap_or_default();
        arena.truncate(workers);
        for buffer in &mut arena {
            buffer.clear();
        }
        arena.resize_with(workers, Vec::new);
        arena
    }

    /// Returns drained arena buffers to the pool for the next round.
    fn put_arena<M: Payload + Send>(&mut self, arena: Vec<Vec<Targeted<M>>>) {
        self.arenas.insert(TypeId::of::<M>(), Box::new(arena));
    }

    /// Takes (or creates) the pooled cross-shard router for message type `M`
    /// (recreated when the shard count changes).
    fn take_router<M: Payload + Send>(&mut self, shards: usize) -> ShardRouter<Targeted<M>> {
        self.routers
            .remove(&TypeId::of::<M>())
            .and_then(|boxed| boxed.downcast::<ShardRouter<Targeted<M>>>().ok())
            .map(|boxed| *boxed)
            .filter(|router| router.shards() == shards)
            .unwrap_or_else(|| ShardRouter::new(shards))
    }

    /// Returns a drained router to the pool for the next round.
    fn put_router<M: Payload + Send>(&mut self, router: ShardRouter<Targeted<M>>) {
        self.routers.insert(TypeId::of::<M>(), Box::new(router));
    }
}

impl std::fmt::Debug for RoundScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundScratch")
            .field("arena_types", &self.arenas.len())
            .field("router_types", &self.routers.len())
            .field("counts", &self.counts.len())
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// A worker's view of the send phase: validates each send, accounts metrics,
/// and appends the packed `(target, Incoming)` row to the worker's arena
/// buffer.
struct SendSink<'a, M> {
    graph: &'a Graph,
    limit: Option<u64>,
    rows: &'a mut Vec<Targeted<M>>,
    /// Edges the current node already sent over (cleared per node).
    used: Vec<EdgeId>,
    metrics: Metrics,
}

impl<M: Payload> SendSink<'_, M> {
    /// Resets the per-node duplicate-edge guard.
    #[inline]
    fn begin_node(&mut self) {
        self.used.clear();
    }

    /// Validates and enqueues one send from `from` over `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not incident to `from` or was already used by
    /// `from` this round (the [`Network::exchange`] contract).
    #[inline]
    fn send(&mut self, from: NodeId, edge: EdgeId, msg: M) {
        assert!(
            self.graph.is_endpoint(edge, from),
            "{from} attempted to send over non-incident edge {edge}"
        );
        assert!(
            !self.used.contains(&edge),
            "{from} sent two messages over {edge} in a single round"
        );
        self.used.push(edge);
        self.push(from, edge, msg);
    }

    /// Enqueues a send whose edge is incident by construction (the
    /// broadcast path walks the adjacency list, which never repeats an
    /// edge), skipping the O(degree) duplicate scan.
    #[inline]
    fn send_over_incident(&mut self, from: NodeId, edge: EdgeId, msg: M) {
        debug_assert!(self.graph.is_endpoint(edge, from));
        self.push(from, edge, msg);
    }

    #[inline]
    fn push(&mut self, from: NodeId, edge: EdgeId, msg: M) {
        self.metrics
            .record_message(msg.encoded_bits() as u64, self.limit);
        let target = self.graph.other_endpoint(edge, from).index();
        self.rows.push((target, Incoming { from, edge, msg }));
    }
}

/// A synchronous-round communication network over a graph.
#[derive(Debug)]
pub struct Network<'g> {
    graph: &'g Graph,
    model: Model,
    policy: ExecutionPolicy,
    metrics: Metrics,
    shard_state: Option<ShardState>,
    faults: Option<FaultState>,
    ledger: RoundLedger,
    scratch: RoundScratch,
}

impl<'g> Network<'g> {
    /// Creates a network over `graph` under the given model, executing rounds
    /// sequentially.
    pub fn new(graph: &'g Graph, model: Model) -> Self {
        Self::with_policy(graph, model, ExecutionPolicy::Sequential)
    }

    /// Creates a network over `graph` under the given model and execution
    /// policy.
    pub fn with_policy(graph: &'g Graph, model: Model, policy: ExecutionPolicy) -> Self {
        Network {
            graph,
            model,
            policy,
            metrics: Metrics::new(),
            shard_state: None,
            faults: None,
            ledger: RoundLedger::new(),
            scratch: RoundScratch::default(),
        }
    }

    /// A fresh network over `child_graph` inheriting this network's model and
    /// execution policy. Used by composed algorithms that recurse on
    /// subgraphs; absorb the child's metrics afterwards with
    /// [`Network::absorb_sequential`] or [`Network::absorb_parallel`].
    ///
    /// Installed fault plans are **not** inherited: a [`FaultPlan`] is
    /// defined against one graph's edges and rounds, and child networks run
    /// on subgraphs with their own edge ids.
    pub fn child<'h>(&self, child_graph: &'h Graph) -> Network<'h> {
        Network::with_policy(child_graph, self.model, self.policy)
    }

    /// Installs a fault plan: every subsequent round is filtered through the
    /// seed-driven adversary (drops, duplicates, delays, crash windows,
    /// shard-link partitions — see [`crate::faults`]). Replaces any
    /// previously installed plan, resetting its state.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultState::new(plan));
    }

    /// What the installed adversary did so far; `None` when no plan is
    /// installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(FaultState::stats)
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(FaultState::plan)
    }

    /// Filters freshly delivered mailboxes through the installed fault
    /// plan (no-op without one). Called by every delivery path *after* the
    /// canonical sender-order merge, so the adversary sees identical input
    /// under every execution policy.
    fn apply_faults<M: Payload + Send>(&mut self, boxes: &mut [Vec<Incoming<M>>]) {
        if let Some(state) = &mut self.faults {
            state.apply(self.graph, self.metrics.rounds, boxes);
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The communication model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The execution policy rounds are run under.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// Replaces the execution policy (subsequent rounds use it).
    pub fn set_policy(&mut self, policy: ExecutionPolicy) {
        self.policy = policy;
    }

    /// Number of rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// The accumulated metrics.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Executes one synchronous round with a *stateful* send closure: for
    /// every node, `outgoing` returns the list of `(edge, message)` pairs the
    /// node sends; each message is delivered to the other endpoint of the
    /// edge. Because `outgoing` may mutate shared state between nodes, this
    /// entry point always runs sequentially regardless of the policy; use
    /// [`Network::exchange_sync`] for policy-aware execution.
    ///
    /// # Panics
    ///
    /// Panics if a node sends over an edge it is not incident to, or sends two
    /// messages over the same edge in one round.
    pub fn exchange<M: Payload + Send>(
        &mut self,
        mut outgoing: impl FnMut(NodeId) -> Vec<(EdgeId, M)>,
    ) -> Mailboxes<M> {
        self.metrics.rounds += 1;
        let limit = self.model.bandwidth_limit();
        let mut arena = self.scratch.take_arena::<M>(1);
        let mut rows = arena.pop().expect("one arena buffer");
        let metrics = {
            let mut sink = SendSink {
                graph: self.graph,
                limit,
                rows: &mut rows,
                used: Vec::new(),
                metrics: Metrics::new(),
            };
            for v in self.graph.nodes() {
                sink.begin_node();
                for (edge, msg) in outgoing(v) {
                    sink.send(v, edge, msg);
                }
            }
            sink.metrics
        };
        self.metrics.fold_costs(&metrics);
        arena.push(rows);
        self.seal(arena)
    }

    /// Executes one synchronous round with a *pure* per-node send function,
    /// honoring the network's [`ExecutionPolicy`]: under a parallel policy
    /// the closure is evaluated on a worker pool over contiguous node chunks
    /// and the mailboxes/metrics are merged deterministically, producing
    /// results byte-identical to the sequential path.
    ///
    /// # Panics
    ///
    /// Same contract as [`Network::exchange`].
    pub fn exchange_sync<M>(
        &mut self,
        outgoing: impl Fn(NodeId) -> Vec<(EdgeId, M)> + Sync,
    ) -> Mailboxes<M>
    where
        M: Payload + Send,
    {
        if self.policy.is_sharded() {
            return self.exchange_sharded(outgoing);
        }
        self.exchange_chunked(|v, sink| {
            for (edge, msg) in outgoing(v) {
                sink.send(v, edge, msg);
            }
        })
    }

    /// The chunked send phase shared by [`Network::exchange_sync`] and
    /// [`Network::broadcast`]: `emit` is invoked once per node with the
    /// worker's [`SendSink`] and appends that node's sends to the worker's
    /// arena buffer.
    ///
    /// The sender range is split into **degree-weighted** chunks (a pure
    /// function of the graph and the policy's thread count, never of the
    /// workers actually spawned), so a power-law hub does not serialize the
    /// round on one worker while the result stays bit-identical to the
    /// sequential pass. On hosts where spawning does not pay off the same
    /// chunk geometry runs inline on the calling thread.
    fn exchange_chunked<M>(
        &mut self,
        emit: impl Fn(NodeId, &mut SendSink<'_, M>) + Sync,
    ) -> Mailboxes<M>
    where
        M: Payload + Send,
    {
        self.metrics.rounds += 1;
        let limit = self.model.bandwidth_limit();
        let graph = self.graph;
        let chunks = Chunks::degree_weighted(graph.n(), graph.csr_offsets(), self.policy.threads());
        let mut arena = self.scratch.take_arena::<M>(chunks.count());
        // Phase A (parallel over sender chunks): evaluate the send closures,
        // validate, account metrics, and append packed rows to the worker's
        // arena buffer in sender order.
        let buffers: Vec<&mut Vec<Targeted<M>>> = arena.iter_mut().collect();
        let per_chunk = map_chunks_with(&chunks, self.policy, buffers, |range, rows| {
            let mut sink = SendSink {
                graph,
                limit,
                rows,
                used: Vec::new(),
                metrics: Metrics::new(),
            };
            for raw_v in range {
                let v = NodeId::new(raw_v);
                sink.begin_node();
                emit(v, &mut sink);
            }
            sink.metrics
        });
        // Merge metrics in chunk order (order-independent, see
        // `Metrics::fold_costs`; the round itself was charged above).
        for metrics in &per_chunk {
            self.metrics.fold_costs(metrics);
        }
        self.seal(arena)
    }

    /// Phase B of a chunked round: turns per-worker arena rows (in chunk
    /// order, i.e. concatenated in global sender order) into the CSR
    /// [`Mailboxes`] by counting rows per target, prefix-summing the offsets
    /// and applying the row→slot permutation in place. Steady-state cost:
    /// two allocations (the offsets and entries that escape in the
    /// `Mailboxes`), everything else reuses network-owned scratch.
    fn seal<M: Payload + Send>(&mut self, mut arena: Vec<Vec<Targeted<M>>>) -> Mailboxes<M> {
        let n = self.graph.n();
        let total: usize = arena.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        {
            let counts = &mut self.scratch.counts;
            counts.clear();
            counts.resize(n, 0);
            for rows in &arena {
                for &(target, _) in rows.iter() {
                    counts[target] += 1;
                }
            }
            let mut acc = 0usize;
            offsets.push(0);
            for &count in counts.iter() {
                acc += count;
                offsets.push(acc);
            }
        }
        if self.faults.is_some() {
            // Slow path: the adversary mutates per-node inboxes in place, so
            // materialize them (it sees the same canonical sender order the
            // fast path produces, keeping faulty runs policy-identical).
            let mut boxes: Vec<Vec<Incoming<M>>> = self
                .scratch
                .counts
                .iter()
                .map(|&count| Vec::with_capacity(count))
                .collect();
            for rows in &mut arena {
                for (target, incoming) in rows.drain(..) {
                    boxes[target].push(incoming);
                }
            }
            self.scratch.put_arena(arena);
            self.apply_faults(&mut boxes);
            return Mailboxes::from_boxes(boxes);
        }
        let mut entries: Vec<Incoming<M>> = Vec::with_capacity(total);
        {
            let RoundScratch { counts, slots, .. } = &mut self.scratch;
            // Reuse the counts as per-target write cursors.
            for (v, cursor) in counts.iter_mut().enumerate() {
                *cursor = offsets[v];
            }
            slots.clear();
            slots.reserve(total);
            for rows in &mut arena {
                for (target, incoming) in rows.drain(..) {
                    slots.push(counts[target]);
                    counts[target] += 1;
                    entries.push(incoming);
                }
            }
            // Apply the permutation in place (cycle chasing): row `i` moves
            // to CSR slot `slots[i]`. Per-target slots increase with the row
            // index, so each inbox keeps global sender order.
            for i in 0..total {
                while slots[i] != i {
                    let j = slots[i];
                    entries.swap(i, j);
                    slots.swap(i, j);
                }
            }
        }
        self.scratch.put_arena(arena);
        Mailboxes { offsets, entries }
    }

    /// The sharded delivery path of [`Network::exchange_sync`].
    ///
    /// Per shard (shards distributed over the policy's worker threads), the
    /// send closures of the shard's nodes are evaluated in ascending node
    /// order; messages staying inside the shard are delivered directly, the
    /// rest travel through a pooled [`ShardRouter`] — one coalesced buffer
    /// per shard pair, drained in place so steady-state rounds reuse its
    /// capacity. The gathered rows are then normalized to target-major
    /// ascending sender order, which is exactly the order the sequential
    /// loop produces (in a simple graph a sender contributes at most one
    /// message per target per round), so mailboxes are bit-identical to
    /// [`ExecutionPolicy::Sequential`].
    fn exchange_sharded<M>(
        &mut self,
        outgoing: impl Fn(NodeId) -> Vec<(EdgeId, M)> + Sync,
    ) -> Mailboxes<M>
    where
        M: Payload + Send,
    {
        let shards = self.policy.shards();
        // Worker count capped at the host's hardware slots; shard geometry is
        // unchanged, so delivery stays bit-identical.
        let threads = self.policy.effective_threads().min(shards);
        self.metrics.rounds += 1;
        let limit = self.model.bandwidth_limit();
        let graph = self.graph;
        if self
            .shard_state
            .as_ref()
            .is_none_or(|s| s.sharded.shards() != shards)
        {
            self.shard_state = Some(ShardState::build(graph, shards));
        }

        /// Per-shard result of the send phase: shard-internal deliveries plus
        /// cross-shard messages tagged with their destination shard and
        /// payload bits.
        struct ShardOut<M> {
            local: Vec<Targeted<M>>,
            cross: Vec<(usize, u64, Targeted<M>)>,
            metrics: Metrics,
        }

        let outs: Vec<ShardOut<M>> = {
            let sharded = &self.shard_state.as_ref().expect("just built").sharded;
            // Phase A (parallel over shards): evaluate the send closures of
            // each shard's nodes, validate, account metrics, and split
            // deliveries into shard-internal and cross-shard.
            let per_shard = |s: usize| -> ShardOut<M> {
                let mut metrics = Metrics::new();
                let mut local = Vec::new();
                let mut cross = Vec::new();
                for &v in sharded.nodes(s) {
                    let sends = outgoing(v);
                    let mut used: Vec<EdgeId> = Vec::with_capacity(sends.len());
                    for (edge, msg) in sends {
                        assert!(
                            graph.is_endpoint(edge, v),
                            "{v} attempted to send over non-incident edge {edge}"
                        );
                        assert!(
                            !used.contains(&edge),
                            "{v} sent two messages over {edge} in a single round"
                        );
                        used.push(edge);
                        let bits = msg.encoded_bits() as u64;
                        metrics.record_message(bits, limit);
                        let target = graph.other_endpoint(edge, v);
                        let dst = sharded.partition().shard_of(target);
                        let item = (target.index(), Incoming { from: v, edge, msg });
                        if dst == s {
                            local.push(item);
                        } else {
                            cross.push((dst, bits, item));
                        }
                    }
                }
                ShardOut {
                    local,
                    cross,
                    metrics,
                }
            };
            map_node_chunks(shards, ExecutionPolicy::parallel(threads), |shard_range| {
                shard_range.map(per_shard).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };

        // Merge metrics in shard order (order-independent, see
        // `Metrics::fold_costs`; the round itself was charged above).
        for out in &outs {
            self.metrics.fold_costs(&out.metrics);
        }

        // Phase B: gather shard-internal messages and the router's coalesced
        // cross-shard buffers (pooled per message type, drained in place)
        // into one flat row list, then normalize to target-major global
        // sender order with a single unstable sort — valid because senders
        // are unique per inbox (at most one edge, hence one message, per
        // sender/target pair in a simple graph).
        let total: usize = outs
            .iter()
            .map(|out| out.local.len() + out.cross.len())
            .sum();
        let mut router = self.scratch.take_router::<M>(shards);
        let mut flat: Vec<Targeted<M>> = Vec::with_capacity(total);
        for (src, out) in outs.into_iter().enumerate() {
            flat.extend(out.local);
            for (dst, bits, item) in out.cross {
                router.push(src, dst, item, bits);
            }
        }
        let round_stats = router.drain_round_with(|_dst, _src, buffer| {
            flat.append(buffer);
        });
        self.scratch.put_router(router);
        self.shard_state
            .as_mut()
            .expect("built above")
            .stats
            .absorb(&round_stats);
        flat.sort_unstable_by_key(|&(target, ref incoming)| (target, incoming.from));
        self.seal_sorted(flat)
    }

    /// Seals a round whose rows are already in target-major global sender
    /// order (the sharded path after its normalization sort): counts per
    /// target, prefix-sums the offsets and moves the payloads straight into
    /// the flat entry array.
    fn seal_sorted<M: Payload + Send>(&mut self, flat: Vec<Targeted<M>>) -> Mailboxes<M> {
        let n = self.graph.n();
        let mut offsets = Vec::with_capacity(n + 1);
        {
            let counts = &mut self.scratch.counts;
            counts.clear();
            counts.resize(n, 0);
            for &(target, _) in &flat {
                counts[target] += 1;
            }
            let mut acc = 0usize;
            offsets.push(0);
            for &count in counts.iter() {
                acc += count;
                offsets.push(acc);
            }
        }
        if self.faults.is_some() {
            let mut boxes: Vec<Vec<Incoming<M>>> = self
                .scratch
                .counts
                .iter()
                .map(|&count| Vec::with_capacity(count))
                .collect();
            for (target, incoming) in flat {
                boxes[target].push(incoming);
            }
            self.apply_faults(&mut boxes);
            return Mailboxes::from_boxes(boxes);
        }
        let entries: Vec<Incoming<M>> = flat.into_iter().map(|(_, incoming)| incoming).collect();
        Mailboxes { offsets, entries }
    }

    /// The shard-aware delivery state, if any sharded round ran on this
    /// network: partition quality report plus cumulative cross-shard traffic.
    /// `None` until the first round under [`ExecutionPolicy::Sharded`].
    pub fn shard_state(&self) -> Option<&ShardState> {
        self.shard_state.as_ref()
    }

    /// One round in which every node sends the same message to all neighbors.
    /// Honors the network's execution policy (see [`Network::exchange_sync`]).
    ///
    /// Each node's message is built exactly once and written straight into
    /// the arena — one clone per neighbor edge except the last, which takes
    /// the original — with no intermediate `(edge, message)` list and no
    /// duplicate-edge scan (the adjacency list never repeats an edge).
    /// Bit-identical to the equivalent [`Network::exchange_sync`] round by
    /// construction: same sends, same order, same accounting.
    pub fn broadcast<M>(&mut self, msg_of: impl Fn(NodeId) -> M + Sync) -> Mailboxes<M>
    where
        M: Payload + Send,
    {
        if self.policy.is_sharded() {
            let graph = self.graph;
            return self.exchange_sharded(|v| {
                let msg = msg_of(v);
                graph
                    .neighbors(v)
                    .iter()
                    .map(|nb| (nb.edge, msg.clone()))
                    .collect()
            });
        }
        let graph = self.graph;
        self.exchange_chunked(|v, sink| {
            let msg = msg_of(v);
            if let Some((last, rest)) = graph.neighbors(v).split_last() {
                for nb in rest {
                    sink.send_over_incident(v, nb.edge, msg.clone());
                }
                sink.send_over_incident(v, last.edge, msg);
            }
        })
    }

    /// Charges `r` additional rounds without moving data. Used by composed
    /// algorithms to account for sub-protocols whose messages are simulated
    /// analytically (the accompanying message/bit counts can be added with
    /// [`Network::absorb_sequential`] or [`Network::charge_messages`]).
    pub fn charge_rounds(&mut self, r: u64) {
        self.metrics.rounds += r;
    }

    /// Records `count` messages of `bits_each` bits without delivering data.
    /// Used by composed algorithms whose inner sub-protocols are simulated
    /// analytically but whose bandwidth should still be accounted (and checked
    /// against the CONGEST limit).
    pub fn charge_messages(&mut self, count: u64, bits_each: u64) {
        if count == 0 {
            return;
        }
        self.metrics.messages += count;
        self.metrics.total_bits += count * bits_each;
        self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits_each);
        if let Some(limit) = self.model.bandwidth_limit() {
            if bits_each > limit {
                self.metrics.congest_violations += count;
            }
        }
    }

    /// Adds the cost of a sub-execution that ran sequentially after the work
    /// recorded so far (e.g. a recursive call on a subgraph).
    pub fn absorb_sequential(&mut self, child: &Metrics) {
        self.metrics.absorb_sequential(child);
    }

    /// Adds the cost of sub-executions that ran in parallel with each other
    /// (rounds advance by the maximum of the children).
    pub fn absorb_parallel(&mut self, children: &[Metrics]) {
        self.metrics.absorb_parallel(children);
    }

    /// The per-level round ledger recorded on this network so far.
    pub fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }

    /// Consumes the network's ledger, leaving an empty one behind. Drivers
    /// call this at the end of a run to move the ledger into their outcome.
    pub fn take_ledger(&mut self) -> RoundLedger {
        std::mem::take(&mut self.ledger)
    }

    /// Records one ledger entry (a stage of the recursion and the rounds it
    /// charged). Purely observational: no effect on metrics or delivery.
    pub fn record_ledger(&mut self, entry: LedgerEntry) {
        self.ledger.record(entry);
    }

    /// Absorbs a child network's ledger, shifting the absorbed entries
    /// `depth_shift` recursion levels deeper (pass 0 when the child ran at
    /// the same conceptual level, e.g. a per-group helper network). Call
    /// alongside [`Network::absorb_sequential`]/[`Network::absorb_parallel`]
    /// when the child recorded entries of its own.
    pub fn absorb_ledger(&mut self, child: RoundLedger, depth_shift: u32) {
        self.ledger.absorb(child, depth_shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;

    #[test]
    fn broadcast_delivers_to_all_neighbors() {
        let g = generators::cycle(5);
        let mut net = Network::new(&g, Model::Local);
        let mail = net.broadcast(|v| v.index() as u64);
        assert_eq!(net.rounds(), 1);
        assert_eq!(mail.total(), 2 * g.m());
        for v in g.nodes() {
            let inbox = mail.inbox(v);
            assert_eq!(inbox.len(), 2);
            for incoming in inbox {
                assert_eq!(incoming.msg, incoming.from.index() as u64);
                assert!(g.is_endpoint(incoming.edge, v));
            }
        }
    }

    #[test]
    fn exchange_counts_bits_and_rounds() {
        let g = generators::path(3);
        let mut net = Network::new(&g, Model::Local);
        // only node 0 sends, over its single incident edge
        let mail = net.exchange(|v| {
            if v.index() == 0 {
                vec![(g.incident_edges(v).next().unwrap(), 255u64)]
            } else {
                vec![]
            }
        });
        assert_eq!(net.rounds(), 1);
        assert_eq!(mail.total(), 1);
        let metrics = net.metrics();
        assert_eq!(metrics.messages, 1);
        assert_eq!(metrics.total_bits, 8);
        assert_eq!(metrics.max_message_bits, 8);
        assert_eq!(mail.inbox(NodeId::new(1)).len(), 1);
        assert_eq!(mail.inbox(NodeId::new(2)).len(), 0);
    }

    #[test]
    fn congest_violations_are_flagged() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Model::Congest { bandwidth_bits: 4 });
        net.broadcast(|_| vec![1u64; 10]); // far more than 4 bits
        assert!(net.metrics().congest_violations > 0);
    }

    #[test]
    fn local_never_flags_violations() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Model::Local);
        net.broadcast(|_| vec![1u64; 1000]);
        assert_eq!(net.metrics().congest_violations, 0);
    }

    #[test]
    #[should_panic(expected = "non-incident")]
    fn sending_over_foreign_edge_panics() {
        let g = generators::path(4);
        let mut net = Network::new(&g, Model::Local);
        // node 0 tries to send over edge 2 = (2,3)
        net.exchange(|v| {
            if v.index() == 0 {
                vec![(EdgeId::new(2), 1u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "non-incident")]
    fn parallel_sending_over_foreign_edge_panics() {
        let g = generators::path(4);
        let mut net = Network::with_policy(&g, Model::Local, ExecutionPolicy::parallel(3));
        net.exchange_sync(|v| {
            if v.index() == 0 {
                vec![(EdgeId::new(2), 1u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn sending_twice_over_same_edge_panics() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Model::Local);
        net.exchange(|v| {
            if v.index() == 0 {
                vec![(EdgeId::new(0), 1u32), (EdgeId::new(0), 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn parallel_sending_twice_over_same_edge_panics() {
        let g = generators::path(2);
        let mut net = Network::with_policy(&g, Model::Local, ExecutionPolicy::parallel(2));
        net.exchange_sync(|v| {
            if v.index() == 0 {
                vec![(EdgeId::new(0), 1u32), (EdgeId::new(0), 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    fn parallel_exchange_is_bit_identical_to_sequential() {
        let g = generators::random_regular(48, 6, 11).unwrap();
        let send = |v: NodeId| -> Vec<(EdgeId, u64)> {
            g.neighbors(v)
                .iter()
                .filter(|nb| !(v.index() + nb.node.index()).is_multiple_of(3))
                .map(|nb| (nb.edge, (v.index() * 31 + nb.edge.index()) as u64))
                .collect()
        };
        let mut seq_net = Network::new(&g, Model::Congest { bandwidth_bits: 8 });
        let seq_mail = seq_net.exchange_sync(send);
        for threads in [2usize, 3, 8, 64] {
            let mut par_net = Network::with_policy(
                &g,
                Model::Congest { bandwidth_bits: 8 },
                ExecutionPolicy::parallel(threads),
            );
            let par_mail = par_net.exchange_sync(send);
            assert_eq!(seq_mail, par_mail, "mailboxes differ at {threads} threads");
            assert_eq!(
                seq_net.metrics(),
                par_net.metrics(),
                "metrics differ at {threads} threads"
            );
        }
    }

    #[test]
    fn child_network_inherits_model_and_policy() {
        let g = generators::path(4);
        let sub = generators::path(3);
        let net = Network::with_policy(
            &g,
            Model::Congest { bandwidth_bits: 9 },
            ExecutionPolicy::parallel(4),
        );
        let child = net.child(&sub);
        assert_eq!(child.model(), net.model());
        assert_eq!(child.policy(), net.policy());
        assert_eq!(child.rounds(), 0);
    }

    #[test]
    fn set_policy_switches_execution() {
        let g = generators::cycle(6);
        let mut net = Network::new(&g, Model::Local);
        assert_eq!(net.policy(), ExecutionPolicy::Sequential);
        net.set_policy(ExecutionPolicy::parallel(2));
        assert!(net.policy().is_parallel());
        let mail = net.broadcast(|v| v.index() as u32);
        assert_eq!(mail.total(), 2 * g.m());
    }

    #[test]
    fn charge_and_absorb() {
        let g = generators::path(2);
        let mut net = Network::new(&g, Model::Local);
        net.charge_rounds(5);
        let child = Metrics {
            rounds: 3,
            messages: 2,
            total_bits: 10,
            max_message_bits: 6,
            congest_violations: 0,
        };
        net.absorb_sequential(&child);
        net.absorb_parallel(&[
            child,
            Metrics {
                rounds: 9,
                ..Metrics::default()
            },
        ]);
        assert_eq!(net.rounds(), 5 + 3 + 9);
        assert_eq!(net.metrics().messages, 4);
    }
}
