//! Offline stand-in for `serde`. The workspace derives `Serialize` and
//! `Deserialize` on its data types but never serializes in-tree, so the
//! traits are markers and the derives (re-exported from the stand-in
//! `serde_derive`) expand to nothing. See `crates/compat/README.md`.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
