//! Wall-clock cost of the graph generators (sanity benchmark for the
//! experiment harness itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distgraph::generators;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("regular_bipartite", "n=256,d=16"), |b| {
        b.iter(|| generators::regular_bipartite(256, 16, 3).unwrap())
    });
    group.bench_function(BenchmarkId::new("random_regular", "n=512,d=16"), |b| {
        b.iter(|| generators::random_regular(512, 16, 3).unwrap())
    });
    group.bench_function(BenchmarkId::new("erdos_renyi", "n=512,p=0.05"), |b| {
        b.iter(|| generators::erdos_renyi(512, 0.05, 3))
    });
    group.bench_function(BenchmarkId::new("power_law", "n=512"), |b| {
        b.iter(|| generators::power_law(512, 2.5, 24, 3))
    });
    group.bench_function(BenchmarkId::new("hypercube", "dim=10"), |b| {
        b.iter(|| generators::hypercube(10))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
