//! Pins the flat-arena delivery path's steady-state allocation budget.
//!
//! The round engine's contract after the allocation-free rework: once the
//! per-round scratch (message arenas, count/slot buffers, double-buffered
//! inboxes) has warmed up, a round allocates O(active chunks) — a small
//! constant independent of `n` and of the per-round message volume. This
//! test wraps the system allocator in a counting shim and measures rounds on
//! two graph sizes a factor of four apart: an O(n) or O(m) regression in the
//! hot path shows up as hundreds of allocations per round on the larger
//! graph and fails the fixed budget immediately.
//!
//! The whole battery lives in one `#[test]` because the counter is global:
//! Rust runs tests in parallel by default, and concurrent tests would bleed
//! allocations into each other's windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use distgraph::{generators, EdgeId, Graph};
use distsim::{
    run_program_with, ExecutionPolicy, IdAssignment, Incoming, Model, Network, NodeCtx,
    NodeProgram, Step,
};

/// System allocator shim counting allocation *events* (alloc + realloc);
/// deallocations are free and not counted.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocation events that happen while `f` runs.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    f();
    ALLOC_EVENTS.load(Ordering::Relaxed) - before
}

/// A strict-layer program whose rounds are allocation-quiet: after an
/// initial flood it keeps running to the round cap without building any
/// send vectors (`Vec::new()` does not allocate).
struct QuietTicker;

impl NodeProgram for QuietTicker {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u64)> {
        ctx.ports.iter().map(|p| (p.edge, ctx.id)).collect()
    }

    fn round(&mut self, _ctx: &NodeCtx, _inbox: &[Incoming<u64>]) -> Step<u64, u64> {
        Step::Send(Vec::new())
    }
}

/// Steady-state allocations per broadcast round under `policy`, after a
/// warm-up that grows every pooled buffer to capacity.
fn broadcast_allocs_per_round(g: &Graph, policy: ExecutionPolicy, rounds: u64) -> u64 {
    let mut net = Network::with_policy(g, Model::Local, policy);
    for _ in 0..8 {
        net.broadcast(|v| v.index() as u64);
    }
    let total = allocs_during(|| {
        for _ in 0..rounds {
            net.broadcast(|v| v.index() as u64);
        }
    });
    total / rounds
}

#[test]
fn steady_state_rounds_allocate_o_chunks_not_o_n() {
    // Two sizes a factor of four apart: 256 and 1024 nodes, all degree 4.
    // A single delivered round moves 4n messages, so any O(n)/O(m) term in
    // the hot path costs thousands of events on the larger torus — far
    // beyond the fixed budgets below.
    let small = generators::grid_torus(16, 16);
    let large = generators::grid_torus(32, 32);
    let rounds = 32u64;

    // Orchestrated layer, sequential: the Mailboxes handed back each round
    // escape the pool (offsets + entries), plus a few pool-bookkeeping
    // events. Budget 16 ≪ 4·n = 4096 messages/round on the large torus.
    let seq_budget = 16;
    for (g, name) in [(&small, "16x16"), (&large, "32x32")] {
        let per_round = broadcast_allocs_per_round(g, ExecutionPolicy::Sequential, rounds);
        assert!(
            per_round <= seq_budget,
            "sequential broadcast on the {name} torus allocates {per_round}/round \
             (budget {seq_budget})"
        );
    }

    // Orchestrated layer, parallel{4}: same contract with an O(chunks)
    // surcharge (per-chunk buffer views and metric merges), still
    // independent of n.
    let par_budget = 48;
    for (g, name) in [(&small, "16x16"), (&large, "32x32")] {
        let per_round = broadcast_allocs_per_round(g, ExecutionPolicy::parallel(4), rounds);
        assert!(
            per_round <= par_budget,
            "parallel(4) broadcast on the {name} torus allocates {per_round}/round \
             (budget {par_budget})"
        );
    }

    // O(n)-independence pinned directly: quadrupling the graph must not
    // move the steady-state budget (identical chunk counts on both sizes).
    let small_rate = broadcast_allocs_per_round(&small, ExecutionPolicy::parallel(4), rounds);
    let large_rate = broadcast_allocs_per_round(&large, ExecutionPolicy::parallel(4), rounds);
    assert!(
        large_rate <= small_rate + 4,
        "steady-state allocs grew with n: {small_rate}/round at 256 nodes vs \
         {large_rate}/round at 1024 nodes"
    );

    // Strict layer: a program whose rounds send nothing exercises the
    // double-buffered inbox swap; the engine itself must stay quiet. The
    // one-time setup (contexts, state vectors, init flood) is excluded by
    // measuring a long run minus a short run of the same instance.
    let ids = IdAssignment::scattered(large.n(), 7);
    let run_allocs = |max_rounds: u64| {
        allocs_during(|| {
            let run = run_program_with(
                &large,
                &ids,
                Model::Local,
                ExecutionPolicy::parallel(4),
                max_rounds,
                |_| QuietTicker,
            );
            assert_eq!(run.metrics.rounds, max_rounds);
        })
    };
    let short = run_allocs(8);
    let long = run_allocs(72);
    let per_round = (long.saturating_sub(short)) / 64;
    let strict_budget = 48;
    assert!(
        per_round <= strict_budget,
        "quiet strict-layer rounds allocate {per_round}/round on the 32x32 torus \
         (budget {strict_budget}; short run {short}, long run {long})"
    );
}
