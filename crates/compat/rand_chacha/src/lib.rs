//! Offline stand-in for the `rand_chacha` crate: a genuine ChaCha8 block
//! cipher core exposed as [`ChaCha8Rng`]. Seeded streams are stable within
//! this repository but are not bit-identical to upstream `rand_chacha`
//! (the `seed_from_u64` expansion differs). See `crates/compat/README.md`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter state fed to the block function.
    state: [u32; 16],
    /// The current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "block exhausted".
    word: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Words 12..=15 (counter and nonce) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "bucket count {c} far from uniform");
        }
    }
}
