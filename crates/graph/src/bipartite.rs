//! 2-colored bipartite graphs.
//!
//! The core algorithms of Section 5 of the paper (balanced edge orientations
//! and generalized defective 2-edge coloring) are defined on bipartite graphs
//! `G = (U ∪ V, E)` in which every node knows its side. [`BipartiteGraph`]
//! couples a [`Graph`] with that side information and exposes edge endpoints
//! in `(u ∈ U, v ∈ V)` order, which is the orientation convention the paper
//! uses ("red" edges are oriented from `U` to `V`).

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId, Side};
use serde::{Deserialize, Serialize};

/// A graph together with a valid bipartition of its nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BipartiteGraph {
    graph: Graph,
    sides: Vec<Side>,
}

impl BipartiteGraph {
    /// Wraps a graph with an explicitly provided bipartition.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidBipartition`] if some edge has both
    /// endpoints on the same side, and [`GraphError::NodeOutOfRange`] if the
    /// side vector has the wrong length.
    pub fn new(graph: Graph, sides: Vec<Side>) -> Result<Self, GraphError> {
        if sides.len() != graph.n() {
            return Err(GraphError::NodeOutOfRange {
                node: sides.len(),
                n: graph.n(),
            });
        }
        for e in graph.edges() {
            let (a, b) = graph.endpoints(e);
            if sides[a.index()] == sides[b.index()] {
                return Err(GraphError::InvalidBipartition {
                    u: a.index(),
                    v: b.index(),
                });
            }
        }
        Ok(BipartiteGraph { graph, sides })
    }

    /// Wraps a graph, computing a bipartition by breadth-first search.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotBipartite`] if the graph contains an odd cycle.
    pub fn from_graph(graph: Graph) -> Result<Self, GraphError> {
        let sides = graph.bipartition().ok_or(GraphError::NotBipartite)?;
        Ok(BipartiteGraph { graph, sides })
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the wrapper and returns the underlying graph and the sides.
    pub fn into_parts(self) -> (Graph, Vec<Side>) {
        (self.graph, self.sides)
    }

    /// The side of node `v`.
    #[inline]
    pub fn side(&self, v: NodeId) -> Side {
        self.sides[v.index()]
    }

    /// The side vector, indexed by node.
    #[inline]
    pub fn sides(&self) -> &[Side] {
        &self.sides
    }

    /// Endpoints of edge `e` returned as `(u, v)` with `u ∈ U` and `v ∈ V`.
    #[inline]
    pub fn endpoints_uv(&self, e: EdgeId) -> (NodeId, NodeId) {
        let (a, b) = self.graph.endpoints(e);
        if self.sides[a.index()] == Side::U {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Nodes on side `U`.
    pub fn u_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes().filter(move |v| self.side(*v) == Side::U)
    }

    /// Nodes on side `V`.
    pub fn v_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes().filter(move |v| self.side(*v) == Side::V)
    }

    /// Number of nodes on side `U`.
    pub fn u_count(&self) -> usize {
        self.sides.iter().filter(|s| **s == Side::U).count()
    }

    /// Number of nodes on side `V`.
    pub fn v_count(&self) -> usize {
        self.sides.len() - self.u_count()
    }

    /// Builds the bipartite subgraph induced by keeping only edges selected by
    /// `keep`, preserving the side labels. Returns the subgraph and the map
    /// from new edge ids to original edge ids.
    pub fn edge_subgraph(&self, keep: impl Fn(EdgeId) -> bool) -> (BipartiteGraph, Vec<EdgeId>) {
        let (sub, map) = self.graph.edge_subgraph(keep);
        let bg = BipartiteGraph::new(sub, self.sides.clone())
            .expect("subgraph of a bipartite graph with the same sides is bipartite");
        (bg, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_cycle(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn from_graph_even_cycle() {
        let bg = BipartiteGraph::from_graph(even_cycle(6)).unwrap();
        assert_eq!(bg.u_count(), 3);
        assert_eq!(bg.v_count(), 3);
        for e in bg.graph().edges() {
            let (u, v) = bg.endpoints_uv(e);
            assert_eq!(bg.side(u), Side::U);
            assert_eq!(bg.side(v), Side::V);
        }
    }

    #[test]
    fn from_graph_rejects_odd_cycle() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(BipartiteGraph::from_graph(g), Err(GraphError::NotBipartite));
    }

    #[test]
    fn explicit_sides_validated() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(BipartiteGraph::new(g.clone(), vec![Side::U, Side::V]).is_ok());
        assert_eq!(
            BipartiteGraph::new(g.clone(), vec![Side::U, Side::U]),
            Err(GraphError::InvalidBipartition { u: 0, v: 1 })
        );
        assert!(BipartiteGraph::new(g, vec![Side::U]).is_err());
    }

    #[test]
    fn u_and_v_node_iterators() {
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (1, 2)]).unwrap();
        let bg = BipartiteGraph::new(g, vec![Side::U, Side::U, Side::V, Side::V]).unwrap();
        let us: Vec<usize> = bg.u_nodes().map(|v| v.index()).collect();
        let vs: Vec<usize> = bg.v_nodes().map(|v| v.index()).collect();
        assert_eq!(us, vec![0, 1]);
        assert_eq!(vs, vec![2, 3]);
    }

    #[test]
    fn edge_subgraph_preserves_sides() {
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let bg = BipartiteGraph::new(g, vec![Side::U, Side::U, Side::V, Side::V]).unwrap();
        let (sub, map) = bg.edge_subgraph(|e| e.index() % 2 == 0);
        assert_eq!(sub.graph().m(), 2);
        assert_eq!(map.len(), 2);
        assert_eq!(sub.side(NodeId::new(0)), Side::U);
        assert_eq!(sub.side(NodeId::new(2)), Side::V);
    }

    #[test]
    fn into_parts_roundtrip() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let bg = BipartiteGraph::from_graph(g.clone()).unwrap();
        let (g2, sides) = bg.into_parts();
        assert_eq!(g, g2);
        assert_eq!(sides.len(), 2);
    }
}
