//! Text edge-list ingestion and emission — the slow-path baseline the
//! binary snapshots are measured against.
//!
//! The format is the common whitespace edge list:
//!
//! ```text
//! # comment lines start with '#'
//! p <n> <m>        (one header line, before any edge)
//! <u> <v>          (one line per edge, in EdgeId order)
//! ```
//!
//! Parsing goes through [`distgraph::Graph::from_edges`], so all graph-level
//! validation (range, self loops, duplicates) applies; malformed lines
//! surface as [`SnapshotError::Text`] with a 1-based line number.

use crate::error::SnapshotError;
use distgraph::Graph;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Serializes a graph as a text edge list.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] on filesystem failure.
pub fn write_edge_list(graph: &Graph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let mut out = Vec::with_capacity(16 + graph.m() * 14);
    writeln!(out, "p {} {}", graph.n(), graph.m()).expect("writing to a Vec cannot fail");
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        writeln!(out, "{} {}", u.index(), v.index()).expect("writing to a Vec cannot fail");
    }
    fs::write(path, out)?;
    Ok(())
}

/// Parses a text edge list into a graph.
///
/// # Errors
///
/// [`SnapshotError::Text`] for malformed lines, [`SnapshotError::Graph`] if
/// the edges fail graph validation.
pub fn parse_edge_list(input: &str) -> Result<Graph, SnapshotError> {
    let mut header: Option<(usize, usize)> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = idx + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let err = |detail: String| SnapshotError::Text { line, detail };
        let mut fields = text.split_whitespace();
        if let Some(rest) = text.strip_prefix("p ") {
            if header.is_some() {
                return Err(err("repeated header line".to_string()));
            }
            if !edges.is_empty() {
                return Err(err("header after edge lines".to_string()));
            }
            let mut nums = rest.split_whitespace().map(parse_count);
            let n = nums
                .next()
                .ok_or_else(|| err("header missing node count".to_string()))?
                .map_err(&err)?;
            let m = nums
                .next()
                .ok_or_else(|| err("header missing edge count".to_string()))?
                .map_err(&err)?;
            if nums.next().is_some() {
                return Err(err("trailing fields after header".to_string()));
            }
            header = Some((n, m));
            if m <= u32::MAX as usize {
                edges.reserve(m);
            }
            continue;
        }
        let u = fields
            .next()
            .map(parse_count)
            .ok_or_else(|| err("empty edge line".to_string()))?
            .map_err(&err)?;
        let v = fields
            .next()
            .map(parse_count)
            .ok_or_else(|| err("edge line missing second endpoint".to_string()))?
            .map_err(&err)?;
        if fields.next().is_some() {
            return Err(err("trailing fields after edge".to_string()));
        }
        edges.push((u, v));
    }
    let (n, m) = header.ok_or(SnapshotError::Text {
        line: input.lines().count() + 1,
        detail: "missing 'p <n> <m>' header line".to_string(),
    })?;
    if edges.len() != m {
        return Err(SnapshotError::Text {
            line: input.lines().count() + 1,
            detail: format!("header promises {m} edges, file has {}", edges.len()),
        });
    }
    Ok(Graph::from_edges(n, &edges)?)
}

/// Strict decimal parse: no sign, no leading '+', digits only.
/// (`usize::from_str` accepts a leading '+', which an edge list never
/// legitimately contains.)
fn parse_count(field: &str) -> Result<usize, String> {
    if field.is_empty() || !field.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("expected a non-negative integer, found {field:?}"));
    }
    field
        .parse::<usize>()
        .map_err(|_| format!("integer {field:?} out of range"))
}

/// Reads and parses a text edge list from `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failure, [`SnapshotError::Text`] on a
/// malformed file (including non-UTF-8 bytes), [`SnapshotError::Graph`] on
/// invalid edges.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    let bytes = fs::read(path)?;
    let text = String::from_utf8(bytes).map_err(|e| SnapshotError::Text {
        line: 0,
        detail: format!("file is not UTF-8: {e}"),
    })?;
    parse_edge_list(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;

    #[test]
    fn roundtrips_through_a_file() {
        let g = generators::grid_torus(6, 5);
        let path = std::env::temp_dir().join("diststore_text_roundtrip.txt");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let g =
            parse_edge_list("# a triangle\n\np 3 3\n0 1\n1 2\n# middle comment\n0 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let cases = [
            ("p 3 1\n0 x\n", 2, "non-negative integer"),
            ("p 3 1\n0\n", 2, "second endpoint"),
            ("p 3 1\n0 1 2\n", 2, "trailing"),
            ("p 3\n", 1, "edge count"),
            ("p 3 2\np 3 2\n", 2, "repeated header"),
            ("0 1\n", 2, "header"),
            ("p 2 1\n+0 1\n", 2, "non-negative integer"),
            ("p 2 1\n-1 1\n", 2, "non-negative integer"),
        ];
        for (input, line, needle) in cases {
            match parse_edge_list(input) {
                Err(SnapshotError::Text { line: l, detail }) => {
                    assert_eq!(l, line, "line number for {input:?}");
                    assert!(detail.contains(needle), "{detail:?} vs {needle:?}");
                }
                other => panic!("{input:?}: expected Text error, got {other:?}"),
            }
        }
    }

    #[test]
    fn edge_count_mismatch_is_rejected() {
        assert!(matches!(
            parse_edge_list("p 3 2\n0 1\n"),
            Err(SnapshotError::Text { .. })
        ));
    }

    #[test]
    fn graph_validation_applies() {
        assert!(matches!(
            parse_edge_list("p 2 1\n1 1\n"),
            Err(SnapshotError::Graph(_))
        ));
    }
}
