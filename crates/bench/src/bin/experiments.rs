//! Prints the evaluation suite E1–E11 plus the SCALE/DYN/SHARD experiments
//! (see DESIGN.md and EXPERIMENTS.md) and optionally serializes everything —
//! tables and per-experiment wall-clock timings — to a machine-readable
//! JSON file (the `BENCH_*.json` schema documented in docs/BENCH_SCHEMA.md).
//!
//! Usage:
//!   cargo run --release -p edgecolor-bench --bin experiments                # all experiments
//!   cargo run --release -p edgecolor-bench --bin experiments -- e1 e4      # a subset
//!   cargo run --release -p edgecolor-bench --bin experiments -- quick      # smaller sweeps (no SCALE)
//!   cargo run --release -p edgecolor-bench --bin experiments -- scale      # million-edge SCALE only
//!   cargo run --release -p edgecolor-bench --bin experiments -- dyn        # million-edge dynamic recoloring
//!   cargo run --release -p edgecolor-bench --bin experiments -- shard      # sharded substrate (partition/traffic)
//!   cargo run --release -p edgecolor-bench --bin experiments -- smoke scale dyn shard  # CI: tiny sweeps + tiny SCALE/DYN/SHARD
//!   cargo run --release -p edgecolor-bench --bin experiments -- quick scale dyn shard --emit-json BENCH_1.json

use edgecolor_bench as bench;
use edgecolor_bench::json::JsonValue;
use std::time::Instant;

struct TimedTable {
    table: bench::Table,
    wall_ms: f64,
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut emit_json: Option<String> = None;
    let mut selectors: Vec<String> = Vec::new();
    let mut iter = raw.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--emit-json" {
            let path = iter
                .next()
                .unwrap_or_else(|| panic!("--emit-json requires a path argument"));
            emit_json = Some(path);
        } else {
            selectors.push(arg.to_lowercase());
        }
    }
    let quick = selectors.iter().any(|a| a == "quick");
    let smoke = selectors.iter().any(|a| a == "smoke");
    let small = quick || smoke;
    // An experiment runs when no selector is given or a broad selector
    // (all/quick/smoke) or its own id appears.
    let want = |id: &str| {
        selectors.is_empty()
            || selectors
                .iter()
                .any(|a| a == id || a == "all" || a == "quick" || a == "smoke")
    };

    let deltas: &[usize] = if small {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64]
    };
    let small_deltas: &[usize] = if small { &[8, 16] } else { &[8, 16, 32, 64] };
    let ns: &[usize] = if small {
        &[128, 256, 512]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    let congest_ns: &[usize] = if small {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024]
    };
    let orientation_deltas: &[usize] = if small {
        &[16, 32, 64]
    } else {
        &[16, 32, 64, 128]
    };
    let orientation_eps: &[f64] = if small { &[0.5] } else { &[0.25, 0.5, 1.0] };

    let mut tables: Vec<TimedTable> = Vec::new();
    let mut timed = |run: &mut dyn FnMut() -> bench::Table| {
        let started = Instant::now();
        let table = run();
        tables.push(TimedTable {
            table,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        });
    };
    if want("e1") {
        timed(&mut || bench::run_e1(deltas));
    }
    if want("e2") {
        timed(&mut || bench::run_e2(ns));
    }
    if want("e3") {
        timed(&mut || bench::run_e3(small_deltas, &[0.25, 0.5, 1.0]));
    }
    if want("e4") || want("e8") {
        timed(&mut || bench::run_e4(&[64, 256, 1024], &[1, 4, 16, 64]));
    }
    if want("e5") {
        timed(&mut || bench::run_e5(orientation_deltas, orientation_eps));
    }
    if want("e6") {
        timed(&mut || bench::run_e6(orientation_deltas));
    }
    if want("e7") {
        timed(&mut || bench::run_e7(congest_ns));
    }
    if want("e9") {
        timed(&mut || bench::run_e9());
    }
    if want("e10") {
        timed(&mut || bench::run_e10());
    }
    if want("e11") {
        timed(&mut || bench::run_e11(small_deltas));
    }

    // The SCALE and DYN experiments run only when explicitly named (or on a
    // bare full run): their million-edge graphs would turn `quick`/`smoke`
    // sweeps into multi-minute runs. Graph sizes stay down-scaled under
    // `smoke`.
    let scale_wanted = selectors.is_empty() || selectors.iter().any(|a| a == "scale" || a == "all");
    let mut scale_measurements = Vec::new();
    if scale_wanted {
        timed(&mut || {
            let (table, measurements) = bench::run_scale(&[1, 2, 4, 8], !smoke);
            scale_measurements = measurements;
            table
        });
    }
    let dyn_wanted = selectors.is_empty() || selectors.iter().any(|a| a == "dyn" || a == "all");
    if dyn_wanted {
        timed(&mut || bench::run_dyn(!smoke));
    }
    let shard_wanted = selectors.is_empty() || selectors.iter().any(|a| a == "shard" || a == "all");
    let mut shard_measurements = Vec::new();
    if shard_wanted {
        timed(&mut || {
            let (table, measurements) = bench::run_shard(!smoke);
            shard_measurements = measurements;
            table
        });
    }

    for entry in &tables {
        println!("{}", entry.table);
        println!("(wall clock: {:.1} ms)\n", entry.wall_ms);
    }

    if let Some(path) = emit_json {
        let doc = build_json(&tables, &scale_measurements, &shard_measurements);
        std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Assembles the `edgecolor-bench/v1` JSON document (schema in
/// `docs/BENCH_SCHEMA.md`).
fn build_json(
    tables: &[TimedTable],
    scale: &[bench::ScaleMeasurement],
    shard: &[bench::ShardMeasurement],
) -> JsonValue {
    let experiments = tables
        .iter()
        .map(|entry| {
            JsonValue::obj(vec![
                ("id", JsonValue::str(entry.table.id.clone())),
                ("title", JsonValue::str(entry.table.title.clone())),
                ("wall_ms", JsonValue::Num(entry.wall_ms)),
                (
                    "headers",
                    JsonValue::Arr(
                        entry
                            .table
                            .headers
                            .iter()
                            .map(|h| JsonValue::str(h.clone()))
                            .collect(),
                    ),
                ),
                (
                    "rows",
                    JsonValue::Arr(
                        entry
                            .table
                            .rows
                            .iter()
                            .map(|row| {
                                JsonValue::Arr(
                                    row.iter().map(|c| JsonValue::str(c.clone())).collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let scale_entries = scale
        .iter()
        .map(|m| {
            JsonValue::obj(vec![
                ("graph", JsonValue::str(m.graph.clone())),
                ("n", JsonValue::Int(m.n as i64)),
                ("m", JsonValue::Int(m.m as i64)),
                ("threads", JsonValue::Int(m.threads as i64)),
                ("wall_ms", JsonValue::Num(m.wall_ms)),
                (
                    "speedup_vs_sequential",
                    JsonValue::Num(m.speedup_vs_sequential),
                ),
                (
                    "identical_to_sequential",
                    JsonValue::Bool(m.identical_to_sequential),
                ),
                ("rounds", JsonValue::Int(m.rounds as i64)),
                ("messages", JsonValue::Int(m.messages as i64)),
                (
                    "speedup_floor",
                    m.speedup_floor.map_or(JsonValue::Null, JsonValue::Num),
                ),
                ("meets_floor", JsonValue::Bool(m.meets_floor)),
            ])
        })
        .collect();
    let shard_entries = shard
        .iter()
        .map(|m| {
            let opt_num = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Num);
            JsonValue::obj(vec![
                ("workload", JsonValue::str(m.workload.clone())),
                ("graph", JsonValue::str(m.graph.clone())),
                ("n", JsonValue::Int(m.n as i64)),
                ("m", JsonValue::Int(m.m as i64)),
                ("shards", JsonValue::Int(m.shards as i64)),
                ("cut_fraction", JsonValue::Num(m.cut_fraction)),
                ("balance_factor", JsonValue::Num(m.balance_factor)),
                ("partition_ms", JsonValue::Num(m.partition_ms)),
                ("wall_ms", JsonValue::Num(m.wall_ms)),
                ("seq_wall_ms", JsonValue::Num(m.seq_wall_ms)),
                ("rounds", JsonValue::Int(m.rounds as i64)),
                (
                    "cross_messages_per_round",
                    opt_num(m.cross_messages_per_round),
                ),
                ("cross_bytes_per_round", opt_num(m.cross_bytes_per_round)),
                (
                    "identical_to_sequential",
                    JsonValue::Bool(m.identical_to_sequential),
                ),
                (
                    "repaired_edges",
                    m.repaired_edges
                        .map_or(JsonValue::Null, |v| JsonValue::Int(v as i64)),
                ),
                (
                    "peak_rss_bytes",
                    m.peak_rss_bytes
                        .map_or(JsonValue::Null, |v| JsonValue::Int(v as i64)),
                ),
            ])
        })
        .collect();
    let available = std::thread::available_parallelism()
        .map(|p| p.get() as i64)
        .unwrap_or(1);
    JsonValue::obj(vec![
        ("schema", JsonValue::str("edgecolor-bench/v1")),
        (
            "host",
            JsonValue::obj(vec![
                ("available_parallelism", JsonValue::Int(available)),
                ("os", JsonValue::str(std::env::consts::OS)),
                ("arch", JsonValue::str(std::env::consts::ARCH)),
            ]),
        ),
        ("experiments", JsonValue::Arr(experiments)),
        ("scale", JsonValue::Arr(scale_entries)),
        ("shard", JsonValue::Arr(shard_entries)),
    ])
}
