//! Root integration package for the edge-coloring reproduction.
//!
//! This package exists to host the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`). The re-exports below
//! give examples and tests a single import root.

pub use distgraph;
pub use distsim;
pub use edgecolor;
pub use edgecolor_baselines;
pub use edgecolor_verify;
