# Verification entry points for the edge-coloring reproduction workspace.

.PHONY: verify build test clippy fmt bench-check

# The full gate: tier-1 (release build + tests) plus lints, formatting,
# and bench compilation.
verify: build test clippy fmt bench-check

build:
	cargo build --release

test:
	cargo test -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --check

bench-check:
	cargo bench --no-run
