//! # edgecolor-baselines
//!
//! Baseline edge coloring algorithms used as comparison points for the
//! polylog-in-Δ algorithms of the `edgecolor` crate. They correspond to the
//! prior work the reproduced paper positions itself against:
//!
//! * [`greedy_sequential`] — the trivial centralized first-fit greedy
//!   (≤ 2Δ−1 colors), the correctness yardstick;
//! * [`misra_gries`] — the centralized Misra–Gries implementation of Vizing's
//!   theorem (≤ Δ+1 colors), the color-count yardstick;
//! * [`greedy_by_classes`] — the classic distributed greedy that iterates
//!   through the classes of an `O(Δ̄²)` initial edge coloring
//!   (`O(Δ² + log* n)` rounds, ≤ Δ̄+1 colors);
//! * [`kw_reduction`] — a Kuhn–Wattenhofer style color reduction
//!   (`O(Δ log Δ + log* n)` rounds, ≤ Δ̄+1 colors), the "linear in Δ"
//!   generation of algorithms;
//! * [`randomized_coloring`] — the simple randomized algorithm
//!   (`O(log n)` rounds with high probability, 2Δ−1 colors) known since the
//!   1980s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use distgraph::{Color, EdgeColoring, EdgeId, Graph, NodeId};
use distsim::{IdAssignment, Metrics, Model, Network};
use edgecolor::greedy_finish::greedy_palette_coloring_by_schedule;
use edgecolor::linial::linial_edge_coloring;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a distributed baseline run.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// The produced coloring.
    pub coloring: EdgeColoring,
    /// Number of colors used.
    pub colors_used: usize,
    /// Execution cost.
    pub metrics: Metrics,
}

/// Centralized first-fit greedy edge coloring: processes edges in identifier
/// order and assigns the smallest color not used by an adjacent edge.
/// Uses at most `Δ̄ + 1 ≤ 2Δ − 1` colors.
pub fn greedy_sequential(graph: &Graph) -> EdgeColoring {
    let mut coloring = EdgeColoring::empty(graph.m());
    for e in graph.edges() {
        let used = coloring.colors_around(graph, e);
        let c = (0..)
            .find(|c| !used.contains(c))
            .expect("a free color always exists");
        coloring.set(e, c);
    }
    coloring
}

/// Centralized Misra–Gries edge coloring (constructive Vizing): uses at most
/// `Δ + 1` colors.
///
/// The implementation follows the textbook fan-rotation / cd-path-inversion
/// procedure; it is quadratic-ish and intended as a color-count yardstick for
/// the experiments, not as a distributed algorithm.
pub fn misra_gries(graph: &Graph) -> EdgeColoring {
    let palette = graph.max_degree() + 1;
    let mut coloring = EdgeColoring::empty(graph.m());

    let free_at = |coloring: &EdgeColoring, v: NodeId| -> Vec<bool> {
        let mut free = vec![true; palette];
        for nb in graph.neighbors(v) {
            if let Some(c) = coloring.color(nb.edge) {
                free[c] = false;
            }
        }
        free
    };

    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        // Build a maximal fan of u starting at v.
        let mut fan: Vec<NodeId> = vec![v];
        let mut fan_edges: Vec<EdgeId> = vec![e];
        let mut in_fan: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        in_fan.insert(v);
        loop {
            let last = *fan.last().expect("fan is non-empty");
            let free_last = free_at(&coloring, last);
            let mut extended = false;
            for nb in graph.neighbors(u) {
                if in_fan.contains(&nb.node) {
                    continue;
                }
                if let Some(c) = coloring.color(nb.edge) {
                    if free_last[c] {
                        fan.push(nb.node);
                        fan_edges.push(nb.edge);
                        in_fan.insert(nb.node);
                        extended = true;
                        break;
                    }
                }
            }
            if !extended {
                break;
            }
        }

        // c is free at u, d is free at the last fan vertex.
        let free_u = free_at(&coloring, u);
        let c = (0..palette)
            .find(|&x| free_u[x])
            .expect("u has a free color");
        let last = *fan.last().expect("fan is non-empty");
        let free_last = free_at(&coloring, last);
        let d = (0..palette)
            .find(|&x| free_last[x])
            .expect("fan tip has a free color");

        if !free_u[d] {
            // Invert the cd-path starting at u: the maximal path alternating
            // colors d, c, d, ... starting from u.
            let mut path_edges = Vec::new();
            let mut current = u;
            let mut want = d;
            let mut prev_edge: Option<EdgeId> = None;
            loop {
                let next = graph
                    .neighbors(current)
                    .iter()
                    .find(|nb| Some(nb.edge) != prev_edge && coloring.color(nb.edge) == Some(want));
                match next {
                    None => break,
                    Some(nb) => {
                        path_edges.push(nb.edge);
                        prev_edge = Some(nb.edge);
                        current = nb.node;
                        want = if want == d { c } else { d };
                    }
                }
            }
            for &pe in &path_edges {
                let col = coloring.color(pe).expect("path edges are colored");
                coloring.set(pe, if col == d { c } else { d });
            }
        }

        // Find a prefix [f_0, ..., f_w] that is still a fan under the updated
        // coloring and whose tip has d free; rotate it and color (u, f_w)
        // with d. Such a prefix always exists (Misra–Gries invariant).
        let mut w_index = None;
        let mut prefix_is_fan = true;
        for j in 0..fan.len() {
            if j > 0 {
                // Fan condition: the color of (u, f_j) must be free at f_{j-1}.
                let col = coloring.color(fan_edges[j]);
                match col {
                    Some(col) if free_at(&coloring, fan[j - 1])[col] => {}
                    _ => {
                        prefix_is_fan = false;
                    }
                }
            }
            if !prefix_is_fan {
                break;
            }
            if free_at(&coloring, fan[j])[d] {
                w_index = Some(j);
            }
        }
        let w_index = w_index.expect("Misra-Gries guarantees a rotatable fan prefix");
        // Rotate: edge (u, fan[i]) takes the color of edge (u, fan[i+1]).
        for i in 0..w_index {
            let next_color = coloring
                .color(fan_edges[i + 1])
                .expect("rotated fan edges are colored");
            coloring.set(fan_edges[i], next_color);
        }
        coloring.set(fan_edges[w_index], d);
    }
    coloring
}

/// The classic distributed greedy: compute an `O(Δ̄²)`-edge coloring in
/// `O(log* n)` rounds (Linial on the line graph) and then iterate through its
/// color classes, each class picking greedily from `{0, ..., Δ̄}`.
/// Uses `O(Δ² + log* n)` rounds and at most `Δ̄ + 1` colors.
pub fn greedy_by_classes(graph: &Graph, ids: &IdAssignment, model: Model) -> BaselineRun {
    let mut net = Network::new(graph, model);
    let mut coloring = EdgeColoring::empty(graph.m());
    if graph.m() > 0 {
        let schedule = linial_edge_coloring(graph, ids, &mut net);
        let palette = graph.max_edge_degree() + 1;
        let outcome =
            greedy_palette_coloring_by_schedule(graph, &schedule, palette, &mut coloring, &mut net);
        debug_assert!(outcome.uncolorable.is_empty());
    }
    BaselineRun {
        colors_used: coloring.palette_size(),
        coloring,
        metrics: net.metrics(),
    }
}

/// A Kuhn–Wattenhofer style color reduction: starting from the `O(Δ̄²)`
/// initial coloring, repeatedly partition the color classes into buckets of
/// `2(Δ̄+1)` classes and compress every bucket into `Δ̄+1` fresh colors by
/// iterating through its classes. Each iteration halves the palette at the
/// cost of `O(Δ̄)` rounds, giving `O(Δ̄ log Δ̄ + log* n)` rounds overall and a
/// final palette of at most `Δ̄ + 1` colors. This represents the
/// "linear in Δ" generation of deterministic algorithms ([11, 38, 44]).
pub fn kw_reduction(graph: &Graph, ids: &IdAssignment, model: Model) -> BaselineRun {
    let mut net = Network::new(graph, model);
    let coloring = EdgeColoring::empty(graph.m());
    if graph.m() == 0 {
        return BaselineRun {
            colors_used: 0,
            coloring,
            metrics: net.metrics(),
        };
    }
    // O(log* n): initial O(Δ̄²) coloring.
    let mut current = linial_edge_coloring(graph, ids, &mut net);
    let dbar = graph.max_edge_degree();
    let target = dbar + 1;
    let bucket_width = 2 * target;

    loop {
        let palette = current.palette_size();
        if palette <= bucket_width {
            break;
        }
        let buckets = palette.div_ceil(bucket_width);
        let mut next = EdgeColoring::empty(graph.m());
        // All buckets are processed in parallel: bucket `b` compresses its
        // classes into the fresh range [b·target, (b+1)·target).
        for step in 0..bucket_width {
            // One round: every edge whose class is the `step`-th class of its
            // bucket picks a free color within its bucket's fresh range.
            net.charge_rounds(1);
            for e in graph.edges() {
                let c = current.color(e).expect("initial coloring is complete");
                let bucket = c / bucket_width;
                if c % bucket_width != step {
                    continue;
                }
                let base = bucket * target;
                let used: std::collections::HashSet<Color> = graph
                    .adjacent_edges(e)
                    .into_iter()
                    .filter_map(|f| next.color(f))
                    .collect();
                let fresh = (base..base + target)
                    .find(|cand| !used.contains(cand))
                    .expect("Δ̄+1 colors per bucket always suffice");
                next.set(e, fresh);
            }
            net.charge_messages(
                graph.m() as u64 / bucket_width.max(1) as u64,
                2 * distsim::bits_for(target as u64) as u64,
            );
        }
        debug_assert!(next.is_complete());
        debug_assert!(buckets * target >= next.palette_size());
        current = next;
    }

    // Final pass: compress the remaining ≤ 2(Δ̄+1) classes into Δ̄+1 colors.
    let palette = current.palette_size();
    let mut fin = EdgeColoring::empty(graph.m());
    for step in 0..palette {
        net.charge_rounds(1);
        for e in graph.edges() {
            if current.color(e) != Some(step) {
                continue;
            }
            let used: std::collections::HashSet<Color> = graph
                .adjacent_edges(e)
                .into_iter()
                .filter_map(|f| fin.color(f))
                .collect();
            let fresh = (0..target)
                .find(|cand| !used.contains(cand))
                .expect("Δ̄+1 colors suffice");
            fin.set(e, fresh);
        }
    }
    BaselineRun {
        colors_used: fin.palette_size(),
        coloring: fin,
        metrics: net.metrics(),
    }
}

/// The simple randomized `(2Δ−1)`-edge coloring: in every round each
/// uncolored edge proposes a uniformly random free color from `{0, ..., 2Δ−2}`
/// and keeps it if no adjacent uncolored edge proposed the same color.
/// Terminates in `O(log n)` rounds with high probability.
pub fn randomized_coloring(graph: &Graph, seed: u64, model: Model) -> BaselineRun {
    let mut net = Network::new(graph, model);
    let mut coloring = EdgeColoring::empty(graph.m());
    if graph.m() == 0 {
        return BaselineRun {
            colors_used: 0,
            coloring,
            metrics: net.metrics(),
        };
    }
    let palette = (2 * graph.max_degree()).saturating_sub(1).max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let max_rounds = 40 * ((graph.n().max(2) as f64).log2().ceil() as usize);

    for _ in 0..max_rounds {
        if coloring.is_complete() {
            break;
        }
        net.charge_rounds(1);
        net.charge_messages(
            2 * graph.edges().filter(|&e| !coloring.is_colored(e)).count() as u64,
            distsim::bits_for(palette as u64) as u64,
        );
        // Proposals.
        let mut proposal: Vec<Option<Color>> = vec![None; graph.m()];
        for e in graph.edges() {
            if coloring.is_colored(e) {
                continue;
            }
            let used = coloring.colors_around(graph, e);
            let free: Vec<Color> = (0..palette).filter(|c| !used.contains(c)).collect();
            if free.is_empty() {
                continue;
            }
            proposal[e.index()] = Some(free[rng.gen_range(0..free.len())]);
        }
        // Keep proposals that no adjacent uncolored edge duplicated.
        for e in graph.edges() {
            let Some(p) = proposal[e.index()] else {
                continue;
            };
            let conflict = graph
                .adjacent_edges(e)
                .into_iter()
                .any(|f| !coloring.is_colored(f) && proposal[f.index()] == Some(p));
            if !conflict {
                coloring.set(e, p);
            }
        }
    }
    // Safety net (does not trigger for reasonable graphs): finish greedily.
    if !coloring.is_complete() {
        for e in graph.edges() {
            if !coloring.is_colored(e) {
                let used = coloring.colors_around(graph, e);
                let c = (0..)
                    .find(|c| !used.contains(c))
                    .expect("free color exists");
                coloring.set(e, c);
                net.charge_rounds(1);
            }
        }
    }
    BaselineRun {
        colors_used: coloring.palette_size(),
        coloring,
        metrics: net.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;
    use edgecolor_verify::{check_complete, check_palette_size, check_proper_edge_coloring};

    fn verify(graph: &Graph, coloring: &EdgeColoring, palette: usize) {
        check_proper_edge_coloring(graph, coloring).assert_ok();
        check_complete(graph, coloring).assert_ok();
        check_palette_size(coloring, palette).assert_ok();
    }

    #[test]
    fn greedy_sequential_respects_two_delta_minus_one() {
        for g in [
            generators::random_regular(60, 6, 1).unwrap(),
            generators::complete_graph(12),
            generators::erdos_renyi(50, 0.2, 2),
        ] {
            let coloring = greedy_sequential(&g);
            verify(&g, &coloring, (2 * g.max_degree()).saturating_sub(1).max(1));
        }
    }

    #[test]
    fn misra_gries_uses_at_most_delta_plus_one_colors() {
        for (i, g) in [
            generators::random_regular(40, 5, 3).unwrap(),
            generators::complete_graph(9),
            generators::erdos_renyi(40, 0.2, 7),
            generators::cycle(11),
            generators::star(7),
            generators::random_tree(30, 5),
        ]
        .into_iter()
        .enumerate()
        {
            let coloring = misra_gries(&g);
            check_proper_edge_coloring(&g, &coloring).assert_ok();
            check_complete(&g, &coloring).assert_ok();
            check_palette_size(&coloring, g.max_degree() + 1).assert_ok();
            assert!(coloring.palette_size() <= g.max_degree() + 1, "graph #{i}");
        }
    }

    #[test]
    fn greedy_by_classes_is_proper_and_bounded() {
        let g = generators::random_regular(50, 6, 9).unwrap();
        let ids = IdAssignment::scattered(g.n(), 4);
        let run = greedy_by_classes(&g, &ids, Model::Local);
        verify(&g, &run.coloring, g.max_edge_degree() + 1);
        assert!(run.metrics.rounds > 0);
    }

    #[test]
    fn kw_reduction_reaches_delta_bar_plus_one_colors() {
        let g = generators::random_regular(60, 8, 11).unwrap();
        let ids = IdAssignment::scattered(g.n(), 6);
        let run = kw_reduction(&g, &ids, Model::Local);
        verify(&g, &run.coloring, g.max_edge_degree() + 1);
        assert_eq!(run.colors_used, run.coloring.palette_size());
    }

    #[test]
    fn kw_reduction_round_count_is_near_linear_in_delta() {
        let g = generators::random_regular(80, 16, 2).unwrap();
        let ids = IdAssignment::scattered(g.n(), 3);
        let kw = kw_reduction(&g, &ids, Model::Local);
        verify(&g, &kw.coloring, g.max_edge_degree() + 1);
        // O(Δ̄ log Δ̄ + log* n) with a small constant, far below the Δ̄² worst
        // case of the class-iteration baseline.
        let dbar = g.max_edge_degree();
        let bound = 4 * (dbar + 1) * ((dbar as f64).log2().ceil() as usize + 2) + 32;
        assert!(
            (kw.metrics.rounds as usize) < bound,
            "KW used {} rounds, expected fewer than {bound}",
            kw.metrics.rounds
        );
    }

    #[test]
    fn randomized_coloring_terminates_quickly() {
        let g = generators::random_regular(100, 8, 5).unwrap();
        let run = randomized_coloring(&g, 42, Model::Local);
        verify(&g, &run.coloring, (2 * g.max_degree()).saturating_sub(1));
        // O(log n) with a generous constant.
        assert!(run.metrics.rounds <= 40 * 7 + 5);
    }

    #[test]
    fn randomized_coloring_is_deterministic_given_seed() {
        let g = generators::erdos_renyi(40, 0.2, 9);
        let a = randomized_coloring(&g, 7, Model::Local);
        let b = randomized_coloring(&g, 7, Model::Local);
        assert_eq!(a.coloring, b.coloring);
    }

    #[test]
    fn baselines_handle_empty_graphs() {
        let g = Graph::from_edges(4, &[]).unwrap();
        let ids = IdAssignment::contiguous(4);
        assert_eq!(greedy_sequential(&g).len(), 0);
        assert_eq!(misra_gries(&g).len(), 0);
        assert_eq!(greedy_by_classes(&g, &ids, Model::Local).colors_used, 0);
        assert_eq!(kw_reduction(&g, &ids, Model::Local).colors_used, 0);
        assert_eq!(randomized_coloring(&g, 1, Model::Local).colors_used, 0);
    }
}
