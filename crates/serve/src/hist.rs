//! Fixed-bucket log-scale latency histograms served over the wire.
//!
//! The v1 protocol summarized per-tick repair latency as three scalar
//! percentiles computed server-side; v2 ships the whole distribution so
//! clients (and the bench harness) can derive *any* quantile — including
//! the tail quantiles (p99.9) that SLO work actually cares about — from
//! one metrics answer.
//!
//! # Bucket definition
//!
//! [`HIST_BUCKETS`] = 32 buckets over **microseconds**, log₂-spaced:
//!
//! * bucket `0` holds samples of 0 µs (sub-microsecond),
//! * bucket `i` (1 ≤ i ≤ 30) holds samples in `[2^(i−1), 2^i)` µs,
//! * bucket `31` holds everything ≥ 2³⁰ µs (≈ 18 minutes).
//!
//! The geometry is fixed by the protocol (documented in `docs/SERVE.md`),
//! so histograms from different daemons merge bucket-wise and the wire
//! encoding is a flat array of counts — no bucket-boundary negotiation.
//!
//! Quantiles are derived conservatively: [`LatencyHistogram::quantile_ms`]
//! answers the **upper bound** of the bucket holding the requested rank
//! (clamped to the observed maximum), so a reported p99 never understates
//! the true p99 by more than one bucket width.

/// Number of log₂ buckets in a [`LatencyHistogram`]. Fixed by the wire
/// protocol.
pub const HIST_BUCKETS: usize = 32;

/// A log₂-bucketed latency distribution over microsecond samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Total samples recorded.
    count: u64,
    /// Sum of all samples, microseconds (for the mean).
    sum_us: u64,
    /// Largest sample observed, microseconds.
    max_us: u64,
    /// Per-bucket sample counts (see the module docs for the geometry).
    buckets: [u64; HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a histogram from wire fields. Counts are taken as-is (a
    /// hostile peer can only lie about its own latencies).
    pub fn from_parts(count: u64, sum_us: u64, max_us: u64, buckets: [u64; HIST_BUCKETS]) -> Self {
        LatencyHistogram {
            count,
            sum_us,
            max_us,
            buckets,
        }
    }

    /// The bucket index a sample of `us` microseconds lands in.
    pub fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The exclusive upper bound of bucket `i`, microseconds (the last
    /// bucket is open-ended; its bound is saturated).
    pub fn bucket_upper_us(i: usize) -> u64 {
        if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one sample of `us` microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
        self.buckets[Self::bucket_of(us)] += 1;
    }

    /// Records one sample from a wall-clock duration.
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Merges another histogram into this one (bucket geometries are
    /// protocol-fixed, so this is a plain element-wise sum).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Largest sample observed, microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Mean sample, milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_us as f64 / self.count as f64) / 1e3
        }
    }

    /// The `q`-quantile (0 < q ≤ 1), milliseconds: the upper bound of the
    /// bucket holding the rank-⌈q·count⌉ sample, clamped to the observed
    /// maximum. Returns 0 for an empty histogram.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = Self::bucket_upper_us(i).min(self.max_us);
                return upper as f64 / 1e3;
            }
        }
        self.max_us as f64 / 1e3
    }

    /// Median, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_ms(0.50)
    }

    /// 95th percentile, milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.quantile_ms(0.95)
    }

    /// 99th percentile, milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.quantile_ms(0.99)
    }

    /// 99.9th percentile, milliseconds — the tail the SLO bench rows track.
    pub fn p999_ms(&self) -> f64 {
        self.quantile_ms(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_is_log2_over_microseconds() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Every bucket's lower bound lands in that bucket.
        for i in 1..HIST_BUCKETS - 1 {
            assert_eq!(LatencyHistogram::bucket_of(1 << (i - 1)), i);
            assert_eq!(LatencyHistogram::bucket_of((1 << i) - 1), i);
        }
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let mut h = LatencyHistogram::new();
        // 99 samples at ~1 ms (bucket of 1000 µs) and 1 at ~100 ms.
        for _ in 0..99 {
            h.record_us(1000);
        }
        h.record_us(100_000);
        assert_eq!(h.count(), 100);
        // p50/p95 land in the 1000 µs bucket: upper bound 1024 µs.
        assert!((h.p50_ms() - 1.024).abs() < 1e-9);
        assert!((h.p95_ms() - 1.024).abs() < 1e-9);
        // p99 is the 99th of 100 samples — still the 1 ms bucket.
        assert!((h.p99_ms() - 1.024).abs() < 1e-9);
        // p99.9 reaches the tail sample; clamped to the observed max.
        assert!((h.p999_ms() - 100.0).abs() < 1e-9);
        assert!((h.mean_ms() - (99.0 * 1.0 + 100.0) / 100.0).abs() < 1e-6);
    }

    #[test]
    fn merge_is_elementwise_and_empty_is_zero() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.p50_ms(), 0.0);
        assert_eq!(empty.p999_ms(), 0.0);
        assert_eq!(empty.mean_ms(), 0.0);

        let mut a = LatencyHistogram::new();
        a.record_us(10);
        let mut b = LatencyHistogram::new();
        b.record_us(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_us(), 1_000_000);
        assert_eq!(a.sum_us(), 1_000_010);
        let round_trip =
            LatencyHistogram::from_parts(a.count(), a.sum_us(), a.max_us(), *a.buckets());
        assert_eq!(round_trip, a);
    }
}
