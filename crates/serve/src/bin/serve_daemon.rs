//! `serve-daemon`: boot a serving daemon from a snapshot file or a
//! generated torus and print the bound address.
//!
//! ```text
//! serve-daemon --snapshot PATH          # boot from a diststore snapshot
//! serve-daemon --torus ROWSxCOLS        # boot from a generated grid torus
//! ```
//!
//! The process serves until a client sends the `Shutdown` request.

use distgraph::generators;
use distserve::{DaemonHandle, ServeConfig, ServerCore};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: serve-daemon --snapshot PATH | --torus ROWSxCOLS");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ServeConfig::default();
    let core = match args.as_slice() {
        [flag, path] if flag == "--snapshot" => {
            match ServerCore::from_snapshot_path(path, config) {
                Ok(core) => core,
                Err(e) => {
                    eprintln!("serve-daemon: cannot boot from {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        [flag, dims] if flag == "--torus" => {
            let Some((rows, cols)) = dims
                .split_once('x')
                .and_then(|(r, c)| Some((r.parse().ok()?, c.parse().ok()?)))
            else {
                return usage();
            };
            if rows < 3 || cols < 3 {
                eprintln!("serve-daemon: torus dimensions must be at least 3x3");
                return ExitCode::FAILURE;
            }
            match ServerCore::new(generators::grid_torus(rows, cols), config) {
                Ok(core) => core,
                Err(e) => {
                    eprintln!("serve-daemon: initial coloring failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => return usage(),
    };

    let daemon = match DaemonHandle::spawn(core) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve-daemon: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("serve-daemon listening on {}", daemon.addr());

    // Serve until a Shutdown request flips the running flag; the handle's
    // threads do all the work, so this thread just waits for them.
    daemon.wait();
    ExitCode::SUCCESS
}
