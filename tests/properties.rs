//! Workspace-level property-based tests: the end-to-end pipelines must
//! produce valid colorings on randomly generated graphs of every shape.

use distgraph::{Graph, ListAssignment};
use distsim::IdAssignment;
use edgecolor::{color_congest, color_edges_local, ColoringParams};
use edgecolor_verify::{check_complete, check_list_compliance, check_proper_edge_coloring};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(key);
                }
            }
            Graph::from_edges(n, &edges).expect("sanitized edges")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn local_coloring_is_always_proper_complete_and_within_budget(g in arb_graph(48)) {
        if g.m() == 0 {
            return Ok(());
        }
        let ids = IdAssignment::scattered(g.n(), 11);
        let params = ColoringParams::new(0.5);
        let outcome = color_edges_local(&g, &ids, &params).expect("full palette is always valid");
        check_proper_edge_coloring(&g, &outcome.coloring).assert_ok();
        check_complete(&g, &outcome.coloring).assert_ok();
        prop_assert!(outcome.coloring.palette_size() <= (2 * g.max_degree()).saturating_sub(1).max(1));
    }

    #[test]
    fn congest_coloring_is_always_proper_and_bandwidth_clean(g in arb_graph(40)) {
        if g.m() == 0 {
            return Ok(());
        }
        let ids = IdAssignment::scattered(g.n(), 13);
        let params = ColoringParams::new(0.5);
        let result = color_congest(&g, &ids, &params);
        check_proper_edge_coloring(&g, &result.coloring).assert_ok();
        check_complete(&g, &result.coloring).assert_ok();
        prop_assert_eq!(result.metrics.congest_violations, 0);
    }

    #[test]
    fn degree_plus_one_list_instances_are_always_solved(g in arb_graph(40)) {
        if g.m() == 0 {
            return Ok(());
        }
        let lists = ListAssignment::degree_plus_one(&g);
        let ids = IdAssignment::contiguous(g.n());
        let params = ColoringParams::new(0.5);
        let outcome = edgecolor::list_edge_coloring(&g, &lists, &ids, &params).expect("degree+1 instance");
        check_proper_edge_coloring(&g, &outcome.coloring).assert_ok();
        check_complete(&g, &outcome.coloring).assert_ok();
        check_list_compliance(&g, &lists, &outcome.coloring).assert_ok();
    }
}
