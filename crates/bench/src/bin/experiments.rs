//! Prints the evaluation suite E1–E11 plus the SCALE/DYN/SHARD experiments
//! (see DESIGN.md and EXPERIMENTS.md) and optionally serializes everything —
//! tables and per-experiment wall-clock timings — to a machine-readable
//! JSON file (the `BENCH_*.json` schema documented in docs/BENCH_SCHEMA.md).
//!
//! Usage:
//!   cargo run --release -p edgecolor-bench --bin experiments                # all experiments
//!   cargo run --release -p edgecolor-bench --bin experiments -- e1 e4      # a subset
//!   cargo run --release -p edgecolor-bench --bin experiments -- quick      # smaller sweeps (no SCALE)
//!   cargo run --release -p edgecolor-bench --bin experiments -- scale      # million-edge SCALE only
//!   cargo run --release -p edgecolor-bench --bin experiments -- dyn        # million-edge dynamic recoloring
//!   cargo run --release -p edgecolor-bench --bin experiments -- shard      # sharded substrate (partition/traffic)
//!   cargo run --release -p edgecolor-bench --bin experiments -- fault      # fault adversary + self-stabilizing recovery
//!   cargo run --release -p edgecolor-bench --bin experiments -- io         # out-of-core load paths + locality reordering
//!   cargo run --release -p edgecolor-bench --bin experiments -- rounds     # round-complexity gate: E1/E2/E3 only, quick-size
//!   cargo run --release -p edgecolor-bench --bin experiments -- smoke scale dyn shard fault io  # CI: tiny sweeps + tiny SCALE/DYN/SHARD
//!   cargo run --release -p edgecolor-bench --bin experiments -- quick scale dyn shard fault io --emit-json BENCH_1.json
//!
//! The CI `bench-regression` job additionally passes
//! `--check-baseline BENCH_1.json --diff-out /tmp/diff.txt`: the freshly
//! built document is diffed against the committed baseline under the
//! tolerance table of `edgecolor_bench::regression`, the diff is written to
//! the given path, and any regression exits non-zero.

use edgecolor_bench as bench;
use edgecolor_bench::json::JsonValue;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// System-allocator shim feeding [`bench::ALLOC_EVENTS`], the counter
/// behind the SCALE `allocs/round` column. The library forbids `unsafe`, so
/// the shim lives here in the binary: every allocation event (alloc +
/// realloc; frees are free) bumps the shared counter the harness reads
/// deltas of. One relaxed atomic increment per event is far below the noise
/// floor of the wall-clock columns.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bench::ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bench::ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

struct TimedTable {
    table: bench::Table,
    wall_ms: f64,
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut emit_json: Option<String> = None;
    let mut check_baseline: Option<String> = None;
    let mut diff_out: Option<String> = None;
    let mut selectors: Vec<String> = Vec::new();
    let mut iter = raw.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--emit-json" {
            let path = iter
                .next()
                .unwrap_or_else(|| panic!("--emit-json requires a path argument"));
            emit_json = Some(path);
        } else if arg == "--check-baseline" {
            let path = iter
                .next()
                .unwrap_or_else(|| panic!("--check-baseline requires a path argument"));
            check_baseline = Some(path);
        } else if arg == "--diff-out" {
            let path = iter
                .next()
                .unwrap_or_else(|| panic!("--diff-out requires a path argument"));
            diff_out = Some(path);
        } else {
            selectors.push(arg.to_lowercase());
        }
    }
    let quick = selectors.iter().any(|a| a == "quick");
    let smoke = selectors.iter().any(|a| a == "smoke");
    // `rounds` is the round-complexity gate (`make bench-rounds`): only the
    // experiments whose round counts the tolerance table pins exactly
    // (E1/E2/E3), at quick-size sweeps so the rows stay key-comparable to
    // the committed baseline.
    let rounds_only = selectors.iter().any(|a| a == "rounds");
    // `io` as the sole selector is the `make bench-io` gate: only the IO
    // experiment runs, and a baseline check prunes everything else.
    let io_only = selectors.len() == 1 && selectors[0] == "io";
    let small = quick || smoke || rounds_only;
    // An experiment runs when no selector is given or a broad selector
    // (all/quick/smoke) or its own id appears.
    let want = |id: &str| {
        if rounds_only {
            return matches!(id, "e1" | "e2" | "e3");
        }
        selectors.is_empty()
            || selectors
                .iter()
                .any(|a| a == id || a == "all" || a == "quick" || a == "smoke")
    };

    let deltas: &[usize] = if small {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64]
    };
    let small_deltas: &[usize] = if small { &[8, 16] } else { &[8, 16, 32, 64] };
    let ns: &[usize] = if small {
        &[128, 256, 512]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    let congest_ns: &[usize] = if small {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024]
    };
    let orientation_deltas: &[usize] = if small {
        &[16, 32, 64]
    } else {
        &[16, 32, 64, 128]
    };
    let orientation_eps: &[f64] = if small { &[0.5] } else { &[0.25, 0.5, 1.0] };

    let mut tables: Vec<TimedTable> = Vec::new();
    let mut timed = |run: &mut dyn FnMut() -> bench::Table| {
        let started = Instant::now();
        let table = run();
        tables.push(TimedTable {
            table,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        });
    };
    if want("e1") {
        timed(&mut || bench::run_e1(deltas));
    }
    if want("e2") {
        timed(&mut || bench::run_e2(ns));
    }
    if want("e3") {
        timed(&mut || bench::run_e3(small_deltas, &[0.25, 0.5, 1.0]));
    }
    if want("e4") || want("e8") {
        timed(&mut || bench::run_e4(&[64, 256, 1024], &[1, 4, 16, 64]));
    }
    if want("e5") {
        timed(&mut || bench::run_e5(orientation_deltas, orientation_eps));
    }
    if want("e6") {
        timed(&mut || bench::run_e6(orientation_deltas));
    }
    if want("e7") {
        timed(&mut || bench::run_e7(congest_ns));
    }
    if want("e9") {
        timed(&mut || bench::run_e9());
    }
    if want("e10") {
        timed(&mut || bench::run_e10());
    }
    if want("e11") {
        timed(&mut || bench::run_e11(small_deltas));
    }

    // The SCALE and DYN experiments run only when explicitly named (or on a
    // bare full run): their million-edge graphs would turn `quick`/`smoke`
    // sweeps into multi-minute runs. Graph sizes stay down-scaled under
    // `smoke`.
    let scale_wanted = selectors.is_empty() || selectors.iter().any(|a| a == "scale" || a == "all");
    let mut scale_measurements = Vec::new();
    if scale_wanted {
        timed(&mut || {
            let (table, measurements) = bench::run_scale(&[1, 2, 4, 8], !smoke);
            scale_measurements = measurements;
            table
        });
    }
    let dyn_wanted = selectors.is_empty() || selectors.iter().any(|a| a == "dyn" || a == "all");
    if dyn_wanted {
        timed(&mut || bench::run_dyn(!smoke));
    }
    let shard_wanted = selectors.is_empty() || selectors.iter().any(|a| a == "shard" || a == "all");
    let mut shard_measurements = Vec::new();
    if shard_wanted {
        timed(&mut || {
            let (table, measurements) = bench::run_shard(!smoke);
            shard_measurements = measurements;
            table
        });
    }
    // FAULT runs the same modest-size configurations under every selector
    // size, so the rows a CI smoke run emits are key-comparable to the
    // committed baseline (the point of the bench-regression contract).
    let fault_wanted = selectors.is_empty() || selectors.iter().any(|a| a == "fault" || a == "all");
    let mut fault_measurements = Vec::new();
    if fault_wanted {
        timed(&mut || {
            let (table, measurements) = bench::run_fault();
            fault_measurements = measurements;
            table
        });
    }
    // IO runs the same configurations under every selector size (like
    // FAULT), so its rows — including the million-edge-torus cold-start
    // floor — stay key-comparable to the committed baseline.
    let io_wanted = selectors.is_empty() || selectors.iter().any(|a| a == "io" || a == "all");
    let mut io_measurements = Vec::new();
    if io_wanted {
        timed(&mut || {
            let (table, measurements) = bench::run_io();
            io_measurements = measurements;
            table
        });
    }
    // SERVE runs its small-torus row at every selector size (like FAULT
    // and IO, so the row stays key-comparable to the baseline); the
    // million-edge serving row joins on full-size runs only.
    let serve_wanted = selectors.is_empty() || selectors.iter().any(|a| a == "serve" || a == "all");
    let mut serve_measurements = Vec::new();
    if serve_wanted {
        timed(&mut || {
            let (table, measurements) = bench::run_serve(!smoke);
            serve_measurements = measurements;
            table
        });
    }

    for entry in &tables {
        println!("{}", entry.table);
        println!("(wall clock: {:.1} ms)\n", entry.wall_ms);
    }

    // The JSON document is only needed to emit or to diff; a plain
    // table-printing run skips assembling it.
    if emit_json.is_none() && check_baseline.is_none() {
        return;
    }
    let doc = build_json(
        &tables,
        &scale_measurements,
        &shard_measurements,
        &fault_measurements,
        &io_measurements,
        &serve_measurements,
    );
    if let Some(path) = emit_json {
        std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = check_baseline {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let mut baseline = JsonValue::parse(&text)
            .unwrap_or_else(|e| panic!("baseline {path} is not valid bench JSON: {e}"));
        if rounds_only {
            baseline = prune_baseline_for_rounds(baseline);
        }
        // `make bench-io` checks only the IO experiment against the
        // baseline: restrict the baseline to the `io` array (and the IO
        // table) so the deliberately skipped experiments don't read as
        // losses.
        if io_only {
            baseline = prune_baseline_for_io(baseline);
        }
        let report = bench::regression::compare(&baseline, &doc);
        let rendered = report.render();
        print!("{rendered}");
        if let Some(diff_path) = diff_out {
            std::fs::write(&diff_path, &rendered)
                .unwrap_or_else(|e| panic!("write {diff_path}: {e}"));
            println!("wrote {diff_path}");
        }
        // A vacuous comparison (nothing matched by key) is as much a
        // contract failure as a mismatch: it means the diff silently
        // stopped covering anything.
        const MIN_COMPARED_ROWS: usize = 10;
        if !report.is_ok(MIN_COMPARED_ROWS) {
            eprintln!(
                "bench-regression FAILED ({} mismatches, {} rows compared, {MIN_COMPARED_ROWS} required)",
                report.mismatches.len(),
                report.compared_rows
            );
            std::process::exit(1);
        }
    }
}

/// Restricts a parsed baseline document to the tables whose ids satisfy
/// `keep` and empties the measurement arrays named in `empty_arrays`. A
/// subset run would otherwise fail the diff on "experiment missing from
/// the fresh run" / "coverage lost" for every table it deliberately skips.
fn prune_baseline(doc: JsonValue, keep: &dyn Fn(&str) -> bool, empty_arrays: &[&str]) -> JsonValue {
    let JsonValue::Obj(fields) = doc else {
        return doc;
    };
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(key, value)| {
                let value = if key == "experiments" {
                    match value {
                        JsonValue::Arr(exp_tables) => JsonValue::Arr(
                            exp_tables
                                .into_iter()
                                .filter(|t| {
                                    t.get("id").and_then(JsonValue::as_str).is_some_and(keep)
                                })
                                .collect(),
                        ),
                        other => other,
                    }
                } else if empty_arrays.contains(&key.as_str()) {
                    JsonValue::Arr(Vec::new())
                } else {
                    value
                };
                (key, value)
            })
            .collect(),
    )
}

/// The `rounds` gate reproduces only E1/E2/E3; the round columns keep
/// their exact-match contract while everything else is pruned.
fn prune_baseline_for_rounds(doc: JsonValue) -> JsonValue {
    prune_baseline(
        doc,
        &|id| matches!(id, "E1" | "E2" | "E3"),
        &["scale", "shard", "fault", "io", "serve"],
    )
}

/// The `io` gate reproduces only the IO experiment: the IO table and the
/// `io` measurement array (with its cold-start floor) keep their contract.
fn prune_baseline_for_io(doc: JsonValue) -> JsonValue {
    prune_baseline(doc, &|id| id == "IO", &["scale", "shard", "fault", "serve"])
}

/// Assembles the `edgecolor-bench/v1` JSON document (schema in
/// `docs/BENCH_SCHEMA.md`).
fn build_json(
    tables: &[TimedTable],
    scale: &[bench::ScaleMeasurement],
    shard: &[bench::ShardMeasurement],
    fault: &[bench::FaultMeasurement],
    io: &[bench::IoMeasurement],
    serve: &[bench::ServeMeasurement],
) -> JsonValue {
    let experiments = tables
        .iter()
        .map(|entry| {
            JsonValue::obj(vec![
                ("id", JsonValue::str(entry.table.id.clone())),
                ("title", JsonValue::str(entry.table.title.clone())),
                ("wall_ms", JsonValue::Num(entry.wall_ms)),
                (
                    "headers",
                    JsonValue::Arr(
                        entry
                            .table
                            .headers
                            .iter()
                            .map(|h| JsonValue::str(h.clone()))
                            .collect(),
                    ),
                ),
                (
                    "rows",
                    JsonValue::Arr(
                        entry
                            .table
                            .rows
                            .iter()
                            .map(|row| {
                                JsonValue::Arr(
                                    row.iter().map(|c| JsonValue::str(c.clone())).collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let scale_entries = scale
        .iter()
        .map(|m| {
            JsonValue::obj(vec![
                ("graph", JsonValue::str(m.graph.clone())),
                ("n", JsonValue::Int(m.n as i64)),
                ("m", JsonValue::Int(m.m as i64)),
                ("threads", JsonValue::Int(m.threads as i64)),
                ("wall_ms", JsonValue::Num(m.wall_ms)),
                (
                    "speedup_vs_sequential",
                    JsonValue::Num(m.speedup_vs_sequential),
                ),
                (
                    "identical_to_sequential",
                    JsonValue::Bool(m.identical_to_sequential),
                ),
                ("rounds", JsonValue::Int(m.rounds as i64)),
                ("messages", JsonValue::Int(m.messages as i64)),
                ("rounds_per_sec", JsonValue::Num(m.rounds_per_sec)),
                ("bytes_per_round", JsonValue::Num(m.bytes_per_round)),
                (
                    "allocs_per_round",
                    JsonValue::Int(m.allocs_per_round as i64),
                ),
                (
                    "speedup_floor",
                    m.speedup_floor.map_or(JsonValue::Null, JsonValue::Num),
                ),
                ("meets_floor", JsonValue::Bool(m.meets_floor)),
            ])
        })
        .collect();
    let shard_entries = shard
        .iter()
        .map(|m| {
            let opt_num = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Num);
            JsonValue::obj(vec![
                ("workload", JsonValue::str(m.workload.clone())),
                ("graph", JsonValue::str(m.graph.clone())),
                ("n", JsonValue::Int(m.n as i64)),
                ("m", JsonValue::Int(m.m as i64)),
                ("shards", JsonValue::Int(m.shards as i64)),
                ("cut_fraction", JsonValue::Num(m.cut_fraction)),
                ("balance_factor", JsonValue::Num(m.balance_factor)),
                ("partition_ms", JsonValue::Num(m.partition_ms)),
                ("wall_ms", JsonValue::Num(m.wall_ms)),
                ("seq_wall_ms", JsonValue::Num(m.seq_wall_ms)),
                ("rounds", JsonValue::Int(m.rounds as i64)),
                (
                    "cross_messages_per_round",
                    opt_num(m.cross_messages_per_round),
                ),
                ("cross_bytes_per_round", opt_num(m.cross_bytes_per_round)),
                (
                    "identical_to_sequential",
                    JsonValue::Bool(m.identical_to_sequential),
                ),
                (
                    "repaired_edges",
                    m.repaired_edges
                        .map_or(JsonValue::Null, |v| JsonValue::Int(v as i64)),
                ),
                (
                    "peak_rss_bytes",
                    m.peak_rss_bytes
                        .map_or(JsonValue::Null, |v| JsonValue::Int(v as i64)),
                ),
            ])
        })
        .collect();
    let opt_int = |v: Option<u64>| v.map_or(JsonValue::Null, |x| JsonValue::Int(x as i64));
    let fault_entries = fault
        .iter()
        .map(|m| {
            JsonValue::obj(vec![
                ("workload", JsonValue::str(m.workload.clone())),
                ("graph", JsonValue::str(m.graph.clone())),
                ("n", JsonValue::Int(m.n as i64)),
                ("m", JsonValue::Int(m.m as i64)),
                ("seed", JsonValue::Int(m.seed as i64)),
                ("drop_permille", JsonValue::Int(m.drop_permille as i64)),
                (
                    "duplicate_permille",
                    JsonValue::Int(m.duplicate_permille as i64),
                ),
                ("delay_permille", JsonValue::Int(m.delay_permille as i64)),
                ("crashes", JsonValue::Int(m.crashes as i64)),
                ("link_cuts", JsonValue::Int(m.link_cuts as i64)),
                ("rounds", JsonValue::Int(m.rounds as i64)),
                ("delivered", JsonValue::Int(m.delivered as i64)),
                ("dropped", JsonValue::Int(m.dropped as i64)),
                ("duplicated", JsonValue::Int(m.duplicated as i64)),
                ("delayed", JsonValue::Int(m.delayed as i64)),
                ("crash_dropped", JsonValue::Int(m.crash_dropped as i64)),
                (
                    "partition_dropped",
                    JsonValue::Int(m.partition_dropped as i64),
                ),
                ("corrupted_edges", opt_int(m.corrupted_edges)),
                ("conflicts_found", opt_int(m.conflicts_found)),
                ("repaired_edges", opt_int(m.repaired_edges)),
                (
                    "identical_across_policies",
                    JsonValue::Bool(m.identical_across_policies),
                ),
                ("wall_ms", JsonValue::Num(m.wall_ms)),
            ])
        })
        .collect();
    let opt_num = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Num);
    let io_entries = io
        .iter()
        .map(|m| {
            JsonValue::obj(vec![
                ("graph", JsonValue::str(m.graph.clone())),
                ("method", JsonValue::str(m.method.clone())),
                ("n", JsonValue::Int(m.n as i64)),
                ("m", JsonValue::Int(m.m as i64)),
                ("file_bytes", opt_int(m.file_bytes)),
                ("cold_start_ms", JsonValue::Num(m.cold_start_ms)),
                ("first_round_ms", opt_num(m.first_round_ms)),
                ("peak_rss_bytes", opt_int(m.peak_rss_bytes)),
                (
                    "adjacency_checksum",
                    JsonValue::Int(m.adjacency_checksum as i64),
                ),
                ("speedup_vs_text", opt_num(m.speedup_vs_text)),
                ("gated_speedup_vs_text", opt_num(m.gated_speedup_vs_text)),
                ("rounds_per_sec", opt_num(m.rounds_per_sec)),
                ("mean_edge_span", opt_num(m.mean_edge_span)),
            ])
        })
        .collect();
    let serve_entries = serve
        .iter()
        .map(|m| {
            JsonValue::obj(vec![
                ("graph", JsonValue::str(m.graph.clone())),
                ("clients", JsonValue::Int(m.clients as i64)),
                ("read_permille", JsonValue::Int(m.read_permille as i64)),
                ("graphs", JsonValue::Int(m.graphs as i64)),
                ("inflight", JsonValue::Int(m.inflight as i64)),
                ("n", JsonValue::Int(m.n as i64)),
                ("m0", JsonValue::Int(m.m0 as i64)),
                ("final_m", JsonValue::Int(m.final_m as i64)),
                ("ops", JsonValue::Int(m.ops as i64)),
                ("reads", JsonValue::Int(m.reads as i64)),
                ("accepted", JsonValue::Int(m.accepted as i64)),
                ("rejected", JsonValue::Int(m.rejected as i64)),
                ("retries", JsonValue::Int(m.retries as i64)),
                ("protocol_errors", JsonValue::Int(m.protocol_errors as i64)),
                ("repaired_edges", JsonValue::Int(m.repaired_edges as i64)),
                ("full_recolors", JsonValue::Int(m.full_recolors as i64)),
                ("checker_valid", JsonValue::Bool(m.checker_valid)),
                ("replay_equivalent", JsonValue::Bool(m.replay_equivalent)),
                ("qps", JsonValue::Num(m.qps)),
                ("p50_ms", JsonValue::Num(m.p50_ms)),
                ("p95_ms", JsonValue::Num(m.p95_ms)),
                ("p99_ms", JsonValue::Num(m.p99_ms)),
                ("repair_p999_ms", JsonValue::Num(m.repair_p999_ms)),
                ("ticks", JsonValue::Int(m.ticks as i64)),
                ("wall_ms", JsonValue::Num(m.wall_ms)),
            ])
        })
        .collect();
    let available = std::thread::available_parallelism()
        .map(|p| p.get() as i64)
        .unwrap_or(1);
    JsonValue::obj(vec![
        ("schema", JsonValue::str("edgecolor-bench/v1")),
        (
            "host",
            JsonValue::obj(vec![
                ("available_parallelism", JsonValue::Int(available)),
                ("os", JsonValue::str(std::env::consts::OS)),
                ("arch", JsonValue::str(std::env::consts::ARCH)),
            ]),
        ),
        ("experiments", JsonValue::Arr(experiments)),
        ("scale", JsonValue::Arr(scale_entries)),
        ("shard", JsonValue::Arr(shard_entries)),
        ("fault", JsonValue::Arr(fault_entries)),
        ("io", JsonValue::Arr(io_entries)),
        ("serve", JsonValue::Arr(serve_entries)),
    ])
}
