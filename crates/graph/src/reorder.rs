//! Locality-oriented node reordering: degree, BFS and reverse Cuthill–McKee
//! permutations, applied as a renumbering pass before CSR construction.
//!
//! The round engine walks the CSR in node order; when neighboring nodes sit
//! close together in that order, a round's memory traffic stays in cache.
//! The generators emit whatever order their construction happens to produce,
//! and ingested real graphs are worse. [`reorder_permutation`] computes a
//! deterministic [`NodePermutation`] for a chosen [`ReorderStrategy`] and
//! [`Graph::renumber_nodes`] applies it.
//!
//! **Edge identities survive reordering**: `renumber_nodes` keeps the edge
//! list in its original order (only the endpoint node ids are remapped), so
//! `EdgeId`s — and therefore edge colorings, stable-id tables and everything
//! else keyed on edges — remain valid on the reordered graph. The
//! permutation itself is stored in binary snapshots (section `PERM`, see
//! `docs/SNAPSHOTS.md`) so node-keyed data can always be mapped back.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

/// Which node ordering to renumber a graph into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReorderStrategy {
    /// Nodes sorted by decreasing degree (ties by original id). Groups the
    /// hubs of skewed graphs at the front of the id space.
    Degree,
    /// Breadth-first order: per connected component (components by smallest
    /// original id), BFS from the component's smallest id visiting
    /// neighbors in ascending id order.
    Bfs,
    /// Reverse Cuthill–McKee: per component, BFS from a minimum-degree
    /// start node visiting neighbors in ascending degree order, with the
    /// final order reversed — the classic bandwidth-minimizing ordering.
    Rcm,
}

impl ReorderStrategy {
    /// Stable lower-case name, used in snapshot manifests and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            ReorderStrategy::Degree => "degree",
            ReorderStrategy::Bfs => "bfs",
            ReorderStrategy::Rcm => "rcm",
        }
    }
}

/// A bijective renumbering of the nodes `0..n`, stored in both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePermutation {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<u32>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<u32>,
}

impl NodePermutation {
    /// The identity permutation on `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IndexOverflow`] if `n` exceeds the `u32`
    /// identifier space.
    pub fn identity(n: usize) -> Result<Self, GraphError> {
        if n > u32::MAX as usize + 1 {
            return Err(GraphError::IndexOverflow {
                what: "node count",
                index: n as u64,
            });
        }
        let ids: Vec<u32> = (0..n as u64).map(|v| v as u32).collect();
        Ok(NodePermutation {
            new_of_old: ids.clone(),
            old_of_new: ids,
        })
    }

    /// Builds a permutation from the `old_of_new` direction (for each new
    /// id, the original node id) — the direction snapshots store.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] if the vector is not a bijection
    /// on `0..n` (the typed error a corrupted `PERM` section decodes to).
    pub fn from_old_of_new(old_of_new: Vec<u32>) -> Result<Self, GraphError> {
        let n = old_of_new.len();
        let mut new_of_old = vec![u32::MAX; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            let slot = new_of_old
                .get_mut(old as usize)
                .ok_or_else(|| GraphError::InvalidCsr {
                    detail: format!("permutation entry {old} out of range for {n} nodes"),
                })?;
            if *slot != u32::MAX {
                return Err(GraphError::InvalidCsr {
                    detail: format!("permutation maps two new ids to old node {old}"),
                });
            }
            *slot = new as u32;
        }
        Ok(NodePermutation {
            new_of_old,
            old_of_new,
        })
    }

    /// Number of nodes the permutation acts on.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Returns `true` for the permutation on zero nodes.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// Returns `true` if the permutation maps every node to itself.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(old, &new)| old as u32 == new)
    }

    /// The new id of original node `old`.
    #[inline]
    pub fn new_id(&self, old: NodeId) -> NodeId {
        NodeId::new(self.new_of_old[old.index()] as usize)
    }

    /// The original id of renumbered node `new`.
    #[inline]
    pub fn old_id(&self, new: NodeId) -> NodeId {
        NodeId::new(self.old_of_new[new.index()] as usize)
    }

    /// The `old_of_new` direction as a slice (what snapshots serialize).
    pub fn old_of_new(&self) -> &[u32] {
        &self.old_of_new
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> NodePermutation {
        NodePermutation {
            new_of_old: self.old_of_new.clone(),
            old_of_new: self.new_of_old.clone(),
        }
    }
}

/// Computes the deterministic node permutation of `strategy` for `graph`.
///
/// The result maps the graph's current ids to the new locality-friendly
/// order; apply it with [`Graph::renumber_nodes`].
pub fn reorder_permutation(graph: &Graph, strategy: ReorderStrategy) -> NodePermutation {
    let n = graph.n();
    let order: Vec<u32> = match strategy {
        ReorderStrategy::Degree => {
            let mut nodes: Vec<u32> = (0..n).map(|v| v as u32).collect();
            nodes.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(NodeId::new(v as usize))), v));
            nodes
        }
        ReorderStrategy::Bfs => bfs_order(graph, false),
        ReorderStrategy::Rcm => {
            let mut order = bfs_order(graph, true);
            order.reverse();
            order
        }
    };
    // `order` is old ids in visit sequence, i.e. exactly `old_of_new`.
    NodePermutation::from_old_of_new(order).expect("visit orders are bijections")
}

/// BFS visit order over all components. With `by_degree` the start node of
/// each component is its minimum-degree node and neighbors are visited in
/// ascending degree (the Cuthill–McKee rule); otherwise components start at
/// their smallest id and neighbors are visited in ascending id order (the
/// adjacency's native order).
fn bfs_order(graph: &Graph, by_degree: bool) -> Vec<u32> {
    let n = graph.n();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    // Component seeds in a deterministic sequence: ascending id, or
    // ascending (degree, id) under the Cuthill–McKee rule.
    let mut seeds: Vec<usize> = (0..n).collect();
    if by_degree {
        seeds.sort_by_key(|&v| (graph.degree(NodeId::new(v)), v));
    }
    let mut scratch: Vec<(usize, usize)> = Vec::new();
    for seed in seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        queue.push_back(NodeId::new(seed));
        while let Some(v) = queue.pop_front() {
            order.push(v.index() as u32);
            if by_degree {
                scratch.clear();
                scratch.extend(
                    graph
                        .neighbors(v)
                        .iter()
                        .filter(|nb| !visited[nb.node.index()])
                        .map(|nb| (graph.degree(nb.node), nb.node.index())),
                );
                scratch.sort_unstable();
                for &(_, w) in &scratch {
                    if !visited[w] {
                        visited[w] = true;
                        queue.push_back(NodeId::new(w));
                    }
                }
            } else {
                for nb in graph.neighbors(v) {
                    if !visited[nb.node.index()] {
                        visited[nb.node.index()] = true;
                        queue.push_back(nb.node);
                    }
                }
            }
        }
    }
    order
}

impl Graph {
    /// Renumbers the nodes of the graph according to `perm`, preserving the
    /// edge order (and therefore every `EdgeId`): edge `e` of the result
    /// connects `perm.new_id(u)` and `perm.new_id(v)` where `{u, v}` are the
    /// endpoints of edge `e` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` does not act on exactly [`Graph::n`] nodes.
    pub fn renumber_nodes(&self, perm: &NodePermutation) -> Graph {
        assert_eq!(
            perm.len(),
            self.n(),
            "permutation acts on {} nodes, graph has {}",
            perm.len(),
            self.n()
        );
        let edges: Vec<(usize, usize)> = self
            .edge_list()
            .into_iter()
            .map(|(_, u, v)| (perm.new_id(u).index(), perm.new_id(v).index()))
            .collect();
        Graph::from_edges(self.n(), &edges).expect("renumbering a valid graph stays valid")
    }

    /// The mean absolute endpoint-id gap `|u - v|` over all edges — the
    /// locality figure the reordering pass optimizes (0 for an edgeless
    /// graph). Deterministic, so the IO benchmark pins it exactly.
    pub fn mean_edge_bandwidth(&self) -> f64 {
        if self.m() == 0 {
            return 0.0;
        }
        let total: u64 = self
            .edge_list()
            .iter()
            .map(|&(_, u, v)| (v.index() as u64).abs_diff(u.index() as u64))
            .sum();
        total as f64 / self.m() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn sample() -> Graph {
        // Two components: a 6-cycle with a chord, plus an isolated edge.
        Graph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (0, 3),
                (7, 8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn permutations_are_bijections() {
        let g = sample();
        for strategy in [
            ReorderStrategy::Degree,
            ReorderStrategy::Bfs,
            ReorderStrategy::Rcm,
        ] {
            let perm = reorder_permutation(&g, strategy);
            assert_eq!(perm.len(), g.n());
            let mut hit = vec![false; g.n()];
            for v in g.nodes() {
                let new = perm.new_id(v);
                assert_eq!(perm.old_id(new), v);
                assert!(!hit[new.index()]);
                hit[new.index()] = true;
            }
        }
    }

    #[test]
    fn renumber_preserves_structure_and_edge_ids() {
        let g = sample();
        for strategy in [
            ReorderStrategy::Degree,
            ReorderStrategy::Bfs,
            ReorderStrategy::Rcm,
        ] {
            let perm = reorder_permutation(&g, strategy);
            let h = g.renumber_nodes(&perm);
            assert_eq!(h.n(), g.n());
            assert_eq!(h.m(), g.m());
            assert_eq!(h.max_degree(), g.max_degree());
            assert_eq!(h.connected_components(), g.connected_components());
            for e in g.edges() {
                let (u, v) = g.endpoints(e);
                // Same EdgeId names the same edge, modulo node renumbering.
                let (a, b) = h.endpoints(e);
                let mapped = (perm.new_id(u), perm.new_id(v));
                let mapped = (mapped.0.min(mapped.1), mapped.0.max(mapped.1));
                assert_eq!((a, b), mapped);
            }
        }
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = sample();
        let perm = reorder_permutation(&g, ReorderStrategy::Degree);
        // Node 0 and 3 have degree 3, the maximum; node 0 wins the tie.
        assert_eq!(perm.old_id(NodeId::new(0)), NodeId::new(0));
        assert_eq!(perm.old_id(NodeId::new(1)), NodeId::new(3));
        // Degrees are non-increasing along the new order.
        let degs: Vec<usize> = (0..g.n())
            .map(|v| g.degree(perm.old_id(NodeId::new(v))))
            .collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn rcm_reduces_bandwidth_on_a_grid() {
        // A torus generated in row-major order already has decent locality;
        // scramble it with a degree sort (which is effectively arbitrary on
        // a regular graph) and check RCM wins it back.
        let g = generators::grid_torus(12, 11);
        let scrambled = {
            // Deterministic scramble: reverse the identity.
            let n = g.n();
            let old_of_new: Vec<u32> = (0..n as u32).rev().collect();
            let perm = NodePermutation::from_old_of_new(old_of_new).unwrap();
            // Interleave halves to break locality properly.
            let half = n / 2;
            let interleaved: Vec<u32> = (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        (i / 2) as u32
                    } else {
                        (half + i / 2) as u32
                    }
                })
                .collect();
            let perm2 = NodePermutation::from_old_of_new(interleaved).unwrap();
            g.renumber_nodes(&perm).renumber_nodes(&perm2)
        };
        let rcm = reorder_permutation(&scrambled, ReorderStrategy::Rcm);
        let reordered = scrambled.renumber_nodes(&rcm);
        assert!(
            reordered.mean_edge_bandwidth() < scrambled.mean_edge_bandwidth(),
            "RCM should reduce mean bandwidth ({} vs {})",
            reordered.mean_edge_bandwidth(),
            scrambled.mean_edge_bandwidth()
        );
    }

    #[test]
    fn from_old_of_new_rejects_non_bijections() {
        assert!(matches!(
            NodePermutation::from_old_of_new(vec![0, 0, 1]),
            Err(GraphError::InvalidCsr { .. })
        ));
        assert!(matches!(
            NodePermutation::from_old_of_new(vec![0, 5]),
            Err(GraphError::InvalidCsr { .. })
        ));
        let id = NodePermutation::identity(4).unwrap();
        assert!(id.is_identity());
        assert_eq!(id.inverse(), id);
    }
}
