//! Graph generators for the experiment suite.
//!
//! The paper targets "large networks where the node degrees might be
//! independent or almost independent of the network size", so the experiment
//! suite needs families in which the maximum degree Δ and the number of nodes
//! `n` can be varied independently. All randomized generators take an explicit
//! seed and are fully deterministic given the seed.

use crate::bipartite::BipartiteGraph;
use crate::dynamic::{DynamicGraph, UpdateBatch};
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId, Side};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashSet, VecDeque};

/// Returns a deterministic RNG for the given seed.
fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// The complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("complete graph edges are valid")
}

/// The complete bipartite graph `K_{a,b}` with sides `{0..a}` and `{a..a+b}`.
pub fn complete_bipartite(a: usize, b: usize) -> BipartiteGraph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    let g = Graph::from_edges(a + b, &edges).expect("complete bipartite edges are valid");
    let sides = (0..a + b)
        .map(|i| if i < a { Side::U } else { Side::V })
        .collect();
    BipartiteGraph::new(g, sides).expect("bipartition is valid by construction")
}

/// The path graph on `n` nodes (`n-1` edges).
pub fn path(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges).expect("path edges are valid")
}

/// The cycle graph on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges).expect("cycle edges are valid")
}

/// The star graph with one center (node 0) and `leaves` leaves.
pub fn star(leaves: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..leaves).map(|i| (0, i + 1)).collect();
    Graph::from_edges(leaves + 1, &edges).expect("star edges are valid")
}

/// The `dim`-dimensional hypercube (`2^dim` nodes, degree `dim`).
pub fn hypercube(dim: usize) -> Graph {
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim / 2);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if u > v {
                edges.push((v, u));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("hypercube edges are valid")
}

/// The `rows × cols` grid torus (wrap-around grid): every node has degree 4,
/// so the graph has exactly `2 · rows · cols` edges. Deterministic, and cheap
/// enough to build million-edge instances for the scale experiments.
///
/// # Panics
///
/// Panics if either dimension is smaller than 3 (wrap-around edges would
/// collapse into duplicates or self-loops).
pub fn grid_torus(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "a grid torus needs both dimensions at least 3"
    );
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((idx(r, c), idx(r, (c + 1) % cols)));
            edges.push((idx(r, c), idx((r + 1) % rows, c)));
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("torus edges are valid")
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("grid edges are valid")
}

/// A uniformly random labelled tree on `n` nodes (random Prüfer-like
/// attachment: node `i` attaches to a uniformly random earlier node).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        edges.push((parent, v));
    }
    Graph::from_edges(n, &edges).expect("tree edges are valid")
}

/// The Erdős–Rényi random graph `G(n, p)`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("ER edges are valid")
}

/// A random bipartite graph with `a + b` nodes where each of the `a·b`
/// possible edges is present independently with probability `p`.
pub fn random_bipartite(a: usize, b: usize, p: f64, seed: u64) -> BipartiteGraph {
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::new();
    for u in 0..a {
        for v in 0..b {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, a + v));
            }
        }
    }
    let g = Graph::from_edges(a + b, &edges).expect("random bipartite edges are valid");
    let sides = (0..a + b)
        .map(|i| if i < a { Side::U } else { Side::V })
        .collect();
    BipartiteGraph::new(g, sides).expect("bipartition is valid by construction")
}

/// A `d`-regular bipartite graph on `n + n` nodes built from `d` edge-disjoint
/// perfect matchings.
///
/// The matchings are `u ↦ π((u + o_j) mod n)` for a random permutation `π`
/// and `d` distinct random offsets `o_j`, which guarantees simplicity for any
/// `d ≤ n` while still randomizing the structure (the special case of `π`
/// being the identity is [`circulant_bipartite`]).
///
/// # Errors
///
/// Returns an error if `d > n` (no simple `d`-regular bipartite graph exists).
pub fn regular_bipartite(n: usize, d: usize, seed: u64) -> Result<BipartiteGraph, GraphError> {
    if d > n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("cannot build a {d}-regular bipartite graph with {n} nodes per side"),
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    let mut offsets: Vec<usize> = (0..n).collect();
    offsets.shuffle(&mut rng);
    offsets.truncate(d);
    let mut edges = Vec::with_capacity(n * d);
    for &offset in &offsets {
        for u in 0..n {
            edges.push((u, n + perm[(u + offset) % n]));
        }
    }
    let g = Graph::from_edges(2 * n, &edges)?;
    let sides = (0..2 * n)
        .map(|i| if i < n { Side::U } else { Side::V })
        .collect();
    BipartiteGraph::new(g, sides)
}

/// The circulant `d`-regular bipartite graph: `u_i` is connected to
/// `v_{(i + j) mod n}` for `j = 0, ..., d-1`. Deterministic.
pub fn circulant_bipartite(n: usize, d: usize) -> Result<BipartiteGraph, GraphError> {
    if d > n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!(
                "cannot build a {d}-regular circulant bipartite graph with {n} nodes per side"
            ),
        });
    }
    let mut edges = Vec::with_capacity(n * d);
    for u in 0..n {
        for j in 0..d {
            edges.push((u, n + (u + j) % n));
        }
    }
    let g = Graph::from_edges(2 * n, &edges)?;
    let sides = (0..2 * n)
        .map(|i| if i < n { Side::U } else { Side::V })
        .collect();
    BipartiteGraph::new(g, sides)
}

/// A random (approximately) `d`-regular graph via the configuration model
/// with rejection of self loops and parallel edges.
///
/// The result is simple and has maximum degree at most `d`; a small number of
/// stubs may remain unmatched, so minimum degree can be `d - O(1)`.
///
/// # Errors
///
/// Returns an error if `n·d` is odd or `d ≥ n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InfeasibleParameters {
            reason: "n*d must be even".to_string(),
        });
    }
    if d >= n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("degree {d} must be smaller than n = {n}"),
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut present: HashSet<(usize, usize)> = HashSet::new();
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);
    // Repeatedly shuffle the multiset of stubs and pair consecutive entries,
    // keeping only pairs that form new simple edges; iterate on the leftovers.
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    for _round in 0..60 {
        if stubs.len() < 2 {
            break;
        }
        stubs.shuffle(&mut rng);
        let mut leftovers = Vec::new();
        let mut i = 0;
        while i + 1 < stubs.len() {
            let (u, v) = (stubs[i], stubs[i + 1]);
            let key = (u.min(v), u.max(v));
            if u != v && !present.contains(&key) {
                present.insert(key);
                edges.push(key);
            } else {
                leftovers.push(u);
                leftovers.push(v);
            }
            i += 2;
        }
        if i < stubs.len() {
            leftovers.push(stubs[i]);
        }
        stubs = leftovers;
    }
    Graph::from_edges(n, &edges)
}

/// A Chung–Lu style power-law random graph with exponent `gamma` and maximum
/// expected degree `max_degree`.
///
/// Each potential edge `{u, v}` is present independently with probability
/// `min(1, w_u w_v / Σw)` for the expected degree sequence
/// `w_i = max_degree · (i+1)^{−1/(γ−1)}` (floored at 1). The sampler uses the
/// Miller–Hagberg geometric-skipping algorithm over the non-increasing weight
/// sequence, so generation costs `O(n + m)` expected time instead of the
/// naive `O(n²)` coin flips — million-edge instances are practical.
pub fn power_law(n: usize, gamma: f64, max_degree: usize, seed: u64) -> Graph {
    let mut rng = rng_from_seed(seed);
    // Expected degree sequence w_i = max_degree * (i+1)^{-1/(gamma-1)},
    // non-increasing in i.
    let exponent = 1.0 / (gamma - 1.0).max(1e-9);
    let weights: Vec<f64> = (0..n)
        .map(|i| (max_degree as f64) * ((i + 1) as f64).powf(-exponent))
        .map(|w| w.max(1.0))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut edges = Vec::new();
    for u in 0..n {
        // Walk candidates v = u+1, u+2, ... with geometric skips: `p` is the
        // acceptance probability of the previous candidate, an upper bound on
        // every later candidate's probability because the weights are sorted
        // non-increasingly; each skipped-to candidate is accepted with the
        // exact ratio q/p.
        let mut v = u + 1;
        if v >= n {
            break;
        }
        let mut p = (weights[u] * weights[v] / total).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let skip = (r.ln() / (1.0 - p).ln()).floor();
                if !skip.is_finite() || skip >= (n - v) as f64 {
                    break;
                }
                v += skip as usize;
            }
            let q = (weights[u] * weights[v] / total).min(1.0);
            if rng.gen::<f64>() < q / p {
                edges.push((u, v));
            }
            p = q;
            v += 1;
        }
    }
    Graph::from_edges(n, &edges).expect("power-law edges are valid")
}

/// The mutation scenario an [`UpdateStream`] plays against a dynamic graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateScenario {
    /// Steady-state churn: every batch deletes `deletes` uniformly random
    /// live edges and inserts `inserts` uniformly random non-edges. Edge
    /// count and Δ stay roughly stationary — the common serving workload.
    Churn {
        /// Edges inserted per batch.
        inserts: usize,
        /// Edges deleted per batch.
        deletes: usize,
    },
    /// Adversarial hub attack: every batch attaches `burst` new edges to the
    /// single node `hub` (plus `deletes` random deletions elsewhere), driving
    /// Δ up monotonically until the repair layer's palette budget breaks and
    /// a full recolor is forced.
    HubAttack {
        /// The node under attack.
        hub: usize,
        /// Edges attached to the hub per batch.
        burst: usize,
        /// Random background deletions per batch.
        deletes: usize,
    },
    /// Sliding window: every batch inserts `rate` random edges and then
    /// expires the oldest live edges until at most `window` remain — the
    /// time-decayed log/stream shape.
    SlidingWindow {
        /// Maximum number of live edges after each batch.
        window: usize,
        /// Edges inserted per batch.
        rate: usize,
    },
}

/// A deterministic generator of [`UpdateBatch`]es that are always valid
/// against the evolving graph.
///
/// The stream owns a private [`DynamicGraph`] mirror seeded from the initial
/// graph; every generated batch is applied to the mirror before being handed
/// out, so a consumer that starts from the same initial graph and applies the
/// batches in order sees exactly the mirror's stable-id assignment.
///
/// # Examples
///
/// ```
/// use distgraph::{generators, DynamicGraph};
/// use distgraph::generators::{UpdateScenario, UpdateStream};
///
/// let g = generators::grid_torus(4, 5);
/// let mut consumer = DynamicGraph::from_graph(g.clone());
/// let mut stream = UpdateStream::new(
///     g,
///     UpdateScenario::Churn { inserts: 3, deletes: 3 },
///     42,
/// );
/// for _ in 0..5 {
///     let batch = stream.next_batch();
///     consumer.apply(&batch).expect("stream batches are always valid");
/// }
/// assert_eq!(consumer.graph(), stream.graph());
/// ```
#[derive(Debug, Clone)]
pub struct UpdateStream {
    mirror: DynamicGraph,
    scenario: UpdateScenario,
    rng: ChaCha8Rng,
    /// Live stable ids in insertion order (oldest first), driving the
    /// sliding-window expiry policy. Only maintained for
    /// [`UpdateScenario::SlidingWindow`] — the other scenarios never expire
    /// by age, and an ever-growing ledger would leak on long churn streams.
    fifo: VecDeque<EdgeId>,
}

impl UpdateStream {
    /// Creates a stream mutating `initial` according to `scenario`,
    /// deterministically for a given `seed`.
    pub fn new(initial: Graph, scenario: UpdateScenario, seed: u64) -> Self {
        let mirror = DynamicGraph::from_graph(initial);
        let fifo = if matches!(scenario, UpdateScenario::SlidingWindow { .. }) {
            mirror.stable_edges().collect()
        } else {
            VecDeque::new()
        };
        UpdateStream {
            mirror,
            scenario,
            rng: rng_from_seed(seed),
            fifo,
        }
    }

    /// The current state of the mirrored graph (after all batches handed out
    /// so far).
    pub fn graph(&self) -> &Graph {
        self.mirror.graph()
    }

    /// The mirrored dynamic graph (stable-id view).
    pub fn dynamic(&self) -> &DynamicGraph {
        &self.mirror
    }

    /// Picks `count` distinct live stable ids uniformly at random.
    fn random_live_edges(&mut self, count: usize) -> Vec<EdgeId> {
        let m = self.mirror.m();
        let count = count.min(m);
        let mut picked = HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        // Rejection sampling over internal ids; bounded because count ≤ m.
        while out.len() < count {
            let internal = EdgeId::new(self.rng.gen_range(0..m));
            if picked.insert(internal) {
                out.push(self.mirror.stable_id(internal));
            }
        }
        out
    }

    /// Tries to pick `count` random non-edges; gives up on a pair after a
    /// bounded number of rejections so dense graphs cannot hang the stream.
    fn random_non_edges(&mut self, count: usize) -> Vec<(usize, usize)> {
        let n = self.mirror.n();
        let mut fresh: HashSet<(usize, usize)> = HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0usize;
        let budget = 30 * count + 100;
        while out.len() < count && attempts < budget {
            attempts += 1;
            let u = self.rng.gen_range(0..n);
            let v = self.rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if self
                .mirror
                .graph()
                .has_edge(NodeId::new(key.0), NodeId::new(key.1))
                || fresh.contains(&key)
            {
                continue;
            }
            fresh.insert(key);
            out.push(key);
        }
        out
    }

    /// Generates the next batch, applies it to the internal mirror, and
    /// returns it. The batch is always valid for a consumer graph that has
    /// applied every earlier batch of this stream.
    pub fn next_batch(&mut self) -> UpdateBatch {
        let batch = match self.scenario {
            UpdateScenario::Churn { inserts, deletes } => UpdateBatch {
                delete: self.random_live_edges(deletes),
                insert: self.random_non_edges(inserts),
            },
            UpdateScenario::HubAttack {
                hub,
                burst,
                deletes,
            } => {
                let n = self.mirror.n();
                let hub = hub.min(n.saturating_sub(1));
                let delete = self.random_live_edges(deletes);
                let doomed: HashSet<EdgeId> = delete.iter().copied().collect();
                let mut insert = Vec::with_capacity(burst);
                let mut fresh: HashSet<usize> = HashSet::new();
                let mut attempts = 0usize;
                while insert.len() < burst && attempts < 30 * burst + 100 {
                    attempts += 1;
                    let v = self.rng.gen_range(0..n);
                    if v == hub || fresh.contains(&v) {
                        continue;
                    }
                    // Respect edges that survive this batch's deletions.
                    if let Some(e) = self
                        .mirror
                        .graph()
                        .edge_between(NodeId::new(hub), NodeId::new(v))
                    {
                        if !doomed.contains(&self.mirror.stable_id(e)) {
                            continue;
                        }
                    }
                    fresh.insert(v);
                    insert.push((hub, v));
                }
                UpdateBatch { delete, insert }
            }
            UpdateScenario::SlidingWindow { window, rate } => {
                let insert = self.random_non_edges(rate);
                let live_after = self.mirror.m() + insert.len();
                let mut delete = Vec::new();
                let mut excess = live_after.saturating_sub(window);
                while excess > 0 {
                    match self.fifo.pop_front() {
                        Some(stable) if self.mirror.is_live(stable) => {
                            delete.push(stable);
                            excess -= 1;
                        }
                        Some(_) => {} // expired out of band (not in this scenario, but safe)
                        None => break,
                    }
                }
                UpdateBatch { delete, insert }
            }
        };
        let diff = self
            .mirror
            .apply(&batch)
            .expect("stream batches are valid by construction");
        if matches!(self.scenario, UpdateScenario::SlidingWindow { .. }) {
            self.fifo.extend(diff.inserted.iter().copied());
        }
        batch
    }
}

/// The graph families used by the experiment harness (experiment E9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Random `d`-regular bipartite graphs.
    RegularBipartite,
    /// Erdős–Rényi `G(n, p)` graphs.
    ErdosRenyi,
    /// Chung–Lu power-law graphs.
    PowerLaw,
    /// Hypercubes.
    Hypercube,
    /// Uniformly random trees.
    RandomTree,
    /// Two-dimensional grids.
    Grid,
    /// Wrap-around grids (4-regular tori).
    GridTorus,
}

impl Family {
    /// All families, in a fixed order.
    pub fn all() -> [Family; 7] {
        [
            Family::RegularBipartite,
            Family::ErdosRenyi,
            Family::PowerLaw,
            Family::Hypercube,
            Family::RandomTree,
            Family::Grid,
            Family::GridTorus,
        ]
    }

    /// A short human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Family::RegularBipartite => "regular-bipartite",
            Family::ErdosRenyi => "erdos-renyi",
            Family::PowerLaw => "power-law",
            Family::Hypercube => "hypercube",
            Family::RandomTree => "random-tree",
            Family::Grid => "grid",
            Family::GridTorus => "grid-torus",
        }
    }

    /// Generates a member of the family sized so that the maximum degree is
    /// close to `target_delta` and the node count close to `target_n`.
    pub fn generate(&self, target_n: usize, target_delta: usize, seed: u64) -> Graph {
        match self {
            Family::RegularBipartite => {
                let per_side = (target_n / 2).max(target_delta.max(2));
                regular_bipartite(per_side, target_delta.max(1), seed)
                    .expect("feasible by construction")
                    .into_parts()
                    .0
            }
            Family::ErdosRenyi => {
                let n = target_n.max(4);
                let p = (target_delta as f64 / n as f64).min(1.0);
                erdos_renyi(n, p, seed)
            }
            Family::PowerLaw => power_law(target_n.max(4), 2.5, target_delta.max(2), seed),
            Family::Hypercube => {
                let dim = target_delta.clamp(1, 16);
                hypercube(dim)
            }
            Family::RandomTree => random_tree(target_n.max(2), seed),
            Family::Grid => {
                let side = (target_n as f64).sqrt().ceil() as usize;
                grid(side.max(2), side.max(2))
            }
            Family::GridTorus => {
                let side = (target_n as f64).sqrt().ceil() as usize;
                grid_torus(side.max(3), side.max(3))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn complete_graph_counts() {
        let g = complete_graph(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.max_edge_degree(), 8);
    }

    #[test]
    fn complete_bipartite_counts() {
        let bg = complete_bipartite(3, 4);
        assert_eq!(bg.graph().n(), 7);
        assert_eq!(bg.graph().m(), 12);
        assert_eq!(bg.u_count(), 3);
        assert_eq!(bg.v_count(), 4);
    }

    #[test]
    fn path_cycle_star() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(cycle(5).max_degree(), 2);
        let s = star(7);
        assert_eq!(s.max_degree(), 7);
        assert_eq!(s.degree(NodeId::new(0)), 7);
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn cycle_too_small_panics() {
        cycle(2);
    }

    #[test]
    fn hypercube_regularity() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.bipartition().is_some());
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let g = random_tree(64, 7);
        assert_eq!(g.m(), 63);
        assert_eq!(g.connected_components(), 1);
        assert!(g.bipartition().is_some());
    }

    #[test]
    fn erdos_renyi_determinism() {
        let a = erdos_renyi(40, 0.2, 11);
        let b = erdos_renyi(40, 0.2, 11);
        let c = erdos_renyi(40, 0.2, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        assert_eq!(erdos_renyi(10, 0.0, 1).m(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn regular_bipartite_is_regular() {
        let bg = regular_bipartite(16, 5, 3).unwrap();
        let g = bg.graph();
        assert_eq!(g.n(), 32);
        assert_eq!(g.m(), 16 * 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn regular_bipartite_rejects_excess_degree() {
        assert!(regular_bipartite(4, 5, 0).is_err());
    }

    #[test]
    fn circulant_bipartite_is_regular_and_deterministic() {
        let a = circulant_bipartite(10, 4).unwrap();
        let b = circulant_bipartite(10, 4).unwrap();
        assert_eq!(a, b);
        for v in a.graph().nodes() {
            assert_eq!(a.graph().degree(v), 4);
        }
    }

    #[test]
    fn random_regular_close_to_regular() {
        let g = random_regular(50, 6, 5).unwrap();
        assert!(g.max_degree() <= 6);
        // at least 95% of the target edges should be realized
        assert!(g.m() * 100 >= 50 * 6 / 2 * 95);
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        assert!(random_regular(5, 3, 0).is_err()); // odd n*d
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
    }

    #[test]
    fn power_law_respects_max_degree_roughly() {
        let g = power_law(200, 2.5, 20, 9);
        assert!(g.max_degree() <= 200);
        assert!(g.m() > 0);
    }

    #[test]
    fn power_law_is_deterministic_and_skewed() {
        let a = power_law(300, 2.5, 24, 5);
        let b = power_law(300, 2.5, 24, 5);
        assert_eq!(a, b);
        let c = power_law(300, 2.5, 24, 6);
        assert_ne!(a, c);
        // The heaviest node (index 0) should out-degree the lightest ones.
        let head = a.degree(NodeId::new(0));
        let tail_max = (250..300).map(|v| a.degree(NodeId::new(v))).max().unwrap();
        assert!(
            head > tail_max,
            "head degree {head} not above tail degree {tail_max}"
        );
    }

    #[test]
    fn power_law_edge_count_tracks_expectation() {
        // Expected m = Σ_{u<v} min(1, w_u w_v / Σw) ≈ Σw / 2 when no pair
        // saturates; check the sampled count is within a loose factor.
        let n = 2000;
        let g = power_law(n, 2.5, 16, 3);
        let exponent = 1.0 / 1.5;
        let total: f64 = (0..n)
            .map(|i| (16.0 * ((i + 1) as f64).powf(-exponent)).max(1.0))
            .sum();
        let expected = total / 2.0;
        assert!(
            (g.m() as f64) > expected * 0.6 && (g.m() as f64) < expected * 1.6,
            "m = {} far from expectation {expected:.0}",
            g.m()
        );
    }

    #[test]
    fn grid_torus_is_four_regular_with_exact_edge_count() {
        let g = grid_torus(5, 7);
        assert_eq!(g.n(), 35);
        assert_eq!(g.m(), 2 * 35);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        // Smallest legal torus.
        let t = grid_torus(3, 3);
        assert_eq!(t.m(), 18);
        assert_eq!(t.max_degree(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn grid_torus_rejects_thin_dimensions() {
        grid_torus(2, 10);
    }

    #[test]
    fn churn_stream_keeps_edge_count_roughly_stationary() {
        let g = grid_torus(6, 6);
        let m0 = g.m();
        let mut stream = UpdateStream::new(
            g,
            UpdateScenario::Churn {
                inserts: 4,
                deletes: 4,
            },
            7,
        );
        for _ in 0..20 {
            let batch = stream.next_batch();
            assert!(batch.delete.len() <= 4);
            assert!(batch.insert.len() <= 4);
        }
        let m = stream.graph().m();
        assert!(
            m.abs_diff(m0) <= 20 * 4,
            "churn drifted too far: {m0} -> {m}"
        );
        stream.dynamic().validate().unwrap();
    }

    #[test]
    fn hub_attack_grows_the_hub_degree() {
        let g = grid_torus(8, 8);
        let before = g.degree(NodeId::new(0));
        let mut stream = UpdateStream::new(
            g,
            UpdateScenario::HubAttack {
                hub: 0,
                burst: 5,
                deletes: 1,
            },
            3,
        );
        for _ in 0..6 {
            stream.next_batch();
        }
        let after = stream.graph().degree(NodeId::new(0));
        assert!(
            after > before + 10,
            "hub degree only went {before} -> {after}"
        );
        assert_eq!(stream.graph().max_degree(), after);
    }

    #[test]
    fn sliding_window_bounds_the_live_edge_count() {
        let g = grid_torus(5, 5); // 50 edges
        let mut stream = UpdateStream::new(
            g,
            UpdateScenario::SlidingWindow {
                window: 40,
                rate: 6,
            },
            11,
        );
        for _ in 0..15 {
            stream.next_batch();
            assert!(stream.graph().m() <= 40);
        }
        // The window stays saturated once reached.
        assert!(stream.graph().m() >= 30);
    }

    #[test]
    fn update_streams_are_deterministic_and_replayable() {
        let make = || {
            UpdateStream::new(
                grid_torus(5, 7),
                UpdateScenario::Churn {
                    inserts: 3,
                    deletes: 2,
                },
                99,
            )
        };
        let (mut a, mut b) = (make(), make());
        let mut consumer = crate::dynamic::DynamicGraph::from_graph(grid_torus(5, 7));
        for _ in 0..12 {
            let ba = a.next_batch();
            let bb = b.next_batch();
            assert_eq!(ba, bb);
            consumer.apply(&ba).expect("stream batches are valid");
        }
        assert_eq!(consumer.graph(), a.graph());
    }

    #[test]
    fn family_generate_produces_graphs() {
        for family in Family::all() {
            let g = family.generate(64, 6, 42);
            assert!(g.n() > 0, "family {} produced empty graph", family.name());
            assert!(!family.name().is_empty());
        }
    }
}
