//! Wall-clock cost of the generalized token dropping solver (experiment E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edgecolor::token_dropping::{solve_distributed, solve_sequential, TokenGameParams};
use edgecolor_bench::layered_token_game;

fn bench_token_dropping(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_dropping");
    group.sample_size(10);
    for &k in &[64usize, 256, 1024] {
        let game = layered_token_game(6, 8, k);
        let params = TokenGameParams {
            alpha: vec![4; game.n],
            delta: 4,
        };
        group.bench_with_input(BenchmarkId::new("distributed", k), &k, |b, _| {
            b.iter(|| solve_distributed(&game, &params))
        });
        group.bench_with_input(BenchmarkId::new("sequential", k), &k, |b, _| {
            b.iter(|| solve_sequential(&game, |_, _| 0.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_token_dropping);
criterion_main!(benches);
