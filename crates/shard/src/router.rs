//! The batched cross-shard message router.
//!
//! During a sharded round every shard evaluates its nodes locally; messages
//! whose destination lives in another shard are handed to the
//! [`ShardRouter`], which coalesces them into **one buffer per (source,
//! destination) shard pair per round** — the unit a distributed deployment
//! would ship as a single RPC/batch. Draining a round returns, per
//! destination shard, the source buffers in ascending source-shard order, so
//! a consumer that needs the global sender order (the `distsim` delivery
//! path) can reconstruct it deterministically.

use serde::{Deserialize, Serialize};

/// Cumulative cross-shard traffic counters of a [`ShardRouter`].
///
/// These are the numbers behind the `SHARD` bench experiment's
/// `cross_bytes_per_round` column (see `docs/BENCH_SCHEMA.md`): only
/// messages that actually cross a shard boundary are counted, shard-internal
/// deliveries are free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RouterStats {
    /// Number of rounds routed (one per [`ShardRouter::drain_round`]).
    pub rounds: u64,
    /// Total messages that crossed a shard boundary.
    pub cross_messages: u64,
    /// Total payload bits that crossed a shard boundary.
    pub cross_bits: u64,
}

impl RouterStats {
    /// Adds another stats block (used when folding per-round routers into a
    /// long-lived accumulator).
    pub fn absorb(&mut self, other: &RouterStats) {
        self.rounds += other.rounds;
        self.cross_messages += other.cross_messages;
        self.cross_bits += other.cross_bits;
    }

    /// Average payload bytes crossing shard boundaries per routed round.
    pub fn bytes_per_round(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.cross_bits as f64 / 8.0 / self.rounds as f64
    }
}

/// A batched cross-shard exchange for `k` shards, generic over the routed
/// item type `T` (the execution layer routes `(destination node, inbox
/// entry)` pairs; the router itself never inspects the payload).
///
/// One buffer exists per **ordered** shard pair `(src, dst)` with
/// `src != dst`; pushes append in call order, so a source that feeds the
/// router in its local sender order preserves that order inside each buffer.
#[derive(Debug, Clone)]
pub struct ShardRouter<T> {
    shards: usize,
    /// `buffers[src * shards + dst]`; the `src == dst` diagonal stays empty.
    buffers: Vec<Vec<T>>,
    stats: RouterStats,
    round_bits: u64,
    round_messages: u64,
}

impl<T> ShardRouter<T> {
    /// A router for `shards ≥ 1` shards with all buffers empty.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut buffers = Vec::new();
        buffers.resize_with(shards * shards, Vec::new);
        ShardRouter {
            shards,
            buffers,
            stats: RouterStats::default(),
            round_bits: 0,
            round_messages: 0,
        }
    }

    /// Number of shards the router serves.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Enqueues one cross-shard item from shard `src` to shard `dst`,
    /// accounting `bits` payload bits of cross-shard traffic.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (shard-internal messages must be delivered
    /// locally, they never enter the router) or either index is out of range.
    pub fn push(&mut self, src: usize, dst: usize, item: T, bits: u64) {
        assert!(
            src != dst,
            "shard-internal message routed through the ShardRouter"
        );
        assert!(src < self.shards && dst < self.shards, "shard out of range");
        self.buffers[src * self.shards + dst].push(item);
        self.round_bits += bits;
        self.round_messages += 1;
    }

    /// Ends the round: folds the round's traffic into [`RouterStats`] and
    /// returns the coalesced buffers as `out[dst][src]` — for every
    /// destination shard, the buffers of all source shards in ascending
    /// source order (the `src == dst` entry is always empty). The router is
    /// left empty, ready for the next round.
    pub fn drain_round(&mut self) -> Vec<Vec<Vec<T>>> {
        self.stats.rounds += 1;
        self.stats.cross_messages += self.round_messages;
        self.stats.cross_bits += self.round_bits;
        self.round_bits = 0;
        self.round_messages = 0;
        let k = self.shards;
        let mut flat = std::mem::take(&mut self.buffers);
        self.buffers.resize_with(k * k, Vec::new);
        // Transpose src-major storage into dst-major output.
        let mut out: Vec<Vec<Vec<T>>> = Vec::with_capacity(k);
        for _ in 0..k {
            out.push(Vec::with_capacity(k));
        }
        for (idx, buffer) in flat.drain(..).enumerate() {
            let dst = idx % k;
            out[dst].push(buffer);
        }
        out
    }

    /// Ends the round like [`ShardRouter::drain_round`], but without
    /// allocating: `f(dst, src, buffer)` is invoked for every ordered shard
    /// pair in destination-major, ascending-source order (the `src == dst`
    /// diagonal is skipped), and each buffer is cleared in place afterwards
    /// with its capacity retained, so a long-lived router reaches a steady
    /// state with zero per-round allocation. Returns this round's traffic
    /// delta (`rounds == 1`), which is also folded into the cumulative
    /// [`ShardRouter::stats`].
    pub fn drain_round_with(
        &mut self,
        mut f: impl FnMut(usize, usize, &mut Vec<T>),
    ) -> RouterStats {
        let delta = RouterStats {
            rounds: 1,
            cross_messages: self.round_messages,
            cross_bits: self.round_bits,
        };
        self.stats.absorb(&delta);
        self.round_bits = 0;
        self.round_messages = 0;
        let k = self.shards;
        for dst in 0..k {
            for src in 0..k {
                if src == dst {
                    continue;
                }
                let buffer = &mut self.buffers[src * k + dst];
                f(dst, src, buffer);
                buffer.clear();
            }
        }
        delta
    }

    /// Cumulative traffic statistics over all drained rounds.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_items_per_pair_in_push_order() {
        let mut router: ShardRouter<u32> = ShardRouter::new(3);
        router.push(0, 1, 10, 8);
        router.push(2, 1, 20, 8);
        router.push(0, 1, 11, 8);
        router.push(1, 0, 30, 16);
        let out = router.drain_round();
        assert_eq!(out.len(), 3);
        // Destination 1 sees source 0's buffer before source 2's.
        assert_eq!(out[1][0], vec![10, 11]);
        assert!(out[1][1].is_empty());
        assert_eq!(out[1][2], vec![20]);
        assert_eq!(out[0][1], vec![30]);
        assert!(out[2].iter().all(Vec::is_empty));
    }

    #[test]
    fn stats_accumulate_across_rounds() {
        let mut router: ShardRouter<()> = ShardRouter::new(2);
        router.push(0, 1, (), 32);
        router.push(1, 0, (), 32);
        router.drain_round();
        router.push(0, 1, (), 64);
        router.drain_round();
        router.drain_round(); // an idle round still counts as a round
        let stats = router.stats();
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.cross_messages, 3);
        assert_eq!(stats.cross_bits, 128);
        assert!((stats.bytes_per_round() - 128.0 / 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn drained_router_is_reusable() {
        let mut router: ShardRouter<u8> = ShardRouter::new(2);
        router.push(0, 1, 1, 8);
        let first = router.drain_round();
        assert_eq!(first[1][0], vec![1]);
        router.push(0, 1, 2, 8);
        let second = router.drain_round();
        assert_eq!(second[1][0], vec![2]);
    }

    #[test]
    fn drain_round_with_matches_drain_round_and_reports_the_delta() {
        let mut router: ShardRouter<u32> = ShardRouter::new(3);
        router.push(0, 1, 10, 8);
        router.push(2, 1, 20, 8);
        router.push(0, 1, 11, 8);
        let mut seen: Vec<(usize, usize, Vec<u32>)> = Vec::new();
        let delta = router.drain_round_with(|dst, src, buffer| {
            seen.push((dst, src, buffer.clone()));
        });
        assert_eq!(delta.rounds, 1);
        assert_eq!(delta.cross_messages, 3);
        assert_eq!(delta.cross_bits, 24);
        // Destination-major, ascending-source order, diagonal skipped.
        let pairs: Vec<(usize, usize)> = seen.iter().map(|(d, s, _)| (*d, *s)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]);
        let to_1: Vec<u32> = seen
            .iter()
            .filter(|(d, _, _)| *d == 1)
            .flat_map(|(_, _, b)| b.clone())
            .collect();
        assert_eq!(to_1, vec![10, 11, 20]);
        // Buffers are cleared in place; the next round starts empty but the
        // cumulative stats keep accumulating.
        let second = router.drain_round_with(|_, _, buffer| assert!(buffer.is_empty()));
        assert_eq!(second.cross_messages, 0);
        assert_eq!(router.stats().rounds, 2);
        assert_eq!(router.stats().cross_messages, 3);
    }

    #[test]
    fn absorb_folds_stats() {
        let mut a = RouterStats {
            rounds: 1,
            cross_messages: 2,
            cross_bits: 16,
        };
        a.absorb(&RouterStats {
            rounds: 2,
            cross_messages: 3,
            cross_bits: 8,
        });
        assert_eq!(a.rounds, 3);
        assert_eq!(a.cross_messages, 5);
        assert_eq!(a.cross_bits, 24);
        assert_eq!(RouterStats::default().bytes_per_round(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shard-internal")]
    fn internal_messages_are_rejected() {
        let mut router: ShardRouter<u8> = ShardRouter::new(2);
        router.push(1, 1, 0, 8);
    }
}
