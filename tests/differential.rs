//! Differential test battery: independent implementations must agree with
//! the audited checkers, and the dynamic recoloring subsystem must be
//! checker-equivalent to recoloring from scratch.
//!
//! Two layers of cross-checking:
//!
//! 1. On a seeded generator matrix, the paper's LOCAL algorithm and every
//!    baseline (sequential greedy, Misra–Gries, distributed
//!    greedy-by-classes) are funneled through the *same*
//!    `edgecolor_verify` checkers with their respective palette bounds — a
//!    disagreement means either an algorithm or a checker regressed.
//! 2. After N random mutation batches, the locally repaired coloring and a
//!    from-scratch `color_edges_local` run on the final graph must pass the
//!    identical checker suite (properness, completeness, palette budget),
//!    and repairs must be **bit-identical** across
//!    `ExecutionPolicy::Sequential`, `Parallel{2,8}` and `Sharded{2,4,8}`.
//! 3. On the seeded generator matrix, full colorings produced under
//!    `Sharded{2,4,8}` (the partitioned execution substrate of
//!    `crates/shard`) must be bit-identical to the sequential reference.

use distgraph::generators::{self, Family, UpdateScenario, UpdateStream};
use distgraph::{DynamicGraph, Graph};
use distsim::{ExecutionPolicy, IdAssignment, Model};
use edgecolor::{color_edges_local, default_palette, ColoringParams, Recoloring};
use edgecolor_baselines as baselines;
use edgecolor_verify::{
    check_complete, check_delta, check_palette_size, check_proper_edge_coloring,
};
use proptest::prelude::*;

/// The seeded generator matrix shared by the differential properties.
fn matrix() -> Vec<(String, Graph)> {
    let mut graphs = Vec::new();
    for family in [
        Family::RegularBipartite,
        Family::ErdosRenyi,
        Family::PowerLaw,
        Family::GridTorus,
        Family::RandomTree,
    ] {
        for seed in [3u64, 17] {
            let g = family.generate(96, 6, seed);
            if g.m() > 0 {
                graphs.push((format!("{}(seed {seed})", family.name()), g));
            }
        }
    }
    graphs
}

#[test]
fn all_implementations_pass_the_same_checkers() {
    let params = ColoringParams::new(0.5);
    for (name, g) in matrix() {
        let ids = IdAssignment::scattered(g.n(), 5);
        let delta = g.max_degree();
        let two_delta = default_palette(delta);

        let ours = color_edges_local(&g, &ids, &params)
            .unwrap_or_else(|e| panic!("{name}: LOCAL coloring failed: {e}"));
        let greedy = baselines::greedy_sequential(&g);
        let vizing = baselines::misra_gries(&g);
        let classes = baselines::greedy_by_classes(&g, &ids, Model::Local);

        // The same checker suite judges every implementation.
        for (algo, coloring, palette) in [
            ("ours-local", &ours.coloring, two_delta),
            ("greedy-sequential", &greedy, two_delta),
            ("misra-gries", &vizing, delta + 1),
            ("greedy-by-classes", &classes.coloring, two_delta),
        ] {
            let proper = check_proper_edge_coloring(&g, coloring);
            assert!(proper.is_ok(), "{name}/{algo}: improper: {proper}");
            let complete = check_complete(&g, coloring);
            assert!(complete.is_ok(), "{name}/{algo}: incomplete: {complete}");
            let budget = check_palette_size(coloring, palette);
            assert!(budget.is_ok(), "{name}/{algo}: palette: {budget}");
        }
    }
}

/// Full colorings on the seeded generator matrix are bit-identical between
/// the sequential engine and the sharded substrate at 2, 4 and 8 shards —
/// the differential guarantee the SHARD bench experiment relies on.
#[test]
fn sharded_colorings_match_sequential_on_the_matrix() {
    let params = ColoringParams::new(0.5);
    for (name, g) in matrix() {
        let ids = IdAssignment::scattered(g.n(), 5);
        let reference = color_edges_local(&g, &ids, &params)
            .unwrap_or_else(|e| panic!("{name}: LOCAL coloring failed: {e}"));
        for shards in [2usize, 4, 8] {
            let sharded = params.with_policy(ExecutionPolicy::sharded(shards, 2));
            let outcome = color_edges_local(&g, &ids, &sharded)
                .unwrap_or_else(|e| panic!("{name}: sharded({shards}) failed: {e}"));
            assert_eq!(
                reference.coloring, outcome.coloring,
                "{name}: sharded({shards}) coloring diverged"
            );
            assert_eq!(
                reference.metrics, outcome.metrics,
                "{name}: sharded({shards}) metrics diverged"
            );
        }
    }
}

/// Runs a whole dynamic session (initial coloring + `batches` repairs) under
/// one execution policy and returns the final state.
fn run_dynamic_session(
    initial: &Graph,
    scenario: UpdateScenario,
    stream_seed: u64,
    batches: usize,
    policy: ExecutionPolicy,
) -> (DynamicGraph, Recoloring, usize) {
    let params = ColoringParams::new(0.5).with_policy(policy);
    let ids = IdAssignment::scattered(initial.n(), 9);
    let mut dg = DynamicGraph::from_graph(initial.clone());
    let (mut rec, _) = Recoloring::color_initial(&dg, &ids, &params).expect("valid instance");
    let mut stream = UpdateStream::new(initial.clone(), scenario, stream_seed);
    let mut repaired_total = 0usize;
    for _ in 0..batches {
        let batch = stream.next_batch();
        let diff = dg.apply(&batch).expect("stream batches are valid");
        let report = rec.repair(&dg, &diff, &ids, &params).expect("repairable");
        repaired_total += report.repaired_edges;
        // Every repair is incrementally certified before the next batch.
        check_delta(dg.graph(), rec.coloring(), &report.touched, rec.palette()).assert_ok();
    }
    assert_eq!(dg.graph(), stream.graph(), "consumer diverged from stream");
    (dg, rec, repaired_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn dynamic_repair_is_checker_equivalent_to_from_scratch(
        (rows, cols, kind, batches, seed) in (
            4usize..7,
            4usize..7,
            0u8..3,
            3usize..8,
            0u64..1000,
        )
    ) {
        let initial = generators::grid_torus(rows, cols);
        let window = initial.m();
        let scenario = match kind {
            0 => UpdateScenario::Churn { inserts: 4, deletes: 4 },
            1 => UpdateScenario::SlidingWindow { window, rate: 5 },
            _ => UpdateScenario::HubAttack { hub: 0, burst: 3, deletes: 1 },
        };

        let (dg, rec, _) = run_dynamic_session(
            &initial,
            scenario,
            seed,
            batches,
            ExecutionPolicy::Sequential,
        );
        let graph = dg.graph();

        // The maintained coloring passes the full checker suite...
        check_proper_edge_coloring(graph, rec.coloring()).assert_ok();
        check_complete(graph, rec.coloring()).assert_ok();
        check_palette_size(rec.coloring(), rec.palette()).assert_ok();

        // ...exactly like a from-scratch recoloring of the final graph
        // (checker equivalence, not color-for-color equality: the budgets
        // differ only in that repair may still hold pre-mutation headroom).
        let params = ColoringParams::new(0.5);
        let ids = IdAssignment::scattered(graph.n(), 9);
        let scratch = color_edges_local(graph, &ids, &params).expect("valid instance");
        let scratch_palette = default_palette(graph.max_degree());
        check_proper_edge_coloring(graph, &scratch.coloring).assert_ok();
        check_complete(graph, &scratch.coloring).assert_ok();
        check_palette_size(&scratch.coloring, scratch_palette).assert_ok();
        // The dynamic budget is never looser than the historical maximum Δ
        // would justify, and never tighter than the from-scratch budget.
        prop_assert!(rec.palette() >= scratch_palette);
    }

    #[test]
    fn dynamic_repair_is_bit_identical_across_execution_policies(
        (rows, cols, kind, seed) in (4usize..6, 4usize..7, 0u8..2, 0u64..1000)
    ) {
        let initial = generators::grid_torus(rows, cols);
        let scenario = match kind {
            0 => UpdateScenario::Churn { inserts: 3, deletes: 3 },
            _ => UpdateScenario::HubAttack { hub: 0, burst: 3, deletes: 0 },
        };
        let batches = 4;
        let (_, sequential, repaired) = run_dynamic_session(
            &initial,
            scenario,
            seed,
            batches,
            ExecutionPolicy::Sequential,
        );
        for policy in [
            ExecutionPolicy::parallel(2),
            ExecutionPolicy::parallel(8),
            ExecutionPolicy::sharded(2, 1),
            ExecutionPolicy::sharded(4, 2),
            ExecutionPolicy::sharded(8, 2),
        ] {
            let (_, session, session_repaired) = run_dynamic_session(
                &initial,
                scenario,
                seed,
                batches,
                policy,
            );
            // (The compat prop_assert_eq! takes no custom message; the
            // policy is part of the strategy inputs echoed on failure.)
            prop_assert_eq!(session.coloring(), sequential.coloring());
            prop_assert_eq!(session.palette(), sequential.palette());
            prop_assert_eq!(session_repaired, repaired);
        }
    }
}
