//! Property-based tests for the core algorithmic invariants of the paper:
//! the token dropping game (Section 4), balanced orientations (Section 5),
//! defective 2-edge colorings (Corollary 5.7) and the Linial coloring.

use distgraph::{BipartiteGraph, Graph, NodeId};
use distsim::{IdAssignment, Model, Network};
use edgecolor::balanced_orientation::{compute_balanced_orientation, measure_required_beta};
use edgecolor::defective_edge::{defective_two_edge_coloring, measure_defect_ratio};
use edgecolor::linial::linial_coloring;
use edgecolor::token_dropping::{
    check_invariants, check_theorem_4_3, solve_distributed, solve_sequential, TokenGame,
    TokenGameParams,
};
use edgecolor::{OrientationParams, ParamProfile};
use edgecolor_verify::{check_balanced_orientation, check_proper_vertex_coloring};
use proptest::prelude::*;

/// A random directed graph together with a token capacity and initial tokens.
fn arb_token_game() -> impl Strategy<Value = (TokenGame, usize)> {
    (4usize..24, 1usize..12, 1usize..5).prop_flat_map(|(n, k, delta)| {
        let arcs = proptest::collection::vec((0..n, 0..n), 0..(4 * n));
        let tokens = proptest::collection::vec(0..=k, n);
        (arcs, tokens).prop_map(move |(raw_arcs, tokens)| {
            let mut seen = std::collections::HashSet::new();
            let mut arcs = Vec::new();
            for (a, b) in raw_arcs {
                if a != b && seen.insert((a, b)) {
                    arcs.push((NodeId::new(a), NodeId::new(b)));
                }
            }
            (TokenGame::new(n, arcs, k, tokens), delta.min(k))
        })
    })
}

/// A random bipartite graph (possibly irregular).
fn arb_bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (3usize..14, 3usize..14).prop_flat_map(|(a, b)| {
        proptest::collection::vec((0..a, 0..b), 1..(2 * (a + b))).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if seen.insert((u, v)) {
                    edges.push((u, a + v));
                }
            }
            let g = Graph::from_edges(a + b, &edges).expect("valid bipartite edges");
            BipartiteGraph::from_graph(g).expect("bipartite by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Section 4: the distributed token dropping solver conserves tokens,
    /// never exceeds the capacity, moves at most one token per arc, and
    /// every surviving active arc satisfies the Theorem 4.3 inequality —
    /// on arbitrary directed graphs, including ones with cycles.
    #[test]
    fn token_dropping_invariants_hold_on_arbitrary_digraphs((game, delta) in arb_token_game()) {
        let params = TokenGameParams { alpha: vec![delta.max(1); game.n], delta: delta.max(1) };
        let result = solve_distributed(&game, &params);
        prop_assert!(check_invariants(&game, &result));
        prop_assert!(check_theorem_4_3(&game, &params, &result).is_empty());
        prop_assert_eq!(result.rounds, 3 * result.phases);
    }

    /// The sequential reference play reaches a stable state: every arc that
    /// kept its token-capacity headroom satisfies the slack condition.
    #[test]
    fn sequential_token_dropping_reaches_stability((game, _delta) in arb_token_game()) {
        let sigma = 1.0;
        let result = solve_sequential(&game, |_, _| sigma);
        prop_assert!(check_invariants(&game, &result));
        for (i, &(u, v)) in game.arcs.iter().enumerate() {
            if !result.moved[i] {
                let tu = result.tokens[u.index()] as f64;
                let tv = result.tokens[v.index()] as f64;
                prop_assert!(tu == 0.0 || tv as usize == game.k || tu <= tv + sigma);
            }
        }
    }

    /// Section 5: the orientation algorithm orients every edge and satisfies
    /// Definition 5.2 with the profile's β (η = 0).
    #[test]
    fn balanced_orientation_satisfies_definition_5_2(bg in arb_bipartite()) {
        let graph = bg.graph();
        let params = OrientationParams::new(0.5, ParamProfile::Practical);
        let eta = vec![0.0; graph.m()];
        let mut net = Network::new(graph, Model::Local);
        let result = compute_balanced_orientation(&bg, &eta, &params, &mut net);
        prop_assert_eq!(result.orientation.oriented_count(), graph.m());
        prop_assert!(result.orientation.check_consistency(graph));
        check_balanced_orientation(&bg, &result.orientation, |_| 0.0, result.eps, result.beta, true)
            .assert_ok();
        // The measured slack reported by the algorithm is consistent with the
        // checker: re-measuring gives the same value.
        let remeasured = measure_required_beta(&bg, &result.orientation, &eta, result.eps);
        prop_assert!((remeasured - result.measured_beta).abs() < 1e-9);
        prop_assert!(remeasured <= result.beta + 1e-9);
    }

    /// Corollary 5.7: the defective 2-edge coloring respects the
    /// Definition 5.1 bound for uniform λ = 1/2 on arbitrary bipartite graphs.
    #[test]
    fn defective_two_coloring_respects_definition_5_1(bg in arb_bipartite()) {
        let graph = bg.graph();
        let lambda = vec![0.5; graph.m()];
        let params = OrientationParams::new(0.5, ParamProfile::Practical);
        let mut net = Network::new(graph, Model::Local);
        let split = defective_two_edge_coloring(&bg, &lambda, &params, &mut net);
        prop_assert_eq!(split.red_count() + split.blue_count(), graph.m());
        let ratio = measure_defect_ratio(&bg, &split, &lambda);
        prop_assert!(ratio <= 1.0 + 1e-9, "defect ratio {} exceeds the Corollary 5.7 bound", ratio);
    }

    /// The Linial coloring is proper with an O(Δ²)-sized palette regardless of
    /// how adversarial the identifier assignment is.
    #[test]
    fn linial_coloring_is_proper_with_small_palette(bg in arb_bipartite(), seed in 0u64..1000) {
        let graph = bg.graph();
        let ids = IdAssignment::scattered(graph.n(), seed);
        let mut net = Network::new(graph, Model::Local);
        let result = linial_coloring(graph, &ids, &mut net);
        check_proper_vertex_coloring(graph, &result.coloring).assert_ok();
        let delta = graph.max_degree().max(1);
        prop_assert!(result.palette <= 16 * delta * delta + 64);
        // One round per reduction iteration.
        prop_assert_eq!(net.rounds(), u64::from(result.iterations));
    }
}
