//! Wall-clock cost of the (8+ε)Δ CONGEST edge coloring (experiments E3/E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distgraph::generators;
use distsim::IdAssignment;
use edgecolor::{color_congest, ColoringParams};

fn bench_congest_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest_edge_coloring");
    group.sample_size(10);
    for &delta in &[8usize, 16] {
        let graph = generators::random_regular((4 * delta).max(96), delta, 9).unwrap();
        let ids = IdAssignment::scattered(graph.n(), 5);
        let params = ColoringParams::new(0.5);
        group.bench_with_input(BenchmarkId::new("delta", delta), &delta, |b, _| {
            b.iter(|| color_congest(&graph, &ids, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_congest_coloring);
criterion_main!(benches);
