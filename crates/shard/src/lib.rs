//! # distshard
//!
//! The sharded partition/exchange substrate for multi-million-edge runs.
//!
//! The rounds of the paper's LOCAL/CONGEST algorithms (*Distributed Edge
//! Coloring in Time Polylogarithmic in Δ*, PODC 2022) decompose cleanly
//! across graph partitions: a node's action in one synchronous round depends
//! only on its own state and inbox, so the per-node work of a round can run
//! **shard-locally** and only the messages that cross a partition boundary
//! ever need to move between shards. This crate provides the three pieces
//! that exploit this:
//!
//! * [`Partition`] / [`bfs_partition`] — a greedy BFS-grown, edge-balanced
//!   edge-cut partitioner with a machine-readable quality report
//!   ([`PartitionReport`]: cut fraction, balance factor);
//! * [`ShardedGraph`] — the partitioned view of a [`Graph`](distgraph::Graph):
//!   per-shard node lists, per-shard *owned* edges (every edge lands in
//!   exactly one shard) and the symmetric boundary-edge sets between shard
//!   pairs;
//! * [`ShardRouter`] — the batched cross-shard exchange: one coalesced buffer
//!   per (source, destination) shard pair per round, drained in source-shard
//!   order so a consumer can reconstruct the global sender order, plus
//!   cumulative traffic statistics ([`RouterStats`]).
//!
//! The execution layer that runs rounds on top of this substrate lives in
//! `distsim` (`ExecutionPolicy::Sharded { shards, threads }`): `distshard`
//! deliberately depends only on the graph substrate so that the simulator can
//! build on it without a dependency cycle.
//!
//! # Examples
//!
//! ```
//! use distgraph::generators;
//! use distshard::{bfs_partition, ShardedGraph};
//!
//! let g = generators::grid_torus(8, 8);
//! let partition = bfs_partition(&g, 4);
//! let report = partition.report(&g);
//! assert_eq!(report.shards, 4);
//! // Every edge is owned by exactly one shard …
//! let sharded = ShardedGraph::new(&g, partition);
//! let owned: usize = (0..4).map(|s| sharded.owned_edges(s).len()).sum();
//! assert_eq!(owned, g.m());
//! // … and the cut is a small fraction of the torus edges.
//! assert!(report.cut_fraction < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod partition;
mod router;
mod sharded_graph;

pub use partition::{bfs_partition, Partition, PartitionReport};
pub use router::{RouterStats, ShardRouter};
pub use sharded_graph::ShardedGraph;
