//! The per-level round ledger: structured accounting of *where* an
//! algorithm's rounds went.
//!
//! [`Metrics`](crate::Metrics) answers "how many rounds did the run charge";
//! the [`RoundLedger`] answers "which stage of which recursion level charged
//! them". Every [`Network`](crate::Network) carries a ledger; the coloring
//! recursions record one [`LedgerEntry`] per stage (Linial bootstrap,
//! defective split, slack-solver invocation, greedy finish, fallback, …)
//! with the recursion depth, the maximum edge degree of the instance the
//! stage ran on, the measured degree-reduction ratio and whether the stage
//! was a fallback path.
//!
//! The ledger is what turned the Δ ≥ 16 round blowup from a mystery into a
//! one-line diagnosis (see `docs/ROUNDS.md`), and it now feeds the
//! `bench-rounds` regression columns so a super-polylog regression names the
//! offending level instead of just a bad total.
//!
//! Recording is deterministic: entries depend only on the algorithm's input,
//! never on the execution policy, so ledgers are bit-identical across
//! `Sequential`/`Parallel`/`Sharded` runs just like mailboxes and metrics.

/// One recorded stage of a recursion: who charged how many rounds at which
/// level of the recursion, and what it did to the degree.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Recursion depth of the stage (0 = top-level driver).
    pub depth: u32,
    /// Stage label, e.g. `"linial"`, `"defective4"`, `"amplify-split"`,
    /// `"slack-solve"`, `"greedy-finish"`.
    pub stage: &'static str,
    /// Maximum edge degree of the (sub)graph the stage ran on.
    pub delta_level: usize,
    /// Number of edges of the (sub)graph the stage ran on.
    pub edges: usize,
    /// Rounds charged by the stage (including its children).
    pub rounds: u64,
    /// Measured degree-reduction (or defect) ratio of the stage: the relevant
    /// degree *after* divided by the degree *before*; `NaN` when the stage
    /// has no reduction semantics.
    pub defect_ratio: f64,
    /// `true` when the stage was a fallback path (greedy rescue instead of
    /// the recursion's main route).
    pub fallback: bool,
}

/// An append-only log of [`LedgerEntry`] records, carried by every
/// [`Network`](crate::Network) and surfaced by the coloring outcomes and
/// [`ProgramRun`](crate::ProgramRun).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundLedger {
    entries: Vec<LedgerEntry>,
}

impl RoundLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Appends one entry.
    pub fn record(&mut self, entry: LedgerEntry) {
        self.entries.push(entry);
    }

    /// The recorded entries, in recording order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Absorbs a child ledger (a sub-computation's records), shifting every
    /// absorbed entry's depth by `depth_shift`.
    pub fn absorb(&mut self, child: RoundLedger, depth_shift: u32) {
        for mut entry in child.entries {
            entry.depth += depth_shift;
            self.entries.push(entry);
        }
    }

    /// Sums the charged rounds of all entries carrying `stage`.
    pub fn rounds_for(&self, stage: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.rounds)
            .sum()
    }

    /// Total rounds over all recorded entries. This can exceed the enclosing
    /// run's round count when parents record spans that include their
    /// children; compare per-stage numbers, not the grand total.
    pub fn total_rounds(&self) -> u64 {
        self.entries.iter().map(|e| e.rounds).sum()
    }

    /// Aggregates the ledger per `(stage, depth)`: `(stage, depth, calls,
    /// rounds, max delta_level, any fallback)`, sorted by descending rounds.
    /// This is the summary the `bench-rounds` columns and `docs/ROUNDS.md`
    /// tables are built from.
    pub fn summary(&self) -> Vec<LedgerSummaryRow> {
        let mut rows: Vec<LedgerSummaryRow> = Vec::new();
        for e in &self.entries {
            if let Some(row) = rows
                .iter_mut()
                .find(|r| r.stage == e.stage && r.depth == e.depth)
            {
                row.calls += 1;
                row.rounds += e.rounds;
                row.max_delta = row.max_delta.max(e.delta_level);
                row.fallback |= e.fallback;
            } else {
                rows.push(LedgerSummaryRow {
                    stage: e.stage,
                    depth: e.depth,
                    calls: 1,
                    rounds: e.rounds,
                    max_delta: e.delta_level,
                    fallback: e.fallback,
                });
            }
        }
        rows.sort_by(|a, b| b.rounds.cmp(&a.rounds).then(a.depth.cmp(&b.depth)));
        rows
    }

    /// The stage label charging the most rounds (ties broken by recording
    /// order), or `"-"` for an empty ledger. Used by the bench regression
    /// diff to *name* the offending level when a round count drifts.
    pub fn dominant_stage(&self) -> &'static str {
        self.summary().first().map(|r| r.stage).unwrap_or("-")
    }
}

/// One aggregated row of [`RoundLedger::summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerSummaryRow {
    /// Stage label.
    pub stage: &'static str,
    /// Recursion depth the rounds were charged at.
    pub depth: u32,
    /// Number of entries aggregated into this row.
    pub calls: usize,
    /// Total rounds charged by those entries.
    pub rounds: u64,
    /// Largest `delta_level` among them.
    pub max_delta: usize,
    /// Whether any of them took a fallback path.
    pub fallback: bool,
}

impl std::fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "stage                 depth  calls  rounds  maxΔ̄  fallback"
        )?;
        for row in self.summary() {
            writeln!(
                f,
                "{:<22}{:>5}{:>7}{:>8}{:>6}  {}",
                row.stage,
                row.depth,
                row.calls,
                row.rounds,
                row.max_delta,
                if row.fallback { "yes" } else { "-" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(stage: &'static str, depth: u32, rounds: u64) -> LedgerEntry {
        LedgerEntry {
            depth,
            stage,
            delta_level: 8,
            edges: 100,
            rounds,
            defect_ratio: 0.5,
            fallback: false,
        }
    }

    #[test]
    fn record_and_query() {
        let mut ledger = RoundLedger::new();
        assert!(ledger.is_empty());
        ledger.record(entry("linial", 0, 2));
        ledger.record(entry("slack-solve", 1, 40));
        ledger.record(entry("slack-solve", 1, 30));
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.rounds_for("slack-solve"), 70);
        assert_eq!(ledger.rounds_for("linial"), 2);
        assert_eq!(ledger.total_rounds(), 72);
        assert_eq!(ledger.dominant_stage(), "slack-solve");
    }

    #[test]
    fn absorb_shifts_depth() {
        let mut parent = RoundLedger::new();
        parent.record(entry("defective4", 0, 5));
        let mut child = RoundLedger::new();
        child.record(entry("orientation", 0, 7));
        parent.absorb(child, 2);
        assert_eq!(parent.entries()[1].depth, 2);
        assert_eq!(parent.entries()[1].stage, "orientation");
    }

    #[test]
    fn summary_aggregates_and_sorts() {
        let mut ledger = RoundLedger::new();
        ledger.record(entry("a", 0, 1));
        ledger.record(entry("b", 1, 10));
        ledger.record(entry("b", 1, 20));
        let summary = ledger.summary();
        assert_eq!(summary[0].stage, "b");
        assert_eq!(summary[0].calls, 2);
        assert_eq!(summary[0].rounds, 30);
        assert_eq!(summary[1].stage, "a");
        let rendered = format!("{ledger}");
        assert!(rendered.contains("b"));
        assert!(rendered.contains("30"));
    }

    #[test]
    fn empty_ledger_dominant_stage_is_dash() {
        assert_eq!(RoundLedger::new().dominant_stage(), "-");
    }
}
