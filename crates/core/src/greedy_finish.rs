//! Greedy finishing steps: coloring low-degree (sub)graphs by iterating over
//! the classes of an initial `O(d²)`-edge coloring.
//!
//! Every recursion in the paper bottoms out in a graph of small degree that is
//! colored "greedily by a standard edge coloring algorithm" (\[10\] is cited for
//! an `O(d)`-round version). We implement the classic schedule-based greedy:
//! given a proper auxiliary edge coloring (the *schedule*), iterate over its
//! color classes; in each class all uncolored edges simultaneously pick a free
//! color from their lists — edges of one class are pairwise non-adjacent, so
//! no conflicts can arise. The number of rounds is the size of the schedule
//! palette, i.e. `O(d²)` instead of \[10\]'s `O(d)`; DESIGN.md records this
//! substitution (it only affects the low-degree tail of every run).

use distgraph::{BipartiteGraph, Color, EdgeColoring, EdgeId, Graph, ListAssignment};
use distsim::{bits_for, Network};

/// Outcome of a greedy schedule-based coloring pass.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// Number of edges colored by the pass.
    pub colored: usize,
    /// Edges that had no free color left in their list (empty when the
    /// `|L_e| > uncolored degree` invariant holds, as it does in all the
    /// paper's uses).
    pub uncolorable: Vec<EdgeId>,
    /// Rounds charged for the pass.
    pub rounds: u64,
}

/// An `O(Δ²)`-edge coloring of a 2-colored bipartite graph computed in one
/// round: the color of an edge is the pair (port index at its `U` endpoint,
/// port index at its `V` endpoint).
///
/// Two edges sharing their `U` endpoint differ in the first component, two
/// edges sharing their `V` endpoint differ in the second, so the coloring is
/// proper. This is the `O(1)`-round initial edge coloring the paper's
/// Appendix C relies on ("which can be done in O(1) rounds if we are given a
/// 2-vertex coloring").
pub fn port_pair_edge_coloring(bg: &BipartiteGraph, net: &mut Network<'_>) -> EdgeColoring {
    let graph = bg.graph();
    let delta = graph.max_degree().max(1);
    let mut coloring = EdgeColoring::empty(graph.m());
    // Each endpoint announces to the other the port index it assigned to the
    // edge: one round, O(log Δ) bits per message.
    net.charge_rounds(1);
    net.charge_messages(2 * graph.m() as u64, bits_for(delta as u64) as u64);
    for v in graph.nodes() {
        for (port, nb) in graph.neighbors(v).iter().enumerate() {
            let (u_side, _) = bg.endpoints_uv(nb.edge);
            if v == u_side {
                // this node is the U endpoint: contribute the first component
                let existing = coloring.color(nb.edge).unwrap_or(0);
                coloring.set(nb.edge, existing + port * delta);
            } else {
                let existing = coloring.color(nb.edge).unwrap_or(0);
                coloring.set(nb.edge, existing + port);
            }
        }
    }
    coloring
}

/// Greedily colors the `eligible` uncolored edges of `graph` from their
/// `lists`, scheduled by the color classes of the proper edge coloring
/// `schedule`.
///
/// In the class-`c` step (one round), every eligible uncolored edge whose
/// schedule color is `c` picks the smallest color of its list that is not
/// used by any adjacent colored edge. Properness is preserved because edges
/// within one schedule class are pairwise non-adjacent.
///
/// # Panics
///
/// Panics if `schedule` is not a complete proper edge coloring of `graph`.
pub fn greedy_list_coloring_by_schedule(
    graph: &Graph,
    schedule: &EdgeColoring,
    lists: &ListAssignment,
    coloring: &mut EdgeColoring,
    eligible: impl Fn(EdgeId) -> bool,
    net: &mut Network<'_>,
) -> GreedyOutcome {
    assert!(schedule.is_complete(), "the schedule must color every edge");
    assert!(
        schedule.is_proper(graph),
        "the schedule must be a proper edge coloring"
    );

    let classes = schedule.palette_size();
    let mut colored = 0usize;
    let mut uncolorable = Vec::new();
    let rounds_before = net.rounds();
    let message_bits = bits_for(lists.space_size().max(2) as u64) as u64;

    for class in 0..classes {
        let mut class_edges: Vec<EdgeId> = graph
            .edges()
            .filter(|&e| schedule.color(e) == Some(class) && !coloring.is_colored(e) && eligible(e))
            .collect();
        if class_edges.is_empty() {
            continue;
        }
        // One round: each picking edge learns the colors currently held by its
        // adjacent edges (its endpoints already know them locally; the round
        // is the announcement of the newly picked color).
        net.charge_rounds(1);
        net.charge_messages(2 * class_edges.len() as u64, message_bits);
        class_edges.sort_unstable();
        for e in class_edges {
            let used = coloring.colors_around(graph, e);
            match lists.list(e).iter().copied().find(|c| !used.contains(c)) {
                Some(c) => {
                    coloring.set(e, c);
                    colored += 1;
                }
                None => uncolorable.push(e),
            }
        }
    }

    GreedyOutcome {
        colored,
        uncolorable,
        rounds: net.rounds() - rounds_before,
    }
}

/// Colors *all* uncolored edges of `graph` greedily from the standard palette
/// `{0, ..., palette-1}` using `schedule`; a convenience wrapper around
/// [`greedy_list_coloring_by_schedule`].
pub fn greedy_palette_coloring_by_schedule(
    graph: &Graph,
    schedule: &EdgeColoring,
    palette: usize,
    coloring: &mut EdgeColoring,
    net: &mut Network<'_>,
) -> GreedyOutcome {
    let lists = ListAssignment::full_palette(graph, palette);
    greedy_list_coloring_by_schedule(graph, schedule, &lists, coloring, |_| true, net)
}

/// The smallest color not used by the colored edges adjacent to `e`
/// (the "first-fit" color); exposed for tests and for the baselines crate.
pub fn first_free_color(graph: &Graph, coloring: &EdgeColoring, e: EdgeId) -> Color {
    let used = coloring.colors_around(graph, e);
    (0..)
        .find(|c| !used.contains(c))
        .expect("some color below deg+1 is free")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linial::linial_edge_coloring;
    use distgraph::generators;
    use distsim::{IdAssignment, Model};
    use edgecolor_verify::{
        check_complete, check_list_compliance, check_palette_size, check_proper_edge_coloring,
    };

    #[test]
    fn port_pair_coloring_is_proper_with_delta_squared_palette() {
        let bg = generators::regular_bipartite(20, 6, 4).unwrap();
        let mut net = Network::new(bg.graph(), Model::Local);
        let coloring = port_pair_edge_coloring(&bg, &mut net);
        check_proper_edge_coloring(bg.graph(), &coloring).assert_ok();
        check_complete(bg.graph(), &coloring).assert_ok();
        let delta = bg.graph().max_degree();
        check_palette_size(&coloring, delta * delta).assert_ok();
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn port_pair_coloring_on_irregular_bipartite() {
        let bg = generators::random_bipartite(15, 25, 0.3, 2);
        let mut net = Network::new(bg.graph(), Model::Local);
        let coloring = port_pair_edge_coloring(&bg, &mut net);
        check_proper_edge_coloring(bg.graph(), &coloring).assert_ok();
        check_complete(bg.graph(), &coloring).assert_ok();
    }

    #[test]
    fn greedy_by_schedule_colors_everything_with_degree_plus_one_lists() {
        let g = generators::random_regular(80, 6, 11).unwrap();
        let ids = IdAssignment::contiguous(g.n());
        let mut net = Network::new(&g, Model::Local);
        let schedule = linial_edge_coloring(&g, &ids, &mut net);
        let lists = ListAssignment::degree_plus_one(&g);
        let mut coloring = EdgeColoring::empty(g.m());
        let outcome = greedy_list_coloring_by_schedule(
            &g,
            &schedule,
            &lists,
            &mut coloring,
            |_| true,
            &mut net,
        );
        assert!(outcome.uncolorable.is_empty());
        assert_eq!(outcome.colored, g.m());
        check_proper_edge_coloring(&g, &coloring).assert_ok();
        check_complete(&g, &coloring).assert_ok();
        check_list_compliance(&g, &lists, &coloring).assert_ok();
        // (degree+1)-list coloring never exceeds Δ̄+1 colors.
        check_palette_size(&coloring, g.max_edge_degree() + 1).assert_ok();
        assert!(outcome.rounds > 0);
    }

    #[test]
    fn greedy_palette_coloring_uses_at_most_two_delta_minus_one_colors() {
        let bg = generators::regular_bipartite(16, 5, 8).unwrap();
        let g = bg.graph();
        let mut net = Network::new(g, Model::Local);
        let schedule = port_pair_edge_coloring(&bg, &mut net);
        let mut coloring = EdgeColoring::empty(g.m());
        let palette = 2 * g.max_degree() - 1;
        let outcome =
            greedy_palette_coloring_by_schedule(g, &schedule, palette, &mut coloring, &mut net);
        assert!(outcome.uncolorable.is_empty());
        check_proper_edge_coloring(g, &coloring).assert_ok();
        check_complete(g, &coloring).assert_ok();
        check_palette_size(&coloring, palette).assert_ok();
    }

    #[test]
    fn greedy_respects_eligibility_filter() {
        let g = generators::path(6);
        let ids = IdAssignment::contiguous(g.n());
        let mut net = Network::new(&g, Model::Local);
        let schedule = linial_edge_coloring(&g, &ids, &mut net);
        let lists = ListAssignment::full_palette(&g, 4);
        let mut coloring = EdgeColoring::empty(g.m());
        let outcome = greedy_list_coloring_by_schedule(
            &g,
            &schedule,
            &lists,
            &mut coloring,
            |e| e.index() % 2 == 0,
            &mut net,
        );
        assert_eq!(
            outcome.colored,
            g.edges().filter(|e| e.index() % 2 == 0).count()
        );
        for e in g.edges() {
            assert_eq!(coloring.is_colored(e), e.index() % 2 == 0);
        }
    }

    #[test]
    fn greedy_preserves_existing_partial_coloring() {
        let g = generators::cycle(6);
        let ids = IdAssignment::contiguous(g.n());
        let mut net = Network::new(&g, Model::Local);
        let schedule = linial_edge_coloring(&g, &ids, &mut net);
        let mut coloring = EdgeColoring::empty(g.m());
        coloring.set(EdgeId::new(0), 7);
        let lists = ListAssignment::full_palette(&g, 8);
        greedy_list_coloring_by_schedule(&g, &schedule, &lists, &mut coloring, |_| true, &mut net);
        assert_eq!(coloring.color(EdgeId::new(0)), Some(7));
        check_proper_edge_coloring(&g, &coloring).assert_ok();
        check_complete(&g, &coloring).assert_ok();
    }

    #[test]
    fn uncolorable_edges_are_reported_not_panicked() {
        // A star with 3 leaves but only 2 colors available: one edge must fail.
        let g = generators::star(3);
        let ids = IdAssignment::contiguous(g.n());
        let mut net = Network::new(&g, Model::Local);
        let schedule = linial_edge_coloring(&g, &ids, &mut net);
        let lists = ListAssignment::full_palette(&g, 2);
        let mut coloring = EdgeColoring::empty(g.m());
        let outcome = greedy_list_coloring_by_schedule(
            &g,
            &schedule,
            &lists,
            &mut coloring,
            |_| true,
            &mut net,
        );
        assert_eq!(outcome.colored, 2);
        assert_eq!(outcome.uncolorable.len(), 1);
        check_proper_edge_coloring(&g, &coloring).assert_ok();
    }

    #[test]
    fn first_free_color_skips_used_colors() {
        let g = generators::star(3);
        let mut coloring = EdgeColoring::empty(g.m());
        coloring.set(EdgeId::new(0), 0);
        coloring.set(EdgeId::new(1), 1);
        assert_eq!(first_free_color(&g, &coloring, EdgeId::new(2)), 2);
    }

    #[test]
    #[should_panic(expected = "schedule must color every edge")]
    fn incomplete_schedule_panics() {
        let g = generators::path(4);
        let schedule = EdgeColoring::empty(g.m());
        let lists = ListAssignment::full_palette(&g, 4);
        let mut coloring = EdgeColoring::empty(g.m());
        let mut net = Network::new(&g, Model::Local);
        greedy_list_coloring_by_schedule(&g, &schedule, &lists, &mut coloring, |_| true, &mut net);
    }
}
