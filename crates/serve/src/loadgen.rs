//! Deterministic load generator: seeded read/write mixes whose *accounting*
//! is reproducible under any thread interleaving.
//!
//! Timing-dependent quantities (qps, latency percentiles, tick counts) vary
//! run to run, but every count the bench regression gate compares exactly —
//! ops, reads, inserts, deletes, accepted, rejected — is a pure function of
//! the config. The trick is partitioning the write universe by client over
//! the `rows × cols` grid torus:
//!
//! * **Inserts** are *diagonal* pairs `(a, diag(a))` with
//!   `diag(r, c) = ((r+1) mod rows, (c+1) mod cols)`. A diagonal is never a
//!   torus edge, every anchor yields a distinct pair (both need
//!   `rows, cols ≥ 3`), and client `k` of `K` only uses anchors
//!   `a ≡ k (mod K)` — so no two clients ever race for the same pair and
//!   every insert is admitted no matter how submissions interleave.
//! * **Deletes** target initial stable ids `k, k + K, k + 2K, …` (all
//!   `< 2·rows·cols`, i.e. original torus edges), each exactly once — again
//!   collision-free across clients, so every delete is admitted.
//! * Each client that inserted anything re-submits its **first** diagonal at
//!   the end; that pair is by then pending or live, so the daemon's typed
//!   [`RejectCode::DuplicateEdge`](crate::wire::RejectCode) answer is
//!   guaranteed — pinning the reject path end-to-end with a deterministic
//!   `rejected` count.
//!
//! Backpressure ([`RejectCode::QueueFull`](crate::wire::RejectCode)) and
//! swap quiescing are retried with a short pause and counted separately in
//! `retries`, which the regression contract ignores (host-dependent).
//!
//! Degree growth is bounded by construction: a node gains at most two
//! diagonal edges (once as anchor, once as target), so Δ never exceeds 6
//! and a daemon provisioned with Δ-headroom ≥ 2 never full-recolors —
//! making `repaired_edges` (= total inserts) and `full_recolors` (= 0)
//! exact too.

use crate::client::Client;
use crate::error::WireError;
use crate::wire::{MetricsReport, RejectCode, Response};
use distsim::faults::splitmix64;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-mix parameters. The graph served by the daemon must be the
/// `rows × cols` grid torus with its initial stable ids (the state
/// [`ServerCore::new`](crate::state::ServerCore::new) boots into).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Torus rows (≥ 3).
    pub rows: usize,
    /// Torus columns (≥ 3).
    pub cols: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Operations each client issues (excluding the final deliberate
    /// duplicate).
    pub ops_per_client: usize,
    /// Reads per 1000 operations; the rest are writes.
    pub read_permille: u32,
    /// Seed of the op-mix stream.
    pub seed: u64,
}

/// Aggregated client-side accounting of one load run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadgenReport {
    /// Total operations issued (reads + writes + deliberate duplicates).
    pub ops: u64,
    /// Lookup requests issued.
    pub reads: u64,
    /// Write submissions issued (inserts + deletes, excluding duplicates).
    pub writes: u64,
    /// Insert submissions (all admitted).
    pub inserts: u64,
    /// Delete submissions (all admitted).
    pub deletes: u64,
    /// Submissions the daemon admitted.
    pub accepted: u64,
    /// Deliberate duplicate submissions the daemon rejected with
    /// `DuplicateEdge`.
    pub rejected: u64,
    /// Backpressure retries (queue full / swap in progress) — host
    /// dependent, ignored by the regression contract.
    pub retries: u64,
    /// Unexpected responses (0 on a correct daemon).
    pub errors: u64,
    /// Wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// `ops / wall` in operations per second.
    pub qps: f64,
}

#[derive(Debug, Default)]
struct ClientStats {
    ops: u64,
    reads: u64,
    inserts: u64,
    deletes: u64,
    accepted: u64,
    rejected: u64,
    retries: u64,
    errors: u64,
}

/// Replays the seeded mix against a running daemon and aggregates the
/// per-client accounting.
///
/// # Errors
///
/// [`WireError`] if any client connection fails mid-run.
///
/// # Panics
///
/// Panics if `rows` or `cols` is below 3 (no valid torus) or `clients` is 0.
pub fn run_against(addr: SocketAddr, cfg: &LoadgenConfig) -> Result<LoadgenReport, WireError> {
    assert!(
        cfg.rows >= 3 && cfg.cols >= 3,
        "loadgen needs a ≥3×≥3 torus"
    );
    assert!(cfg.clients > 0, "loadgen needs at least one client");
    let started = Instant::now();
    let stats: Vec<Result<ClientStats, WireError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| scope.spawn(move || run_client(addr, cfg, client)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut report = LoadgenReport {
        wall_ms,
        ..LoadgenReport::default()
    };
    for s in stats {
        let s = s?;
        report.ops += s.ops;
        report.reads += s.reads;
        report.inserts += s.inserts;
        report.deletes += s.deletes;
        report.accepted += s.accepted;
        report.rejected += s.rejected;
        report.retries += s.retries;
        report.errors += s.errors;
    }
    report.writes = report.inserts + report.deletes;
    report.qps = if wall_ms > 0.0 {
        report.ops as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    Ok(report)
}

fn run_client(
    addr: SocketAddr,
    cfg: &LoadgenConfig,
    client: usize,
) -> Result<ClientStats, WireError> {
    let n = cfg.rows * cfg.cols;
    let m0 = 2 * n;
    let stride = cfg.clients;
    let insert_budget = if client < n {
        (n - client).div_ceil(stride)
    } else {
        0
    };
    let delete_budget = if client < m0 {
        (m0 - client).div_ceil(stride)
    } else {
        0
    };
    let diag = |a: usize| {
        let (r, c) = (a / cfg.cols, a % cfg.cols);
        ((r + 1) % cfg.rows) * cfg.cols + (c + 1) % cfg.cols
    };

    let mut conn = Client::connect(addr).map_err(WireError::Io)?;
    let mut s = ClientStats::default();
    let mut inserts_done = 0usize;
    let mut deletes_done = 0usize;

    for i in 0..cfg.ops_per_client {
        let z = splitmix64(cfg.seed ^ ((client as u64) << 40) ^ (i as u64));
        let mut read = z % 1000 < u64::from(cfg.read_permille);
        if !read {
            let want_insert = (inserts_done + deletes_done).is_multiple_of(2);
            if want_insert && inserts_done < insert_budget {
                let a = client + inserts_done * stride;
                submit_admitted(&mut conn, &mut s, vec![], vec![(a as u32, diag(a) as u32)])?;
                inserts_done += 1;
                s.inserts += 1;
            } else if deletes_done < delete_budget {
                let sid = (client + deletes_done * stride) as u64;
                submit_admitted(&mut conn, &mut s, vec![sid], vec![])?;
                deletes_done += 1;
                s.deletes += 1;
            } else if inserts_done < insert_budget {
                let a = client + inserts_done * stride;
                submit_admitted(&mut conn, &mut s, vec![], vec![(a as u32, diag(a) as u32)])?;
                inserts_done += 1;
                s.inserts += 1;
            } else {
                // Both write budgets exhausted: degrade to a read so the op
                // count stays exact.
                read = true;
            }
        }
        if read {
            let stable = (z >> 10) % m0 as u64;
            match conn.lookup(stable)? {
                Response::Color { .. } => {}
                _ => s.errors += 1,
            }
            s.reads += 1;
        }
        s.ops += 1;
    }

    // Deliberate duplicate: the first diagonal again. Its pair is pending or
    // live by now, so the typed reject is guaranteed.
    if inserts_done > 0 {
        let a = client;
        loop {
            match conn.submit(vec![], vec![(a as u32, diag(a) as u32)])? {
                Response::Rejected {
                    code: RejectCode::DuplicateEdge,
                    ..
                } => {
                    s.rejected += 1;
                    break;
                }
                Response::Rejected {
                    code: RejectCode::QueueFull | RejectCode::SwapInProgress,
                    ..
                } => {
                    s.retries += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                _ => {
                    s.errors += 1;
                    break;
                }
            }
        }
        s.ops += 1;
    }
    Ok(s)
}

/// Submits a batch that admission *must* accept (by the anchor-partition
/// construction), retrying through backpressure.
fn submit_admitted(
    conn: &mut Client,
    s: &mut ClientStats,
    delete: Vec<u64>,
    insert: Vec<(u32, u32)>,
) -> Result<(), WireError> {
    loop {
        match conn.submit(delete.clone(), insert.clone())? {
            Response::Submitted { .. } => {
                s.accepted += 1;
                return Ok(());
            }
            Response::Rejected {
                code: RejectCode::QueueFull | RejectCode::SwapInProgress,
                ..
            } => {
                s.retries += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            _ => {
                s.errors += 1;
                return Ok(());
            }
        }
    }
}

/// Convenience for smoke checks: a one-line summary of a report plus the
/// final server metrics.
pub fn summary(report: &LoadgenReport, metrics: &MetricsReport) -> String {
    format!(
        "ops {} (reads {}, writes {}, dup-rejects {}) qps {:.0} | server: epoch {} version {} \
         ticks {} repaired {} full-recolors {} protocol-errors {} repair p50/p95/p99 \
         {:.2}/{:.2}/{:.2} ms",
        report.ops,
        report.reads,
        report.writes,
        report.rejected,
        report.qps,
        metrics.epoch,
        metrics.version,
        metrics.ticks,
        metrics.repaired_edges,
        metrics.full_recolors,
        metrics.protocol_errors,
        metrics.repair_p50_ms,
        metrics.repair_p95_ms,
        metrics.repair_p99_ms,
    )
}
