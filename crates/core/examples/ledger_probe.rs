//! Development probe: prints the per-level round ledger of
//! `color_edges_local` on the E1 benchmark graphs (random Δ-regular,
//! n = max(4Δ, 96)) so the polylog(Δ) scaling of the recursion can be
//! inspected stage by stage. Run with
//! `cargo run --release -p edgecolor --example ledger_probe [deltas...]`.

use distgraph::generators;
use distsim::IdAssignment;
use edgecolor::{color_edges_local, ColoringParams};

fn main() {
    let deltas: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("delta"))
        .collect();
    let deltas = if deltas.is_empty() {
        vec![8, 16, 32, 64]
    } else {
        deltas
    };
    let mut params = ColoringParams::new(0.5);
    if let Ok(cutoff) = std::env::var("LEDGER_PROBE_CUTOFF") {
        params.low_degree_cutoff = cutoff.parse().expect("cutoff");
    }
    for delta in deltas {
        let n = (4 * delta).max(96);
        let n = if n % 2 == 1 { n + 1 } else { n };
        let graph = generators::random_regular(n, delta, 7).expect("feasible");
        let ids = IdAssignment::scattered(graph.n(), 3);
        let outcome = color_edges_local(&graph, &ids, &params).expect("valid");
        println!(
            "Δ={delta} n={n} rounds={} outer={} solver_calls={} fallback={}",
            outcome.metrics.rounds,
            outcome.outer_iterations,
            outcome.solver_calls,
            outcome.fallback_rounds
        );
        println!("{}", outcome.ledger);
        println!("dominant stage: {}", outcome.ledger.dominant_stage());
        println!();
    }
}
