//! The generalized token dropping game (Section 4) in isolation.
//!
//! Builds a layered "waterfall" instance (all tokens start at the top layer,
//! arcs point downward), runs the distributed solver with different `δ`
//! values, and prints the trade-off Theorem 4.3 predicts: fewer phases for
//! larger `δ`, at the price of more slack on the arcs.
//!
//! Run with `cargo run --release --example token_dropping_demo`.

use distgraph::NodeId;
use edgecolor::token_dropping::{
    check_invariants, check_theorem_4_3, solve_distributed, solve_sequential, TokenGame,
    TokenGameParams,
};

fn layered_game(layers: usize, width: usize, k: usize) -> TokenGame {
    let n = layers * width;
    let mut arcs = Vec::new();
    for l in 0..layers - 1 {
        for a in 0..width {
            for b in 0..width {
                arcs.push((NodeId::new(l * width + a), NodeId::new((l + 1) * width + b)));
            }
        }
    }
    let mut tokens = vec![0usize; n];
    for t in tokens.iter_mut().take(width) {
        *t = k;
    }
    TokenGame::new(n, arcs, k, tokens)
}

fn main() {
    let k = 256;
    let game = layered_game(6, 8, k);
    println!(
        "layered game: {} nodes, {} arcs, capacity k = {}, {} tokens in play",
        game.n,
        game.num_arcs(),
        game.k,
        game.total_tokens()
    );

    println!(
        "{:>6} {:>8} {:>8} {:>14} {:>12}",
        "δ", "phases", "rounds", "max final τ", "bound viol."
    );
    for delta in [1usize, 2, 4, 8, 16, 32] {
        let params = TokenGameParams {
            alpha: vec![delta.max(1); game.n],
            delta,
        };
        let result = solve_distributed(&game, &params);
        assert!(check_invariants(&game, &result));
        let violations = check_theorem_4_3(&game, &params, &result);
        println!(
            "{:>6} {:>8} {:>8} {:>14} {:>12}",
            delta,
            result.phases,
            result.rounds,
            result.tokens.iter().max().copied().unwrap_or(0),
            violations.len()
        );
    }

    // Compare against the sequential reference play with zero slack.
    let sequential = solve_sequential(&game, |_, _| 0.0);
    println!(
        "sequential reference: {} token moves, max final τ = {}",
        sequential.phases,
        sequential.tokens.iter().max().copied().unwrap_or(0)
    );
}
