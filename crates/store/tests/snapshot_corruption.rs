//! Corruption battery: every mutation of a valid snapshot — truncation,
//! bit flips anywhere in the file, flipped magic, bumped version, forged
//! section table entries — must surface as a typed [`SnapshotError`],
//! never a panic. And when a mutation *forges the checksum* so the file
//! still opens, every zero-copy accessor must serve it without panicking.

use distgraph::{EdgeColoring, EdgeId, Graph, NodeId};
use diststore::{LoadedSnapshot, Snapshot, SnapshotError, SnapshotSource};
use proptest::prelude::*;

/// Random simple graph, matching the workspace's other property suites.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(60)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(key);
                }
            }
            Graph::from_edges(n, &edges).expect("sanitized edges are valid")
        })
    })
}

/// Encodes a snapshot exercising every section (coloring + stable table +
/// permutation) so mutations can land anywhere in the format.
fn full_snapshot_bytes(g: &Graph) -> Vec<u8> {
    let mut coloring = EdgeColoring::empty(g.m());
    for e in g.edges() {
        if e.index() % 4 != 3 {
            coloring.set(e, e.index() % 6);
        }
    }
    let perm = distgraph::reorder_permutation(g, distgraph::ReorderStrategy::Bfs);
    // Snapshot the *original* graph with an identity-shaped stable table via
    // the dynamic wrapper, plus the coloring and a (valid) permutation of
    // the same node count.
    let dynamic = distgraph::DynamicGraph::from_graph(g.clone());
    let mut source = SnapshotSource::dynamic(&dynamic).with_coloring(&coloring);
    // The permutation is only attachable when it acts on the graph's nodes.
    source = source.with_permutation(&perm);
    source.encode().expect("valid inputs encode")
}

/// The format's word-chunked FNV-1a 64 checksum (local copy — the crate
/// keeps its checksum private). Must stay in lockstep with
/// `diststore::format::checksum64`: these tests forge checksums to smuggle
/// corrupted payloads past the table walk.
fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    if bytes.len() < 32 {
        let mut hash = BASIS;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
        return hash;
    }
    let word = |chunk: &[u8]| u64::from_le_bytes(chunk.try_into().expect("8-byte word"));
    let mut lanes = [
        BASIS,
        BASIS ^ PRIME,
        BASIS.rotate_left(17),
        BASIS.rotate_left(31),
    ];
    let mut groups = bytes.chunks_exact(32);
    for g in &mut groups {
        lanes[0] = (lanes[0] ^ word(&g[0..8])).wrapping_mul(PRIME);
        lanes[1] = (lanes[1] ^ word(&g[8..16])).wrapping_mul(PRIME);
        lanes[2] = (lanes[2] ^ word(&g[16..24])).wrapping_mul(PRIME);
        lanes[3] = (lanes[3] ^ word(&g[24..32])).wrapping_mul(PRIME);
    }
    let mut hash = lanes[0];
    for &lane in &lanes[1..] {
        hash = (hash ^ lane).wrapping_mul(PRIME);
    }
    for &b in groups.remainder() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Exercises every zero-copy accessor and the materialization path; the
/// point is that none of them panic, whatever the snapshot contains.
fn drain_accessors(snapshot: &Snapshot) {
    let view = snapshot.view();
    let mut checksum = 0usize;
    for v in 0..view.n() {
        let v = NodeId::new(v);
        checksum ^= view.degree(v);
        for nb in view.neighbors(v) {
            checksum ^= nb.node.index() ^ nb.edge.index();
        }
        checksum ^= view.original_id(v).map_or(0, |o| o.index());
    }
    for e in 0..view.m() {
        let e = EdgeId::new(e);
        let (u, w) = view.endpoints(e);
        checksum ^= u.index() ^ w.index();
        checksum ^= view.color(e).unwrap_or(0);
        checksum ^= view.stable_id(e).map_or(0, |s| s.index());
    }
    std::hint::black_box(checksum);
    // Materialization re-validates; it may reject, but must not panic.
    let _ = LoadedSnapshot::load(snapshot);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any strict prefix of a snapshot fails to open with a typed error.
    #[test]
    fn truncation_is_rejected(g in arb_graph(), cut in 0.0f64..1.0) {
        let bytes = full_snapshot_bytes(&g);
        let len = ((bytes.len() as f64) * cut) as usize;
        let truncated = bytes[..len.min(bytes.len() - 1)].to_vec();
        prop_assert!(Snapshot::from_bytes(truncated).is_err());
    }

    /// Any single flipped byte fails to open with a typed error: either the
    /// header/table check trips, or the section checksum does.
    #[test]
    fn single_byte_flips_are_rejected(g in arb_graph(), at in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = full_snapshot_bytes(&g);
        let idx = ((bytes.len() as f64) * at) as usize;
        let idx = idx.min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        prop_assert!(Snapshot::from_bytes(bytes).is_err());
    }

    /// Forging the checksum after a payload flip must not let any accessor
    /// panic: the snapshot either fails open-time structural validation or
    /// serves (possibly semantically different) values safely.
    #[test]
    fn checksum_forged_flips_never_panic(g in arb_graph(), at in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = full_snapshot_bytes(&g);
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let table_end = 16 + count * 28;
        // Aim the flip at payload bytes only, then re-hash that section.
        let payload_len = bytes.len() - table_end;
        if payload_len == 0 {
            return Ok(());
        }
        let idx = table_end + (((payload_len as f64) * at) as usize).min(payload_len - 1);
        bytes[idx] ^= 1 << bit;
        for entry in 0..count {
            let at = 16 + entry * 28;
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            if (offset..offset + len).contains(&idx) {
                let sum = checksum64(&bytes[offset..offset + len]);
                bytes[at + 20..at + 28].copy_from_slice(&sum.to_le_bytes());
            }
        }
        // Must not panic; Ok and Err are both acceptable outcomes.
        if let Ok(snapshot) = Snapshot::from_bytes(bytes) {
            drain_accessors(&snapshot);
        }
    }
}

#[test]
fn flipped_magic_is_bad_magic() {
    let g = distgraph::generators::cycle(6);
    let mut bytes = SnapshotSource::graph(&g).encode().unwrap();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        Snapshot::from_bytes(bytes),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn future_version_is_unsupported() {
    let g = distgraph::generators::cycle(6);
    let mut bytes = SnapshotSource::graph(&g).encode().unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(bytes),
        Err(SnapshotError::UnsupportedVersion { found: 99, .. })
    ));
}

#[test]
fn short_buffers_are_truncated_errors() {
    for len in 0..16 {
        let bytes = diststore::MAGIC[..len.min(8)].to_vec();
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::BadMagic | SnapshotError::Truncated { .. })
        ));
    }
}

#[test]
fn misaligned_section_length_is_typed() {
    // Shrink the OFFS section by one byte (and fix its checksum) so its
    // length is no longer a multiple of 4.
    let g = distgraph::generators::cycle(6);
    let mut bytes = SnapshotSource::graph(&g).encode().unwrap();
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut fixed = false;
    for entry in 0..count {
        let at = 16 + entry * 28;
        if &bytes[at..at + 4] == b"OFFS" {
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            bytes[at + 12..at + 20].copy_from_slice(&((len - 1) as u64).to_le_bytes());
            let sum = checksum64(&bytes[offset..offset + len - 1]);
            bytes[at + 20..at + 28].copy_from_slice(&sum.to_le_bytes());
            fixed = true;
        }
    }
    assert!(fixed, "snapshot has an OFFS section");
    assert!(matches!(
        Snapshot::from_bytes(bytes),
        Err(SnapshotError::MisalignedSection { .. })
    ));
}

#[test]
fn out_of_bounds_section_is_typed() {
    let g = distgraph::generators::cycle(6);
    let mut bytes = SnapshotSource::graph(&g).encode().unwrap();
    let file_len = bytes.len() as u64;
    // Point the first section past the end of the file.
    bytes[20..28].copy_from_slice(&(file_len + 1).to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(bytes),
        Err(SnapshotError::SectionOutOfBounds { .. })
    ));
}

#[test]
fn duplicate_section_is_typed() {
    // Duplicate the META table entry over the OFFS entry (both point at the
    // original META payload, checksums stay valid).
    let g = distgraph::generators::cycle(6);
    let mut bytes = SnapshotSource::graph(&g).encode().unwrap();
    let meta_entry = bytes[16..44].to_vec();
    bytes[44..72].copy_from_slice(&meta_entry);
    assert!(matches!(
        Snapshot::from_bytes(bytes),
        Err(SnapshotError::DuplicateSection { .. })
    ));
}

#[test]
fn missing_required_section_is_typed() {
    // Keep only the META entry by shrinking the declared section count.
    // (The table bytes for the dropped sections remain in the file but are
    // no longer part of the table; META's own payload still checksums.)
    let g = distgraph::generators::cycle(6);
    let mut bytes = SnapshotSource::graph(&g).encode().unwrap();
    bytes[12..16].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(bytes),
        Err(SnapshotError::MissingSection { .. })
    ));
}

#[test]
fn semantic_corruption_with_forged_checksum_is_typed() {
    // Break a structural invariant (offsets[0] != 0) and forge the OFFS
    // checksum: the table is consistent, but structural validation trips.
    let g = distgraph::generators::cycle(6);
    let mut bytes = SnapshotSource::graph(&g).encode().unwrap();
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    for entry in 0..count {
        let at = 16 + entry * 28;
        if &bytes[at..at + 4] == b"OFFS" {
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            bytes[offset] = 1; // offsets[0] = 1
            let sum = checksum64(&bytes[offset..offset + len]);
            bytes[at + 20..at + 28].copy_from_slice(&sum.to_le_bytes());
        }
    }
    match Snapshot::from_bytes(bytes) {
        Err(SnapshotError::CorruptSection { tag, .. }) => assert_eq!(tag, "OFFS"),
        other => panic!("expected CorruptSection, got {other:?}"),
    }
}

#[test]
fn inflated_intermediate_offset_is_typed_not_panic() {
    // Regression: only offsets[0] and offsets[n] were pinned before the
    // adjacency walk, so an *intermediate* offset inflated past 2m (with a
    // forged OFFS checksum) used to panic the walk's adjacency indexing
    // instead of returning a typed error.
    let g = distgraph::generators::cycle(6);
    let mut bytes = SnapshotSource::graph(&g).encode().unwrap();
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut fixed = false;
    for entry in 0..count {
        let at = 16 + entry * 28;
        if &bytes[at..at + 4] == b"OFFS" {
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            // offsets[1] = 1000, far past the 2m = 12 adjacency entries;
            // the surrounding entries stay valid so only the new bound
            // check can catch it.
            bytes[offset + 4..offset + 8].copy_from_slice(&1000u32.to_le_bytes());
            let sum = checksum64(&bytes[offset..offset + len]);
            bytes[at + 20..at + 28].copy_from_slice(&sum.to_le_bytes());
            fixed = true;
        }
    }
    assert!(fixed, "snapshot has an OFFS section");
    match Snapshot::from_bytes(bytes) {
        Err(SnapshotError::CorruptSection { tag, .. }) => assert_eq!(tag, "OFFS"),
        other => panic!("expected CorruptSection, got {other:?}"),
    }
}
