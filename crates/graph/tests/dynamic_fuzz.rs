//! Fuzz-style property tests for the dynamic-graph mutation layer.
//!
//! Arbitrary interleavings of insert/delete batches are replayed against a
//! naive model (a hash set of endpoint pairs plus an append-only stable-id
//! ledger); after every batch the CSR invariants and the stable↔internal
//! `EdgeId` bijection must hold, and the graph must agree with the model
//! edge for edge. Mirrors the style of `crates/graph/tests/properties.rs`.

use distgraph::{generators, DynamicGraph, EdgeId, Graph, NodeId, UpdateBatch};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// One raw fuzz operation; indices are resolved against the live state when
/// the batch is materialized, so every generated batch is *valid* (invalid
/// batches are exercised separately — they must be rejected atomically).
#[derive(Debug, Clone)]
enum RawOp {
    /// Delete the live edge with index `pick % m` (skipped when empty).
    Delete(usize),
    /// Insert the non-edge derived from `(a, b)` (skipped when it collides).
    Insert(usize, usize),
}

fn raw_ops() -> impl Strategy<Value = Vec<(usize, RawOp)>> {
    // (batch boundary selector, op) pairs: `boundary % 4 == 0` starts a new
    // batch, so interleavings of batch sizes 1..~8 are all exercised.
    proptest::collection::vec((0usize..4, (0usize..3).prop_flat_map(op_strategy)), 1..60)
}

fn op_strategy(kind: usize) -> BoxedOpStrategy {
    BoxedOpStrategy { kind }
}

/// A tiny hand-rolled strategy: the compat proptest has no `prop_oneof`, so
/// the op kind is drawn as an integer and elaborated here.
#[derive(Debug, Clone)]
struct BoxedOpStrategy {
    kind: usize,
}

impl Strategy for BoxedOpStrategy {
    type Value = RawOp;

    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> RawOp {
        use rand::Rng;
        match self.kind {
            0 => RawOp::Delete(rng.gen_range(0..1024)),
            _ => RawOp::Insert(rng.gen_range(0..1024), rng.gen_range(0..1024)),
        }
    }
}

/// The naive reference model: endpoint pairs of live edges, keyed by stable
/// id, plus the expected next stable id.
struct Model {
    n: usize,
    live: HashMap<EdgeId, (usize, usize)>,
    present: HashSet<(usize, usize)>,
    next_stable: usize,
}

impl Model {
    fn from_graph(g: &Graph) -> Self {
        let mut live = HashMap::new();
        let mut present = HashSet::new();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            live.insert(e, (u.index(), v.index()));
            present.insert((u.index(), v.index()));
        }
        Model {
            n: g.n(),
            live,
            present,
            next_stable: g.m(),
        }
    }

    /// Materializes raw ops into a valid batch and applies it to the model.
    fn build_and_apply(&mut self, ops: &[RawOp]) -> UpdateBatch {
        let mut batch = UpdateBatch::empty();
        let mut doomed: HashSet<EdgeId> = HashSet::new();
        let mut added: HashSet<(usize, usize)> = HashSet::new();
        for op in ops {
            match *op {
                RawOp::Delete(pick) => {
                    let mut alive: Vec<EdgeId> = self
                        .live
                        .keys()
                        .copied()
                        .filter(|s| !doomed.contains(s))
                        .collect();
                    alive.sort_unstable();
                    if alive.is_empty() {
                        continue;
                    }
                    let stable = alive[pick % alive.len()];
                    doomed.insert(stable);
                    batch.delete.push(stable);
                }
                RawOp::Insert(a, b) => {
                    let (u, v) = (a % self.n, b % self.n);
                    if u == v {
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    let deleted_now = doomed.iter().any(|s| self.live[s] == key);
                    let occupied =
                        (self.present.contains(&key) && !deleted_now) || added.contains(&key);
                    if occupied {
                        continue;
                    }
                    added.insert(key);
                    batch.insert.push(key);
                }
            }
        }
        // Apply to the model.
        for stable in &batch.delete {
            let key = self.live.remove(stable).expect("model tracked the edge");
            self.present.remove(&key);
        }
        for &key in &batch.insert {
            let stable = EdgeId::new(self.next_stable);
            self.next_stable += 1;
            self.live.insert(stable, key);
            self.present.insert(key);
        }
        batch
    }
}

/// Checks the CSR invariants of the current snapshot plus the stable-id
/// bijection, and compares the graph against the model.
fn assert_consistent(dg: &DynamicGraph, model: &Model) {
    let g = dg.graph();
    dg.validate().expect("stable-id bookkeeping");

    // CSR invariants (as in properties.rs): degree sums, sorted adjacency,
    // neighbor/endpoint cross-consistency.
    assert_eq!(g.degree_sum(), 2 * g.m(), "handshake lemma");
    for v in g.nodes() {
        let slice = g.neighbors(v);
        assert_eq!(slice.len(), g.degree(v));
        for pair in slice.windows(2) {
            assert!(pair[0].node < pair[1].node, "adjacency not sorted at {v}");
        }
        for nb in slice {
            assert!(g.is_endpoint(nb.edge, v));
            assert_eq!(g.other_endpoint(nb.edge, v), nb.node);
            assert_eq!(g.edge_between(v, nb.node), Some(nb.edge));
        }
    }

    // EdgeId bijection: stable → internal → stable round-trips, and the
    // graph's edge set equals the model's, endpoint for endpoint.
    assert_eq!(g.m(), model.live.len(), "edge count diverged from model");
    for (stable, &(u, v)) in &model.live {
        let internal = dg
            .internal_id(*stable)
            .unwrap_or_else(|| panic!("model edge {stable} not live in the graph"));
        assert_eq!(dg.stable_id(internal), *stable, "bijection broken");
        assert_eq!(
            dg.endpoints_stable(*stable),
            Some((NodeId::new(u), NodeId::new(v)))
        );
        assert_eq!(g.endpoints(internal), (NodeId::new(u), NodeId::new(v)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interleaved_batches_preserve_all_invariants(
        (seed_graph, ops) in (0u64..4, 6usize..14).prop_flat_map(|(shape, size)| {
            (Just((shape, size)), raw_ops())
        })
    ) {
        let (shape, size) = seed_graph;
        let g = match shape {
            0 => generators::grid_torus(3.max(size / 2), 3.max(size / 2)),
            1 => generators::path(size * 2),
            2 => generators::random_tree(size * 3, 7 + size as u64),
            _ => generators::erdos_renyi(size * 2, 0.3, size as u64),
        };
        let mut model = Model::from_graph(&g);
        let mut dg = DynamicGraph::from_graph(g);
        assert_consistent(&dg, &model);

        // Split the op stream into batches at the generated boundaries.
        let mut batches: Vec<Vec<RawOp>> = vec![Vec::new()];
        for (boundary, op) in ops {
            if boundary == 0 && !batches.last().unwrap().is_empty() {
                batches.push(Vec::new());
            }
            batches.last_mut().unwrap().push(op);
        }

        for raw in &batches {
            let batch = model.build_and_apply(raw);
            let diff = dg.apply(&batch).expect("materialized batches are valid");
            prop_assert_eq!(diff.deleted.len(), batch.delete.len());
            prop_assert_eq!(diff.inserted.len(), batch.insert.len());
            prop_assert_eq!(diff.new_m, model.live.len());
            // Survivor map: injective over survivors, None exactly for doomed.
            let mut targets = HashSet::new();
            for (old, target) in diff.survivor_map.iter().enumerate() {
                if let Some(t) = target {
                    prop_assert!(targets.insert(*t), "survivor map not injective");
                    prop_assert!(t.index() < diff.new_m);
                } else {
                    // None entries must correspond to a deleted stable id.
                    prop_assert!(old < diff.old_m);
                }
            }
            prop_assert_eq!(
                diff.survivor_map.iter().filter(|t| t.is_none()).count(),
                batch.delete.len()
            );
            assert_consistent(&dg, &model);
        }
    }

    #[test]
    fn invalid_batches_are_rejected_atomically(
        (n, pick, flip) in (4usize..20, 0usize..64, 0u8..3)
    ) {
        let g = generators::cycle(n);
        let mut dg = DynamicGraph::from_graph(g);
        let before_m = dg.m();
        let snapshot = dg.graph().clone();
        let bad = match flip {
            // Unknown stable id mixed into otherwise valid ops.
            0 => UpdateBatch {
                delete: vec![EdgeId::new(pick % n), EdgeId::new(n + 5)],
                insert: vec![(0, 2)],
            },
            // Duplicate of a live edge, after a valid delete elsewhere.
            1 => UpdateBatch {
                delete: vec![EdgeId::new(pick % n)],
                insert: vec![((pick + 2) % n, (pick + 3) % n)],
            },
            // Self loop at the end of a long valid prefix.
            _ => UpdateBatch {
                delete: vec![EdgeId::new(pick % n)],
                insert: vec![(0, 2), (1, 1)],
            },
        };
        // `flip == 1` deletes edge k = pick % n (connecting k and k+1) and
        // re-inserts a *different* live cycle edge, so it is always invalid.
        prop_assert!(dg.apply(&bad).is_err());
        prop_assert_eq!(dg.m(), before_m);
        prop_assert_eq!(dg.graph(), &snapshot);
        dg.validate().expect("rejection left the bookkeeping intact");
    }
}
