//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the `proptest 1` API used by this workspace:
//! the [`proptest!`] macro, `prop_assert*` macros, [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`] and [`test_runner::ProptestConfig`].
//!
//! Cases are generated from a deterministic per-test, **per-case** seed, so
//! failures reproduce across runs and a single failing case can be replayed
//! without regenerating its predecessors. There is **no shrinking**: a
//! failing case is reported as-is.
//!
//! # Failure persistence (`proptest-regressions/`)
//!
//! Like upstream proptest, a failing case is persisted next to its source
//! file — `<dir of test>/proptest-regressions/<file stem>.txt`, one
//! `cc <test path> case <index>` line per counterexample — and every
//! persisted case is **replayed first** on subsequent runs, before the
//! regular random cases. Check these files into source control: that is
//! what makes adversarial counterexamples (e.g. the fault-injection
//! batteries') reproduce across machines and CI runs. See
//! `crates/compat/README.md` for the full caveat list.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration, errors, the deterministic case RNG and the
    //! failure-persistence layer.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::cell::RefCell;
    use std::path::{Path, PathBuf};

    /// Per-block configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the offline suite fast while
            // still exercising a meaningful spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result type every generated property body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// A deterministic RNG derived from the test's fully qualified name.
        pub fn deterministic(name: &str) -> Self {
            TestRng(ChaCha8Rng::seed_from_u64(fnv1a(name)))
        }

        /// A deterministic RNG for one specific case of a test: replaying
        /// case `k` needs no knowledge of cases `0..k` (the property the
        /// persisted-counterexample replay relies on).
        pub fn for_case(name: &str, case: u32) -> Self {
            // Avalanche the case index into the name hash so consecutive
            // cases decorrelate.
            let mut z =
                fnv1a(name) ^ (u64::from(case).wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            TestRng(ChaCha8Rng::seed_from_u64(z ^ (z >> 31)))
        }
    }

    /// FNV-1a over the test path: a stable per-test seed.
    fn fnv1a(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    thread_local! {
        /// Test-only override of the persistence directory (keeps the
        /// stand-in's own failure-path tests from writing into the source
        /// tree).
        static PERSIST_DIR_OVERRIDE: RefCell<Option<PathBuf>> = const { RefCell::new(None) };
    }

    /// Overrides where this thread persists/loads failure seeds (`None`
    /// restores the default source-adjacent location). Intended for tests
    /// of the persistence machinery itself.
    pub fn override_persist_dir_for_test(dir: Option<PathBuf>) {
        PERSIST_DIR_OVERRIDE.with(|o| *o.borrow_mut() = dir);
    }

    /// The `proptest-regressions/<stem>.txt` file for a test source file
    /// (`source` is the `file!()` path, relative to the workspace root).
    /// Resolved by walking up from the current directory until the source
    /// path exists — cargo runs test binaries from the *package* root, but
    /// `file!()` paths are workspace-relative. `None` when the source tree
    /// is not reachable (e.g. running an installed binary), in which case
    /// persistence is silently disabled.
    pub fn regression_file_for(source: &str) -> Option<PathBuf> {
        if let Some(dir) = PERSIST_DIR_OVERRIDE.with(|o| o.borrow().clone()) {
            let stem = Path::new(source).file_stem()?.to_owned();
            return Some(dir.join(stem).with_extension("txt"));
        }
        let mut root = std::env::current_dir().ok()?;
        loop {
            if root.join(source).exists() {
                let resolved = root.join(source);
                let dir = resolved.parent()?.join("proptest-regressions");
                let stem = resolved.file_stem()?.to_owned();
                return Some(dir.join(stem).with_extension("txt"));
            }
            if !root.pop() {
                return None;
            }
        }
    }

    /// The persisted counterexample case indices for one test, in file
    /// order. Lines have the shape `cc <test path> case <index>`.
    pub fn load_persisted(source: &str, test_path: &str) -> Vec<u32> {
        let Some(file) = regression_file_for(source) else {
            return Vec::new();
        };
        let Ok(content) = std::fs::read_to_string(file) else {
            return Vec::new();
        };
        content
            .lines()
            .filter_map(|line| {
                let rest = line.strip_prefix("cc ")?;
                let (name, case) = rest.rsplit_once(" case ")?;
                if name.trim() != test_path {
                    return None;
                }
                case.trim().parse().ok()
            })
            .collect()
    }

    /// Persists a failing case so later runs replay it first. Appends
    /// `cc <test path> case <index>` (deduplicated) to the test file's
    /// regression file, creating it with an explanatory header if needed.
    /// Returns the file written, `None` when persistence is unavailable or
    /// the entry already exists.
    pub fn persist_failure(source: &str, test_path: &str, case: u32) -> Option<PathBuf> {
        let file = regression_file_for(source)?;
        let entry = format!("cc {test_path} case {case}");
        let existing = std::fs::read_to_string(&file).unwrap_or_default();
        if existing.lines().any(|l| l.trim() == entry) {
            return None;
        }
        std::fs::create_dir_all(file.parent()?).ok()?;
        let mut content = if existing.is_empty() {
            "# Seeds for failure cases found by the offline proptest stand-in.\n\
             # Each line replays one counterexample (`cc <test> case <index>`,\n\
             # regenerated via `TestRng::for_case`). Check this file into\n\
             # source control so counterexamples reproduce everywhere.\n"
                .to_string()
        } else {
            existing
        };
        if !content.ends_with('\n') {
            content.push('\n');
        }
        content.push_str(&entry);
        content.push('\n');
        std::fs::write(&file, content).ok()?;
        Some(file)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An (inclusive) range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1) - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: (*r.end()).max(*r.start()),
            }
        }
    }

    /// Strategy generating `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with sizes drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi <= self.size.lo {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the enclosing property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            left
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let source = file!();
                let test_path = concat!(module_path!(), "::", stringify!($name));
                // `mut` stays even when no strategy captures mutably:
                // whether the closure is Fn or FnMut depends on the
                // caller's strategy expressions.
                #[allow(unused_mut)]
                let mut run_case = |case: u32, replayed: bool| {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        let persisted = if replayed {
                            ::std::option::Option::None
                        } else {
                            $crate::test_runner::persist_failure(source, test_path, case)
                        };
                        match (replayed, persisted) {
                            (true, _) => panic!(
                                "proptest persisted counterexample case {} of `{}` failed: {}",
                                case,
                                stringify!($name),
                                err
                            ),
                            (false, ::std::option::Option::Some(file)) => panic!(
                                "proptest case {}/{} of `{}` failed (persisted to {}): {}",
                                case + 1,
                                config.cases,
                                stringify!($name),
                                file.display(),
                                err
                            ),
                            (false, ::std::option::Option::None) => panic!(
                                "proptest case {}/{} of `{}` failed: {}",
                                case + 1,
                                config.cases,
                                stringify!($name),
                                err
                            ),
                        }
                    }
                };
                // Persisted counterexamples replay first, then the regular
                // random cases — minus the ones the replay already covered
                // (per-case seeding makes the re-run byte-identical, so it
                // would only double the cost of exactly the slow cases).
                let persisted = $crate::test_runner::load_persisted(source, test_path);
                for &case in &persisted {
                    run_case(case, true);
                }
                for case in 0..config.cases {
                    if !persisted.contains(&case) {
                        run_case(case, false);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn flat_map_sees_outer_value((n, v) in (1usize..10).prop_flat_map(|n| {
            collection::vec(0..n, 1..20).prop_map(move |v| (n, v))
        })) {
            prop_assert!(!v.is_empty());
            for &x in &v {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn exact_size_vecs(v in collection::vec(0usize..5, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }

    #[test]
    fn failing_property_panics_and_persists_its_seed() {
        // Route persistence into a scratch directory so the stand-in's own
        // failure-path test does not write into the source tree.
        let dir =
            std::env::temp_dir().join(format!("proptest-compat-selftest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        crate::test_runner::override_persist_dir_for_test(Some(dir.clone()));
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0usize..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
        let message = result
            .unwrap_err()
            .downcast::<String>()
            .expect("panic carries a String");
        assert!(
            message.contains("persisted to"),
            "failure message must point at the seed file: {message}"
        );
        // The seed file exists, names this test and replays on demand.
        let file = crate::test_runner::regression_file_for(file!()).expect("override set");
        let content = std::fs::read_to_string(&file).expect("seed file written");
        assert!(content.starts_with('#'), "header comment present");
        assert!(content.contains("::always_fails case 0"), "{content}");
        let persisted = crate::test_runner::load_persisted(
            file!(),
            &format!("{}::always_fails", module_path!()),
        );
        assert_eq!(persisted, vec![0]);
        // A duplicate failure does not duplicate the entry.
        assert_eq!(
            crate::test_runner::persist_failure(
                file!(),
                &format!("{}::always_fails", module_path!()),
                0
            ),
            None
        );
        crate::test_runner::override_persist_dir_for_test(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_case_rng_is_stable_and_decorrelated() {
        use rand::RngCore;
        let mut a = crate::test_runner::TestRng::for_case("mod::test", 3);
        let mut b = crate::test_runner::TestRng::for_case("mod::test", 3);
        assert_eq!(a.next_u64(), b.next_u64(), "same case replays identically");
        let mut c = crate::test_runner::TestRng::for_case("mod::test", 4);
        assert_ne!(a.next_u64(), c.next_u64(), "cases decorrelate");
        let mut d = crate::test_runner::TestRng::for_case("mod::other", 3);
        assert_ne!(b.next_u64(), d.next_u64(), "tests decorrelate");
    }

    #[test]
    fn regression_file_resolves_next_to_the_source() {
        // No override on this thread: the default resolution walks up to
        // the workspace root and lands next to this source file.
        let file = crate::test_runner::regression_file_for(file!())
            .expect("source tree is reachable from the test cwd");
        assert!(file.ends_with("proptest-regressions/lib.txt"), "{file:?}");
        assert!(file
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .join("lib.rs")
            .exists());
        // Unknown sources disable persistence instead of misfiling seeds.
        assert_eq!(
            crate::test_runner::regression_file_for("no/such/file.rs"),
            None
        );
    }
}
