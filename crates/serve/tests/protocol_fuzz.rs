//! Protocol fuzz battery for the serve wire codec.
//!
//! Arbitrary byte soup, truncated prefixes of valid encodings, single-byte
//! mutations and hostile frame headers are all fed through
//! [`Request::decode`], [`Response::decode`] and [`read_frame`]; the codec
//! must never panic, must always answer with a typed
//! [`distserve::ProtocolError`], and must round-trip every valid frame
//! bit-for-bit. Mirrors the corruption-battery style of
//! `crates/store/tests/snapshot_corruption.rs`.

use distserve::wire::{
    read_frame, write_frame, LookupOutcome, MetricsReport, RejectCode, Request, Response,
    MAX_FRAME_LEN,
};
use distserve::{ProtocolError, WireError};
use proptest::prelude::*;
use std::io::Cursor;

/// Arbitrary raw payload bytes (possibly empty, possibly huge counts).
fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..160)
}

/// Hand-rolled request strategy: the compat proptest has no `prop_oneof`,
/// so a variant selector integer is elaborated with the test RNG.
#[derive(Debug, Clone)]
struct ArbRequest;

impl Strategy for ArbRequest {
    type Value = Request;

    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> Request {
        use rand::Rng;
        match rng.gen_range(0..8usize) {
            0 => Request::Lookup {
                stable: rng.gen_range(0..u64::MAX),
            },
            1 => {
                let deletes = rng.gen_range(0..5usize);
                let inserts = rng.gen_range(0..5usize);
                Request::Submit {
                    delete: (0..deletes).map(|_| rng.gen_range(0..u64::MAX)).collect(),
                    insert: (0..inserts)
                        .map(|_| (rng.gen_range(0..u32::MAX), rng.gen_range(0..u32::MAX)))
                        .collect(),
                }
            }
            2 => Request::Metrics,
            3 => Request::Palette,
            4 => Request::ShardInfo {
                shards: rng.gen_range(0..u32::MAX),
            },
            5 => {
                let len = rng.gen_range(0..24usize);
                let path: String = (0..len)
                    .map(|_| char::from(rng.gen_range(32u8..127)))
                    .collect();
                Request::Swap { path }
            }
            6 => Request::Flush,
            _ => Request::Shutdown,
        }
    }
}

/// Hand-rolled response strategy covering every opcode and outcome shape.
#[derive(Debug, Clone)]
struct ArbResponse;

impl Strategy for ArbResponse {
    type Value = Response;

    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> Response {
        use rand::Rng;
        let detail: String = {
            let len = rng.gen_range(0..24usize);
            (0..len)
                .map(|_| char::from(rng.gen_range(32u8..127)))
                .collect()
        };
        match rng.gen_range(0..12usize) {
            0 => {
                let outcome = match rng.gen_range(0..3usize) {
                    0 => LookupOutcome::Unknown,
                    1 => LookupOutcome::Colored {
                        color: rng.gen_range(0..u64::MAX),
                        u: rng.gen_range(0..u64::MAX),
                        v: rng.gen_range(0..u64::MAX),
                    },
                    _ => LookupOutcome::Uncolored {
                        u: rng.gen_range(0..u64::MAX),
                        v: rng.gen_range(0..u64::MAX),
                    },
                };
                Response::Color {
                    epoch: rng.gen_range(0..u64::MAX),
                    version: rng.gen_range(0..u64::MAX),
                    outcome,
                }
            }
            1 => Response::Submitted {
                ticket: rng.gen_range(0..u64::MAX),
                queued: rng.gen_range(0..u32::MAX),
            },
            2 => {
                let code = match rng.gen_range(0..6usize) {
                    0 => RejectCode::QueueFull,
                    1 => RejectCode::UnknownEdge,
                    2 => RejectCode::DuplicateEdge,
                    3 => RejectCode::NodeOutOfRange,
                    4 => RejectCode::SelfLoop,
                    _ => RejectCode::SwapInProgress,
                };
                Response::Rejected { code, detail }
            }
            3 => {
                let m = MetricsReport {
                    epoch: rng.gen_range(0..u64::MAX),
                    lookups: rng.gen_range(0..u64::MAX),
                    repaired_edges: rng.gen_range(0..u64::MAX),
                    repair_p95_ms: rng.gen_range(0.0..1.0e6),
                    ..MetricsReport::default()
                };
                Response::Metrics(m)
            }
            4 => Response::Palette {
                epoch: rng.gen_range(0..u64::MAX),
                palette: rng.gen_range(0..u64::MAX),
                max_degree: rng.gen_range(0..u64::MAX),
                colors_used: rng.gen_range(0..u64::MAX),
            },
            5 => Response::Shards {
                shards: rng.gen_range(0..u32::MAX),
                cut_edges: rng.gen_range(0..u64::MAX),
                cut_fraction: rng.gen_range(0.0..1.0),
                balance_factor: rng.gen_range(0.0..64.0),
            },
            6 => Response::Swapped {
                epoch: rng.gen_range(0..u64::MAX),
                n: rng.gen_range(0..u64::MAX),
                m: rng.gen_range(0..u64::MAX),
            },
            7 => Response::SwapRejected { detail },
            8 => Response::Flushed {
                epoch: rng.gen_range(0..u64::MAX),
                version: rng.gen_range(0..u64::MAX),
                ticks: rng.gen_range(0..u64::MAX),
            },
            9 => Response::ShuttingDown,
            10 => Response::ServerError { detail },
            _ => Response::ProtocolRejected { detail },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary payload bytes: the decoders must return `Ok` or a typed
    /// error — never panic, never allocate unbounded buffers.
    #[test]
    fn arbitrary_payloads_never_panic(bytes in arb_bytes()) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Every valid request encoding decodes back to itself.
    #[test]
    fn requests_round_trip(req in ArbRequest) {
        let encoded = req.encode();
        prop_assert_eq!(Request::decode(&encoded), Ok(req));
    }

    /// Every valid response encoding decodes back to itself (bit-exact,
    /// including the f64 fields carried as `to_bits`).
    #[test]
    fn responses_round_trip(resp in ArbResponse) {
        let encoded = resp.encode();
        prop_assert_eq!(Response::decode(&encoded), Ok(resp));
    }

    /// Every strict prefix of a valid encoding is an error, not a panic and
    /// not a silent partial decode: the payload grammar has no valid
    /// strict prefixes because `finish` demands full consumption.
    #[test]
    fn truncated_requests_yield_typed_errors(req in ArbRequest, cut in 0usize..4096) {
        let encoded = req.encode();
        let cut = cut % encoded.len(); // encode() is never empty (opcode byte)
        prop_assert!(Request::decode(&encoded[..cut]).is_err());
    }

    /// Same for responses.
    #[test]
    fn truncated_responses_yield_typed_errors(resp in ArbResponse, cut in 0usize..4096) {
        let encoded = resp.encode();
        let cut = cut % encoded.len();
        prop_assert!(Response::decode(&encoded[..cut]).is_err());
    }

    /// Single-byte mutations of a valid encoding never panic the decoder;
    /// they either still decode (the flip landed in a value) or fail typed.
    #[test]
    fn mutated_requests_never_panic(req in ArbRequest, pos in 0usize..4096, flip in 1u8..=255) {
        let mut encoded = req.encode();
        let pos = pos % encoded.len();
        encoded[pos] ^= flip;
        let _ = Request::decode(&encoded);
        let _ = Response::decode(&encoded);
    }

    /// Appending trailing garbage to a valid encoding is always rejected
    /// (`TrailingBytes`), keeping framing honest.
    #[test]
    fn trailing_bytes_are_rejected(req in ArbRequest, extra in 1usize..16) {
        let mut encoded = req.encode();
        encoded.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert_eq!(
            Request::decode(&encoded),
            Err(ProtocolError::TrailingBytes { extra })
        );
    }

    /// Frame streams assembled from valid frames read back in order; the
    /// reader then reports a clean end-of-stream.
    #[test]
    fn frame_streams_round_trip(reqs in proptest::collection::vec(ArbRequest, 1..6)) {
        let mut stream = Vec::new();
        for req in &reqs {
            write_frame(&mut stream, &req.encode()).expect("valid frames write");
        }
        let mut cursor = Cursor::new(stream);
        for req in &reqs {
            let payload = read_frame(&mut cursor)
                .expect("frame reads")
                .expect("frame present");
            let decoded = Request::decode(&payload);
            prop_assert_eq!(decoded.as_ref(), Ok(req));
        }
        prop_assert!(matches!(read_frame(&mut cursor), Ok(None)));
    }

    /// Arbitrary bytes fed to the frame reader never panic: they surface as
    /// frames (whose payloads then decode or fail typed), framing errors,
    /// or clean EOF — and the reader never over-allocates on hostile
    /// length declarations.
    #[test]
    fn arbitrary_streams_never_panic_the_reader(bytes in arb_bytes()) {
        let mut cursor = Cursor::new(bytes);
        loop {
            match read_frame(&mut cursor) {
                Ok(Some(payload)) => {
                    let _ = Request::decode(&payload);
                }
                Ok(None) => break,
                Err(WireError::Protocol(_)) => break, // typed: desync, stop
                Err(WireError::Io(_)) => break,       // truncated mid-frame
            }
        }
    }

    /// A frame header declaring a hostile length (zero or beyond the cap)
    /// is rejected before any payload allocation happens.
    #[test]
    fn hostile_lengths_are_rejected(extra in 0u32..1024) {
        let oversize = (MAX_FRAME_LEN as u32).saturating_add(extra + 1);
        let mut stream = oversize.to_le_bytes().to_vec();
        stream.extend_from_slice(&[0u8; 8]);
        match read_frame(&mut Cursor::new(stream)) {
            Err(WireError::Protocol(ProtocolError::FrameTooLarge { len })) => {
                prop_assert_eq!(len, oversize as usize);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {:?}", other.map(|_| ())),
        }
        let zero = 0u32.to_le_bytes().to_vec();
        match read_frame(&mut Cursor::new(zero)) {
            Err(WireError::Protocol(ProtocolError::EmptyFrame)) => {}
            other => prop_assert!(false, "expected EmptyFrame, got {:?}", other.map(|_| ())),
        }
    }
}

/// A frame that ends mid-payload is `Truncated` — distinguishable from the
/// clean between-frames EOF (`Ok(None)`).
#[test]
fn eof_inside_a_frame_is_truncated() {
    let payload = Request::Metrics.encode();
    let mut stream = Vec::new();
    write_frame(&mut stream, &payload).unwrap();
    stream.truncate(stream.len() - 1);
    match read_frame(&mut Cursor::new(stream)) {
        Err(WireError::Protocol(ProtocolError::Truncated { expected, have })) => {
            assert_eq!(expected, payload.len());
            assert_eq!(have, payload.len() - 1);
        }
        other => panic!("expected Truncated, got {:?}", other.map(|_| ())),
    }
}

/// Unknown opcodes and tags surface as their own typed errors with the
/// offending byte, not as generic failures.
#[test]
fn unknown_opcodes_and_tags_are_typed() {
    assert_eq!(
        Request::decode(&[0x7F]),
        Err(ProtocolError::UnknownOpcode(0x7F))
    );
    assert_eq!(
        Response::decode(&[0x01]),
        Err(ProtocolError::UnknownOpcode(0x01))
    );
    // 0x83 = Rejected; tag 99 is not a RejectCode.
    let bad_tag = vec![0x83, 99, 0, 0, 0, 0];
    match Response::decode(&bad_tag) {
        Err(ProtocolError::UnknownTag { field, tag }) => {
            assert_eq!(field, "reject code");
            assert_eq!(tag, 99);
        }
        other => panic!("expected UnknownTag, got {other:?}"),
    }
}

/// A declared element count far beyond the remaining bytes is refused
/// before allocation (`CountTooLarge`), so hostile counts cannot OOM.
#[test]
fn hostile_counts_are_refused_before_allocation() {
    // Submit opcode + delete count u32::MAX with no element bytes.
    let mut payload = vec![0x02];
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    match Request::decode(&payload) {
        Err(ProtocolError::CountTooLarge { declared, .. }) => {
            assert_eq!(declared, u32::MAX as usize);
        }
        other => panic!("expected CountTooLarge, got {other:?}"),
    }
}
