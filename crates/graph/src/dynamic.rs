//! A dynamic-graph mutation layer over the CSR substrate.
//!
//! The paper's algorithms color a *static* graph, but serving workloads see
//! edges arriving and leaving continuously. [`DynamicGraph`] applies
//! insert/delete batches ([`UpdateBatch`]) on top of the immutable [`Graph`]
//! CSR representation and maintains a **stable edge identity**: every edge
//! ever inserted gets a stable [`EdgeId`] that survives arbitrary later
//! mutations, while the underlying CSR keeps its dense `0..m` internal ids.
//! Each committed batch yields a [`BatchDiff`] describing exactly how the
//! dense id space moved, which is what the incremental recoloring layer
//! (`edgecolor::recolor`) and the incremental verifier
//! (`edgecolor_verify::check_delta`) consume.
//!
//! Batches are applied atomically: if any operation in the batch is invalid
//! (unknown stable id, self loop, duplicate edge) the whole batch is rejected
//! and the graph is left untouched. Within a batch, deletions are applied
//! before insertions, so a batch may delete an edge `{u, v}` and re-insert it
//! (the re-inserted edge receives a *fresh* stable id).
//!
//! Rebuilding the CSR costs `O(n + m)` per batch; the point of the dynamic
//! layer is not to make the *graph* update sublinear but to make the
//! *recoloring* after the update proportional to the batch, not to `m`.

use crate::coloring::EdgeColoring;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use std::collections::HashMap;

/// One atomic batch of edge mutations.
///
/// Deletions refer to **stable** edge ids (as returned in
/// [`BatchDiff::inserted`] or assigned at construction time); insertions are
/// raw endpoint pairs. Deletions are applied before insertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    /// Stable ids of edges to remove.
    pub delete: Vec<EdgeId>,
    /// Endpoint pairs of edges to add.
    pub insert: Vec<(usize, usize)>,
}

impl UpdateBatch {
    /// A batch with no operations.
    pub fn empty() -> Self {
        UpdateBatch::default()
    }

    /// Returns `true` if the batch performs no mutation.
    pub fn is_empty(&self) -> bool {
        self.delete.is_empty() && self.insert.is_empty()
    }

    /// Total number of operations in the batch.
    pub fn len(&self) -> usize {
        self.delete.len() + self.insert.len()
    }
}

/// The result of committing one [`UpdateBatch`]: how the dense (internal) edge
/// id space of the CSR moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchDiff {
    /// Number of edges before the batch.
    pub old_m: usize,
    /// Number of edges after the batch.
    pub new_m: usize,
    /// Stable ids of the deleted edges (batch order, deduplicated).
    pub deleted: Vec<EdgeId>,
    /// Stable ids assigned to the inserted edges (batch order).
    pub inserted: Vec<EdgeId>,
    /// New **internal** ids of the inserted edges (batch order; parallel to
    /// `inserted`). These are the "dirty" edges a local repair must color.
    pub inserted_internal: Vec<EdgeId>,
    /// For every old internal id, the new internal id of the same edge, or
    /// `None` if the edge was deleted by this batch.
    pub survivor_map: Vec<Option<EdgeId>>,
    /// Endpoints touched by the batch (sorted, deduplicated): the nodes whose
    /// incident edge set changed.
    pub touched_nodes: Vec<NodeId>,
}

impl BatchDiff {
    /// Carries a coloring of the pre-batch graph over to the post-batch dense
    /// id space: surviving edges keep their colors, inserted edges are
    /// uncolored.
    ///
    /// # Panics
    ///
    /// Panics if `old` does not have exactly [`BatchDiff::old_m`] entries.
    pub fn carry_coloring(&self, old: &EdgeColoring) -> EdgeColoring {
        assert_eq!(
            old.len(),
            self.old_m,
            "coloring does not match the pre-batch edge count"
        );
        let mut fresh = EdgeColoring::empty(self.new_m);
        for (old_idx, target) in self.survivor_map.iter().enumerate() {
            if let (Some(new_id), Some(c)) = (target, old.color(EdgeId::new(old_idx))) {
                fresh.set(*new_id, c);
            }
        }
        fresh
    }
}

/// An undirected simple graph under edge insert/delete batches, with stable
/// edge identities layered over the dense CSR ids of [`Graph`].
///
/// # Examples
///
/// ```
/// use distgraph::{DynamicGraph, UpdateBatch};
///
/// let mut dg = DynamicGraph::new(4);
/// let diff = dg
///     .apply(&UpdateBatch { delete: vec![], insert: vec![(0, 1), (1, 2)] })
///     .unwrap();
/// assert_eq!(dg.graph().m(), 2);
/// // Delete the first edge by its stable id; the second edge keeps its
/// // stable id even though its internal (dense) id shifts to 0.
/// let stable = diff.inserted[1];
/// let diff2 = dg
///     .apply(&UpdateBatch { delete: vec![diff.inserted[0]], insert: vec![] })
///     .unwrap();
/// assert_eq!(dg.graph().m(), 1);
/// assert_eq!(dg.internal_id(stable), Some(distgraph::EdgeId::new(0)));
/// assert_eq!(diff2.survivor_map, vec![None, Some(distgraph::EdgeId::new(0))]);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    graph: Graph,
    /// Internal (dense) id → stable id; length `m`.
    stable_of: Vec<EdgeId>,
    /// Stable id → internal id for the edges currently alive.
    internal_of: HashMap<EdgeId, EdgeId>,
    /// Next never-used stable id.
    next_stable: usize,
}

impl DynamicGraph {
    /// An edgeless dynamic graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            graph: Graph::from_edges(n, &[]).expect("edgeless graph is valid"),
            stable_of: Vec::new(),
            internal_of: HashMap::new(),
            next_stable: 0,
        }
    }

    /// Wraps an existing static graph; every edge's stable id starts equal to
    /// its internal id.
    pub fn from_graph(graph: Graph) -> Self {
        let m = graph.m();
        let stable_of: Vec<EdgeId> = (0..m).map(EdgeId::new).collect();
        let internal_of = stable_of.iter().map(|&e| (e, e)).collect();
        DynamicGraph {
            graph,
            stable_of,
            internal_of,
            next_stable: m,
        }
    }

    /// Reconstructs a dynamic graph from its saved parts: the CSR graph,
    /// the internal-id → stable-id table (length `m`) and the next stable id
    /// to assign. This is the binary-snapshot restore path (`diststore`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] if the table's length does not
    /// match the graph's edge count, a stable id repeats, or a stable id is
    /// `>= next_stable` — each of which a corrupted snapshot could encode.
    pub fn from_saved(
        graph: Graph,
        stable_of: Vec<EdgeId>,
        next_stable: usize,
    ) -> Result<Self, GraphError> {
        if stable_of.len() != graph.m() {
            return Err(GraphError::InvalidCsr {
                detail: format!(
                    "stable-id table has {} entries for {} edges",
                    stable_of.len(),
                    graph.m()
                ),
            });
        }
        let mut internal_of = HashMap::with_capacity(stable_of.len());
        for (internal, &stable) in stable_of.iter().enumerate() {
            if stable.index() >= next_stable {
                return Err(GraphError::InvalidCsr {
                    detail: format!(
                        "stable id {stable} is not below the next-stable watermark {next_stable}"
                    ),
                });
            }
            if internal_of.insert(stable, EdgeId::new(internal)).is_some() {
                return Err(GraphError::InvalidCsr {
                    detail: format!("stable id {stable} assigned to two edges"),
                });
            }
        }
        Ok(DynamicGraph {
            graph,
            stable_of,
            internal_of,
            next_stable,
        })
    }

    /// The current CSR snapshot. Internal (dense) ids of this graph are only
    /// valid until the next [`DynamicGraph::apply`] call.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The internal-id → stable-id table (length `m`), in internal id
    /// order — together with [`DynamicGraph::next_stable_id`] this is the
    /// state a binary snapshot persists.
    #[inline]
    pub fn stable_table(&self) -> &[EdgeId] {
        &self.stable_of
    }

    /// The next never-used stable id.
    #[inline]
    pub fn next_stable_id(&self) -> usize {
        self.next_stable
    }

    /// Number of nodes (fixed for the lifetime of the dynamic graph).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of currently live edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// The stable id of the edge with internal id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the current graph.
    #[inline]
    pub fn stable_id(&self, e: EdgeId) -> EdgeId {
        self.stable_of[e.index()]
    }

    /// The current internal id of the edge with stable id `stable`, or `None`
    /// if that edge is not alive.
    #[inline]
    pub fn internal_id(&self, stable: EdgeId) -> Option<EdgeId> {
        self.internal_of.get(&stable).copied()
    }

    /// Returns `true` if the edge with stable id `stable` is currently alive.
    pub fn is_live(&self, stable: EdgeId) -> bool {
        self.internal_of.contains_key(&stable)
    }

    /// Iterator over the stable ids of the live edges, in internal id order.
    pub fn stable_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.stable_of.iter().copied()
    }

    /// Endpoints of a live edge addressed by stable id.
    pub fn endpoints_stable(&self, stable: EdgeId) -> Option<(NodeId, NodeId)> {
        self.internal_id(stable).map(|e| self.graph.endpoints(e))
    }

    /// Applies one batch atomically: all deletions, then all insertions.
    ///
    /// # Errors
    ///
    /// The whole batch is rejected (and the graph left untouched) if any
    /// deletion names a stable id that is not alive (or repeats within the
    /// batch), or any insertion is a self loop, out of range, or duplicates an
    /// edge that exists after the deletions (including earlier insertions of
    /// the same batch).
    ///
    /// # Examples
    ///
    /// ```
    /// use distgraph::{DynamicGraph, EdgeId, Graph, UpdateBatch};
    ///
    /// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
    /// let mut dg = DynamicGraph::from_graph(g);
    /// let diff = dg.apply(&UpdateBatch {
    ///     delete: vec![EdgeId::new(1)],     // drop (1,2) by stable id
    ///     insert: vec![(0, 3)],             // close the path into a cycle
    /// })?;
    /// assert_eq!(dg.m(), 3);
    /// assert_eq!(diff.inserted.len(), 1);
    /// // Survivors keep their identity across the id compaction:
    /// assert!(dg.is_live(EdgeId::new(0)));
    /// assert!(!dg.is_live(EdgeId::new(1)));
    ///
    /// // Invalid batches are rejected atomically — the graph is untouched.
    /// let before = dg.graph().clone();
    /// assert!(dg.apply(&UpdateBatch { delete: vec![EdgeId::new(1)], insert: vec![] }).is_err());
    /// assert_eq!(dg.graph(), &before);
    /// # Ok::<(), distgraph::GraphError>(())
    /// ```
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<BatchDiff, GraphError> {
        let n = self.n();
        let old_m = self.m();

        // Validate deletions and mark doomed internal ids.
        let mut doomed = vec![false; old_m];
        let mut deleted = Vec::with_capacity(batch.delete.len());
        for &stable in &batch.delete {
            let internal = self
                .internal_id(stable)
                .ok_or(GraphError::UnknownEdge { id: stable.index() })?;
            if doomed[internal.index()] {
                return Err(GraphError::UnknownEdge { id: stable.index() });
            }
            doomed[internal.index()] = true;
            deleted.push(stable);
        }

        // Validate insertions against the post-deletion edge set.
        let mut present: std::collections::HashSet<(usize, usize)> = self
            .graph
            .edges()
            .filter(|e| !doomed[e.index()])
            .map(|e| {
                let (u, v) = self.graph.endpoints(e);
                (u.index(), v.index())
            })
            .collect();
        for &(u, v) in &batch.insert {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            if !present.insert((u.min(v), u.max(v))) {
                return Err(GraphError::DuplicateEdge { u, v });
            }
        }

        // Build the new edge list: survivors in internal order, then inserts
        // in batch order. This makes the remapping deterministic.
        let mut raw: Vec<(usize, usize)> =
            Vec::with_capacity(old_m - deleted.len() + batch.insert.len());
        let mut new_stable_of: Vec<EdgeId> = Vec::with_capacity(raw.capacity());
        let mut survivor_map: Vec<Option<EdgeId>> = vec![None; old_m];
        for e in self.graph.edges() {
            if doomed[e.index()] {
                continue;
            }
            let (u, v) = self.graph.endpoints(e);
            survivor_map[e.index()] = Some(EdgeId::new(raw.len()));
            raw.push((u.index(), v.index()));
            new_stable_of.push(self.stable_of[e.index()]);
        }
        let mut inserted = Vec::with_capacity(batch.insert.len());
        let mut inserted_internal = Vec::with_capacity(batch.insert.len());
        let mut next_stable = self.next_stable;
        for &(u, v) in &batch.insert {
            let stable = EdgeId::new(next_stable);
            next_stable += 1;
            inserted.push(stable);
            inserted_internal.push(EdgeId::new(raw.len()));
            raw.push((u, v));
            new_stable_of.push(stable);
        }

        let graph = Graph::from_edges(n, &raw).expect("validated batch builds a simple graph");

        // Touched endpoints: every endpoint of a deleted or inserted edge.
        let mut touched: Vec<NodeId> = Vec::with_capacity(2 * (deleted.len() + inserted.len()));
        for e in self.graph.edges() {
            if doomed[e.index()] {
                let (u, v) = self.graph.endpoints(e);
                touched.push(u);
                touched.push(v);
            }
        }
        for &(u, v) in &batch.insert {
            touched.push(NodeId::new(u));
            touched.push(NodeId::new(v));
        }
        touched.sort_unstable();
        touched.dedup();

        // Commit.
        self.graph = graph;
        self.stable_of = new_stable_of;
        self.internal_of = self
            .stable_of
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, EdgeId::new(i)))
            .collect();
        self.next_stable = next_stable;

        Ok(BatchDiff {
            old_m,
            new_m: self.m(),
            deleted,
            inserted,
            inserted_internal,
            survivor_map,
            touched_nodes: touched,
        })
    }

    /// Checks the stable↔internal id bookkeeping invariants; intended for the
    /// fuzz-style test battery.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.stable_of.len() != self.graph.m() {
            return Err(format!(
                "stable_of has {} entries for {} edges",
                self.stable_of.len(),
                self.graph.m()
            ));
        }
        if self.internal_of.len() != self.stable_of.len() {
            return Err(format!(
                "internal_of has {} entries for {} live edges (stable ids not unique?)",
                self.internal_of.len(),
                self.stable_of.len()
            ));
        }
        for (i, &stable) in self.stable_of.iter().enumerate() {
            if stable.index() >= self.next_stable {
                return Err(format!(
                    "live stable id {stable} is not below the allocator watermark {}",
                    self.next_stable
                ));
            }
            match self.internal_of.get(&stable) {
                Some(&internal) if internal == EdgeId::new(i) => {}
                other => {
                    return Err(format!(
                        "stable id {stable} maps to {other:?}, expected internal e{i}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(delete: Vec<EdgeId>, insert: Vec<(usize, usize)>) -> UpdateBatch {
        UpdateBatch { delete, insert }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut dg = DynamicGraph::new(3);
        let diff = dg.apply(&UpdateBatch::empty()).unwrap();
        assert!(UpdateBatch::empty().is_empty());
        assert_eq!(UpdateBatch::empty().len(), 0);
        assert_eq!(diff.new_m, 0);
        assert!(diff.touched_nodes.is_empty());
        dg.validate().unwrap();
    }

    #[test]
    fn insert_then_delete_keeps_stable_ids() {
        let mut dg = DynamicGraph::new(5);
        let d1 = dg
            .apply(&batch(vec![], vec![(0, 1), (1, 2), (2, 3)]))
            .unwrap();
        assert_eq!(d1.inserted.len(), 3);
        assert_eq!(dg.m(), 3);
        let keep = d1.inserted[2];
        let d2 = dg
            .apply(&batch(vec![d1.inserted[0]], vec![(3, 4)]))
            .unwrap();
        assert_eq!(dg.m(), 3);
        // Edge (2,3) survived with a shifted internal id but the same stable id.
        let internal = dg.internal_id(keep).unwrap();
        assert_eq!(
            dg.graph().endpoints(internal),
            (NodeId::new(2), NodeId::new(3))
        );
        assert_eq!(dg.stable_id(internal), keep);
        // The deleted id is dead; the new edge got a fresh stable id.
        assert!(!dg.is_live(d1.inserted[0]));
        assert_eq!(d2.inserted[0], EdgeId::new(3));
        dg.validate().unwrap();
    }

    #[test]
    fn from_graph_seeds_identity_mapping() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let dg = DynamicGraph::from_graph(g);
        for e in dg.graph().edges() {
            assert_eq!(dg.stable_id(e), e);
            assert_eq!(dg.internal_id(e), Some(e));
            assert!(dg.is_live(e));
        }
        assert_eq!(dg.stable_edges().count(), 3);
        assert_eq!(
            dg.endpoints_stable(EdgeId::new(1)),
            Some((NodeId::new(1), NodeId::new(2)))
        );
        dg.validate().unwrap();
    }

    #[test]
    fn batch_is_atomic_on_error() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let mut dg = DynamicGraph::from_graph(g);
        let before = dg.graph().clone();
        // Valid delete followed by an invalid insert: nothing may change.
        let err = dg
            .apply(&batch(vec![EdgeId::new(0)], vec![(2, 2)]))
            .unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 2 });
        assert_eq!(dg.graph(), &before);
        assert!(dg.is_live(EdgeId::new(0)));
        dg.validate().unwrap();
    }

    #[test]
    fn rejects_unknown_and_double_deletes() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut dg = DynamicGraph::from_graph(g);
        let err = dg.apply(&batch(vec![EdgeId::new(7)], vec![])).unwrap_err();
        assert_eq!(err, GraphError::UnknownEdge { id: 7 });
        let err = dg
            .apply(&batch(vec![EdgeId::new(0), EdgeId::new(0)], vec![]))
            .unwrap_err();
        assert_eq!(err, GraphError::UnknownEdge { id: 0 });
        assert_eq!(dg.m(), 1);
    }

    #[test]
    fn rejects_duplicate_inserts_against_live_and_batch_edges() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut dg = DynamicGraph::from_graph(g);
        assert_eq!(
            dg.apply(&batch(vec![], vec![(1, 0)])).unwrap_err(),
            GraphError::DuplicateEdge { u: 1, v: 0 }
        );
        assert_eq!(
            dg.apply(&batch(vec![], vec![(1, 2), (2, 1)])).unwrap_err(),
            GraphError::DuplicateEdge { u: 2, v: 1 }
        );
        assert_eq!(
            dg.apply(&batch(vec![], vec![(0, 9)])).unwrap_err(),
            GraphError::NodeOutOfRange { node: 9, n: 3 }
        );
    }

    #[test]
    fn delete_then_reinsert_in_one_batch_gets_fresh_id() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut dg = DynamicGraph::from_graph(g);
        let diff = dg
            .apply(&batch(vec![EdgeId::new(0)], vec![(0, 1)]))
            .unwrap();
        assert_eq!(diff.deleted, vec![EdgeId::new(0)]);
        assert_eq!(diff.inserted, vec![EdgeId::new(1)]);
        assert_eq!(dg.m(), 1);
        assert!(!dg.is_live(EdgeId::new(0)));
        assert!(dg.is_live(EdgeId::new(1)));
        dg.validate().unwrap();
    }

    #[test]
    fn diff_reports_touched_nodes_and_survivors() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut dg = DynamicGraph::from_graph(g);
        let diff = dg
            .apply(&batch(vec![EdgeId::new(1)], vec![(0, 4)]))
            .unwrap();
        assert_eq!(diff.old_m, 3);
        assert_eq!(diff.new_m, 3);
        assert_eq!(
            diff.survivor_map,
            vec![Some(EdgeId::new(0)), None, Some(EdgeId::new(1))]
        );
        assert_eq!(diff.inserted_internal, vec![EdgeId::new(2)]);
        let touched: Vec<usize> = diff.touched_nodes.iter().map(|v| v.index()).collect();
        assert_eq!(touched, vec![0, 1, 2, 4]);
    }

    #[test]
    fn carry_coloring_preserves_survivors_and_blanks_inserts() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut dg = DynamicGraph::from_graph(g);
        let mut coloring = EdgeColoring::empty(3);
        coloring.set(EdgeId::new(0), 5);
        coloring.set(EdgeId::new(1), 6);
        coloring.set(EdgeId::new(2), 7);
        let diff = dg
            .apply(&batch(vec![EdgeId::new(1)], vec![(0, 2)]))
            .unwrap();
        let carried = diff.carry_coloring(&coloring);
        assert_eq!(carried.len(), 3);
        assert_eq!(carried.color(EdgeId::new(0)), Some(5)); // old e0
        assert_eq!(carried.color(EdgeId::new(1)), Some(7)); // old e2 shifted down
        assert_eq!(carried.color(EdgeId::new(2)), None); // the inserted edge
    }

    #[test]
    #[should_panic(expected = "pre-batch edge count")]
    fn carry_coloring_rejects_wrong_length() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut dg = DynamicGraph::from_graph(g);
        let diff = dg.apply(&UpdateBatch::empty()).unwrap();
        diff.carry_coloring(&EdgeColoring::empty(5));
    }
}
