//! `(8+ε)Δ`-edge coloring of general graphs in the CONGEST model
//! (Theorem 6.3 / Theorem 1.2).
//!
//! The algorithm computes an `O(Δ²)`-vertex coloring (Linial, `O(log* n)`
//! rounds), then repeatedly:
//!
//! 1. computes an `(ε₁Δ + ⌊Δ/2⌋)`-defective 4-coloring of the nodes with
//!    respect to the still-uncolored edges (Lemma 6.2),
//! 2. colors the two bipartite graphs induced by edges crossing the class
//!    pairs `{1,2}–{3,4}` and `{1,3}–{2,4}` with `(2+ε₂)Δᵢ` fresh colors each
//!    (Lemma 6.1),
//! 3. recurses on the remaining (monochromatic) edges, whose maximum degree
//!    has dropped to `(1/2 + ε₁)Δᵢ`.
//!
//! After `O(log Δ)` levels the remaining graph has constant degree and is
//! finished greedily. Summing the geometric series gives `(8 + O(ε))Δ`
//! colors in `poly log Δ + O(log* n)` rounds, with `O(log n)`-bit messages.

use crate::bipartite_coloring::color_bipartite;
use crate::defective_vertex::defective_four_coloring;
use crate::greedy_finish::greedy_palette_coloring_by_schedule;
use crate::linial::{linial_coloring, linial_edge_coloring};
use crate::params::ColoringParams;
use distgraph::{BipartiteGraph, EdgeColoring, Graph, Side, VertexColoring};
use distsim::{IdAssignment, LedgerEntry, Metrics, Model, Network, RoundLedger};

/// Result of the CONGEST `(8+ε)Δ`-edge coloring.
#[derive(Debug, Clone)]
pub struct CongestColoringResult {
    /// The complete proper edge coloring.
    pub coloring: EdgeColoring,
    /// Number of colors used (palette size).
    pub colors_used: usize,
    /// Number of degree-halving levels executed.
    pub levels: u32,
    /// Cost of the whole execution (rounds, messages, bandwidth violations).
    pub metrics: Metrics,
    /// Rounds spent in the initial `O(Δ²)`-coloring (the `O(log* n)` part).
    pub initial_coloring_rounds: u64,
    /// Per-stage round ledger (defective levels, bipartite splits, finish).
    pub ledger: RoundLedger,
}

/// The two ways of pairing the four defective color classes into a
/// bipartition (Theorem 6.3 colors both of them per level).
const CLASS_PAIRINGS: [[usize; 2]; 2] = [
    // U side = classes {0, 1}, V side = classes {2, 3}
    [0, 1],
    // U side = classes {0, 2}, V side = classes {1, 3}
    [0, 2],
];

/// Computes an `(8+ε)Δ`-edge coloring of `graph` in the CONGEST model
/// (Theorem 1.2). The network model is `CONGEST(O(log n))`; bandwidth
/// violations (there should be none) are reported in the returned metrics.
pub fn color_congest(
    graph: &Graph,
    ids: &IdAssignment,
    params: &ColoringParams,
) -> CongestColoringResult {
    let mut net = Network::with_policy(graph, Model::congest_for(graph.n()), params.policy);
    let mut coloring = EdgeColoring::empty(graph.m());
    if graph.m() == 0 {
        return CongestColoringResult {
            coloring,
            colors_used: 0,
            levels: 0,
            metrics: net.metrics(),
            initial_coloring_rounds: 0,
            ledger: RoundLedger::new(),
        };
    }

    // Initial O(Δ²)-vertex coloring in O(log* n) rounds.
    let linial = linial_coloring(graph, ids, &mut net);
    let initial_coloring_rounds = net.rounds();
    net.record_ledger(LedgerEntry {
        depth: 0,
        stage: "linial",
        delta_level: graph.max_degree(),
        edges: graph.m(),
        rounds: initial_coloring_rounds,
        defect_ratio: f64::NAN,
        fallback: false,
    });
    let base_coloring = linial.coloring;
    let base_palette = linial.palette;

    let delta = graph.max_degree();
    let k = ((delta.max(2) as f64).log2().floor() as u32).max(1);
    // ε₁ drives the *defective* levels and is deliberately independent of the
    // user's ε: the per-level degree contraction (1/2 + ε₁) must stay below 1
    // no matter how loose a palette the caller asked for.
    let eps1 = (1.0 / (2.0 * k as f64)).max(0.05);
    // ε₂ = the user's ε is spent in the bipartite coloring, where it buys a
    // smaller palette at a poly(1/ε) round cost (Lemma 6.1). This is the
    // intended Theorem 6.3 trade: rounds = poly(log Δ / ε) + O(log* n), so
    // tightening ε raises the measured round count whenever Δ̄ exceeds the
    // split cutoff, and has no round effect below it (pinned by
    // `congest_rounds_eps_dependence_is_intended`).
    let eps2 = params.eps;
    let bipartite_params = ColoringParams {
        eps: eps2,
        ..*params
    };

    let mut next_color = 0usize;
    let mut levels = 0u32;
    let finish_degree_cutoff = 4usize;

    for _level in 0..=params.max_outer_iterations.min(k + 2) {
        // The graph induced by the uncolored edges.
        let (uncolored, edge_map) = graph.edge_subgraph(|e| !coloring.is_colored(e));
        if uncolored.m() == 0 || uncolored.max_degree() <= finish_degree_cutoff {
            break;
        }
        levels += 1;

        // Lemma 6.2: defective 4-coloring of the uncolored graph.
        let restricted = VertexColoring::from_vec(base_coloring.as_slice().to_vec());
        let d4_rounds_before = net.rounds();
        let four = defective_four_coloring(&uncolored, &restricted, base_palette, eps1, &mut net);
        net.record_ledger(LedgerEntry {
            depth: levels,
            stage: "defective4",
            delta_level: uncolored.max_degree(),
            edges: uncolored.m(),
            rounds: net.rounds() - d4_rounds_before,
            defect_ratio: f64::NAN,
            fallback: false,
        });

        // Color the two bipartite class pairings with fresh color ranges.
        for pairing in CLASS_PAIRINGS {
            let side_of = |class: usize| -> Side {
                if pairing.contains(&class) {
                    Side::U
                } else {
                    Side::V
                }
            };
            let (piece, piece_map) = uncolored.edge_subgraph(|e| {
                if coloring.is_colored(edge_map[e.index()]) {
                    return false;
                }
                let (a, b) = uncolored.endpoints(e);
                side_of(four.color(a)) != side_of(four.color(b))
            });
            if piece.m() == 0 {
                continue;
            }
            let sides: Vec<Side> = piece.nodes().map(|v| side_of(four.color(v))).collect();
            let bipartite = BipartiteGraph::new(piece, sides)
                .expect("edges cross the bipartition by construction");
            let mut child_net = net.child(bipartite.graph());
            let result = color_bipartite(&bipartite, &bipartite_params, &mut child_net);
            net.absorb_sequential(&child_net.metrics());
            net.record_ledger(LedgerEntry {
                depth: levels,
                stage: "bipartite",
                delta_level: bipartite.graph().max_edge_degree(),
                edges: bipartite.graph().m(),
                rounds: child_net.rounds(),
                defect_ratio: f64::NAN,
                fallback: false,
            });
            net.absorb_ledger(child_net.take_ledger(), levels);
            for e in bipartite.graph().edges() {
                if let Some(c) = result.coloring.color(e) {
                    let original = edge_map[piece_map[e.index()].index()];
                    coloring.set(original, c + next_color);
                }
            }
            next_color += result.colors_used;
        }
    }

    // Finish the remaining constant-degree graph with 2d−1 fresh colors.
    let (rest, rest_map) = graph.edge_subgraph(|e| !coloring.is_colored(e));
    if rest.m() > 0 {
        let rest_ids = IdAssignment::from_vec(rest.nodes().map(|v| ids.id(v)).collect());
        let mut child_net = net.child(&rest);
        let schedule = linial_edge_coloring(&rest, &rest_ids, &mut child_net);
        let palette = (2 * rest.max_degree()).saturating_sub(1).max(1);
        let mut rest_coloring = EdgeColoring::empty(rest.m());
        let outcome = greedy_palette_coloring_by_schedule(
            &rest,
            &schedule,
            palette,
            &mut rest_coloring,
            &mut child_net,
        );
        debug_assert!(outcome.uncolorable.is_empty());
        net.absorb_sequential(&child_net.metrics());
        net.record_ledger(LedgerEntry {
            depth: 0,
            stage: "greedy-finish",
            delta_level: rest.max_edge_degree(),
            edges: rest.m(),
            rounds: child_net.rounds(),
            defect_ratio: f64::NAN,
            fallback: false,
        });
        for e in rest.edges() {
            if let Some(c) = rest_coloring.color(e) {
                coloring.set(rest_map[e.index()], c + next_color);
            }
        }
    }

    CongestColoringResult {
        colors_used: coloring.palette_size(),
        coloring,
        levels,
        metrics: net.metrics(),
        initial_coloring_rounds,
        ledger: net.take_ledger(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;
    use edgecolor_verify::{check_complete, check_proper_edge_coloring};

    fn run(graph: &Graph, eps: f64) -> CongestColoringResult {
        let ids = IdAssignment::scattered(graph.n(), 7);
        let params = ColoringParams::new(eps);
        color_congest(graph, &ids, &params)
    }

    fn check(graph: &Graph, result: &CongestColoringResult) {
        check_proper_edge_coloring(graph, &result.coloring).assert_ok();
        check_complete(graph, &result.coloring).assert_ok();
    }

    #[test]
    fn colors_small_regular_graph_properly() {
        let g = generators::random_regular(60, 6, 3).unwrap();
        let result = run(&g, 0.5);
        check(&g, &result);
        // (8+ε)Δ budget plus the constant-degree tail allowance.
        let budget = ((8.5) * g.max_degree() as f64).ceil() as usize + 8;
        assert!(
            result.colors_used <= budget,
            "colors {} exceed (8+ε)Δ budget {budget}",
            result.colors_used
        );
    }

    #[test]
    fn colors_erdos_renyi_graph() {
        let g = generators::erdos_renyi(80, 0.15, 5);
        let result = run(&g, 0.5);
        check(&g, &result);
        assert!(result.colors_used <= 9 * g.max_degree().max(1) + 8);
    }

    #[test]
    fn respects_congest_bandwidth() {
        let g = generators::random_regular(64, 8, 9).unwrap();
        let result = run(&g, 0.5);
        check(&g, &result);
        assert_eq!(
            result.metrics.congest_violations, 0,
            "CONGEST bandwidth exceeded: max message {} bits",
            result.metrics.max_message_bits
        );
    }

    #[test]
    fn low_degree_graphs_are_finished_greedily() {
        let g = generators::cycle(20);
        let result = run(&g, 0.5);
        check(&g, &result);
        assert_eq!(result.levels, 0);
        assert!(result.colors_used <= 3);
    }

    #[test]
    fn trees_and_paths() {
        for g in [generators::random_tree(50, 3), generators::path(30)] {
            let result = run(&g, 0.25);
            check(&g, &result);
            assert!(result.colors_used <= 2 * g.max_degree().max(1));
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = Graph::from_edges(0, &[]).unwrap();
        let result = run(&empty, 0.5);
        assert_eq!(result.colors_used, 0);
        let edgeless = Graph::from_edges(7, &[]).unwrap();
        let result = run(&edgeless, 0.5);
        assert_eq!(result.colors_used, 0);
        assert_eq!(result.coloring.len(), 0);
    }

    #[test]
    fn initial_coloring_rounds_scale_like_log_star() {
        let small = generators::random_regular(32, 4, 1).unwrap();
        let large = generators::random_regular(512, 4, 1).unwrap();
        let r_small = run(&small, 0.5);
        let r_large = run(&large, 0.5);
        check(&large, &r_large);
        // log* growth: going from 32 to 512 nodes adds at most a couple of
        // Linial iterations.
        assert!(r_large.initial_coloring_rounds <= r_small.initial_coloring_rounds + 3);
    }

    /// Pins the intended ε ↔ rounds trade of Theorem 6.3 (observed in the E3
    /// bench as rounds varying with ε at Δ=16 but not at Δ=8).
    ///
    /// ε is spent in `color_bipartite`: χ = Θ(ε/ln Δ̄) controls the split
    /// schedule and the orientation runs Θ(ln Δ̄/χ) phases, so a *smaller* ε
    /// (fewer colors) buys *more* rounds — poly(1/ε)·polylog(Δ), not a bug.
    /// Below the split cutoff (Δ̄ ≤ 16) no split level runs and the round
    /// count is exactly ε-invariant.
    #[test]
    fn congest_rounds_eps_dependence_is_intended() {
        // Δ=16: the bipartite pieces exceed the split cutoff, so tightening
        // ε must never lower the round count.
        let g = generators::random_regular(96, 16, 11).unwrap();
        let ids = IdAssignment::scattered(g.n(), 5);
        let rounds = |eps: f64| {
            let result = color_congest(&g, &ids, &ColoringParams::new(eps));
            check(&g, &result);
            result.metrics.rounds
        };
        let (tight, mid, loose) = (rounds(0.25), rounds(0.5), rounds(1.0));
        assert!(
            tight >= mid && mid >= loose,
            "rounds must be monotone non-increasing in ε: {tight} (ε=.25) \
             {mid} (ε=.5) {loose} (ε=1)"
        );

        // Δ=8: every piece stays below the split cutoff, no orientation runs,
        // and the round count is bit-identical across ε.
        let small = generators::random_regular(96, 8, 11).unwrap();
        let small_ids = IdAssignment::scattered(small.n(), 5);
        let per_eps: Vec<u64> = [0.25, 0.5, 1.0]
            .iter()
            .map(|&eps| {
                color_congest(&small, &small_ids, &ColoringParams::new(eps))
                    .metrics
                    .rounds
            })
            .collect();
        assert_eq!(per_eps[0], per_eps[1]);
        assert_eq!(per_eps[1], per_eps[2]);
    }
}
