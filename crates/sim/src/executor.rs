//! The parallel round-execution engine.
//!
//! A node's action in one synchronous round of the LOCAL/CONGEST models is a
//! pure function of its own state and its inbox (Section 2 of the paper), so
//! executing a round over all nodes is embarrassingly parallel. This module
//! provides the machinery the simulator uses to exploit that:
//!
//! * [`ExecutionPolicy`] — the knob selecting sequential or multi-threaded
//!   round execution; carried by [`Network`](crate::Network) and accepted by
//!   [`run_program_with`](crate::run_program_with).
//! * [`map_node_chunks`] — the chunked fork/join primitive: the node range
//!   `0..n` is split into contiguous chunks, one `std::thread::scope` worker
//!   per chunk, and the per-chunk results are returned **in chunk order** so
//!   callers can merge them deterministically.
//! * [`Chunks`] — the deterministic chunk geometry, including the inverse
//!   `chunk_of` map used to bucket outgoing messages by destination chunk.
//!
//! Determinism contract: for a fixed input, the sequential path and the
//! parallel path at *any* thread count produce byte-identical mailboxes,
//! metrics and outputs. The engine guarantees this by (a) giving every worker
//! a read-only snapshot of the round's inputs, (b) merging per-chunk message
//! lists in global sender order (chunk order × in-chunk order), and
//! (c) folding per-chunk [`Metrics`](crate::Metrics) with the same
//! commutative/associative operations the sequential loop applies.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// How the simulator executes the per-node work of one synchronous round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecutionPolicy {
    /// One thread walks all nodes in index order (the reference semantics).
    #[default]
    Sequential,
    /// A `std::thread::scope` worker pool over contiguous node chunks.
    ///
    /// Results are bit-identical to [`ExecutionPolicy::Sequential`] for every
    /// thread count; only wall-clock time changes.
    Parallel {
        /// Number of worker threads (clamped to at least 1).
        threads: usize,
    },
    /// The partitioned execution substrate: the graph is split into `shards`
    /// edge-balanced shards (`distshard::bfs_partition`), each round's
    /// per-node work runs shard-locally (shards distributed over `threads`
    /// scoped workers), and only the messages crossing a shard boundary move
    /// between shards, coalesced into one buffer per shard pair per round by
    /// a `distshard::ShardRouter`.
    ///
    /// Results are bit-identical to [`ExecutionPolicy::Sequential`] for every
    /// shard and thread count; only wall-clock time and the delivery route
    /// change. Non-network per-node work (the chunked compute phases driven
    /// through [`map_node_chunks`]) treats this policy as
    /// `Parallel { threads }`.
    Sharded {
        /// Number of shards the graph is partitioned into (clamped to ≥ 1).
        shards: usize,
        /// Number of worker threads shards are distributed over (clamped to
        /// at least 1; clamped to `shards` at execution time).
        threads: usize,
    },
}

impl ExecutionPolicy {
    /// A parallel policy with the given number of worker threads.
    pub fn parallel(threads: usize) -> Self {
        ExecutionPolicy::Parallel {
            threads: threads.max(1),
        }
    }

    /// A parallel policy sized to the host's available parallelism
    /// (1 thread when the host does not report it).
    ///
    /// Uses the same once-per-process [`host_parallelism`] probe as
    /// [`Self::spawning_pays_off`] and [`Self::effective_threads`], so the
    /// three can never disagree mid-process (a fresh
    /// `available_parallelism()` call can change its answer under cgroup or
    /// affinity updates).
    pub fn auto() -> Self {
        ExecutionPolicy::parallel(host_parallelism())
    }

    /// A sharded policy with the given shard and worker-thread counts
    /// (both clamped to at least 1).
    pub fn sharded(shards: usize, threads: usize) -> Self {
        ExecutionPolicy::Sharded {
            shards: shards.max(1),
            threads: threads.max(1),
        }
    }

    /// The number of worker threads this policy uses (1 for sequential).
    pub fn threads(&self) -> usize {
        match self {
            ExecutionPolicy::Sequential => 1,
            ExecutionPolicy::Parallel { threads } => (*threads).max(1),
            ExecutionPolicy::Sharded { threads, .. } => (*threads).max(1),
        }
    }

    /// The number of shards this policy partitions the graph into (1 unless
    /// [`ExecutionPolicy::Sharded`]).
    pub fn shards(&self) -> usize {
        match self {
            ExecutionPolicy::Sharded { shards, .. } => (*shards).max(1),
            _ => 1,
        }
    }

    /// Returns `true` if this policy actually spawns workers.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// Returns `true` if spawning workers can actually overlap execution on
    /// this host. On a single-hardware-thread machine a `Parallel { 8 }`
    /// policy gets no concurrency — the spawned workers just time-slice one
    /// core and the spawn/join overhead shows up as a speedup *below* 1.0 —
    /// so the chunked primitives fall back to running the (identical) chunk
    /// geometry inline on the calling thread. The result is bit-identical
    /// either way; only wall-clock changes.
    pub fn spawning_pays_off(&self) -> bool {
        self.is_parallel() && host_parallelism() > 1
    }

    /// The number of workers worth spawning on this host: the policy's
    /// thread count capped at the available hardware parallelism (but never
    /// below 1). Chunk/shard *geometry* always follows [`Self::threads`] so
    /// results stay bit-identical; only the worker count adapts.
    pub fn effective_threads(&self) -> usize {
        self.threads().min(host_parallelism()).max(1)
    }

    /// Returns `true` if rounds are executed on the sharded substrate
    /// (regardless of the worker-thread count).
    pub fn is_sharded(&self) -> bool {
        matches!(self, ExecutionPolicy::Sharded { .. })
    }
}

/// The host's available parallelism, probed once per process.
///
/// Every parallelism decision in the engine ([`ExecutionPolicy::auto`],
/// [`ExecutionPolicy::spawning_pays_off`],
/// [`ExecutionPolicy::effective_threads`]) reads this cached probe so they
/// stay mutually consistent for the lifetime of the process.
pub fn host_parallelism() -> usize {
    static HOST: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

impl std::fmt::Display for ExecutionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionPolicy::Sequential => write!(f, "sequential"),
            ExecutionPolicy::Parallel { threads } => write!(f, "parallel({threads})"),
            ExecutionPolicy::Sharded { shards, threads } => {
                write!(f, "sharded({shards}x{threads})")
            }
        }
    }
}

/// The deterministic chunk geometry for `n` items split into (at most)
/// `chunks` contiguous ranges.
///
/// [`Chunks::new`] splits by item count: the first `n % chunks` ranges have
/// `⌈n/chunks⌉` items, the rest `⌊n/chunks⌋`. [`Chunks::degree_weighted`]
/// splits by work instead, cutting a CSR prefix sum into near-equal weight
/// shares so a power-law hub does not serialize a parallel round on one
/// chunk. Either way the geometry is a pure function of its inputs — never
/// of the worker count that actually runs — so every policy replays the same
/// chunk order and stays bit-identical to sequential execution. Empty ranges
/// are never produced (for `n < chunks` there are exactly `n` singleton
/// ranges); `n = 0` yields one empty chunk.
#[derive(Debug, Clone)]
pub struct Chunks {
    /// Chunk boundaries: chunk `c` covers `bounds[c]..bounds[c + 1]`.
    /// Strictly increasing except for the single empty chunk of `n = 0`.
    bounds: Vec<usize>,
}

impl Chunks {
    /// Count-balanced chunk geometry for `n` items and the requested chunk
    /// count.
    pub fn new(n: usize, chunks: usize) -> Self {
        let count = chunks.max(1).min(n.max(1));
        let (base, long) = (n / count, n % count);
        let mut bounds = Vec::with_capacity(count + 1);
        let mut next = 0usize;
        bounds.push(next);
        for c in 0..count {
            next += if c < long { base + 1 } else { base };
            bounds.push(next);
        }
        Chunks { bounds }
    }

    /// Degree-weighted chunk geometry for `n` nodes whose adjacency is
    /// described by the CSR prefix-sum `offsets` (`offsets.len() == n + 1`,
    /// `offsets[v]..offsets[v + 1]` indexing node `v`'s neighbor slice).
    ///
    /// Node `v` is weighted `1 + degree(v)` — the `1` keeps isolated nodes
    /// from collapsing into one chunk — and cut points are the smallest
    /// nodes reaching each of the `count` equal weight shares, clamped so no
    /// chunk is empty. The geometry depends only on `(offsets, chunks)`, so
    /// all execution policies derive identical chunk boundaries.
    pub fn degree_weighted(n: usize, offsets: &[usize], chunks: usize) -> Self {
        assert_eq!(offsets.len(), n + 1, "CSR offsets must have n + 1 entries");
        let count = chunks.max(1).min(n.max(1));
        // prefix(v) = Σ_{u < v} (1 + deg(u)) = v + offsets[v].
        let total = n + offsets[n];
        let mut bounds = Vec::with_capacity(count + 1);
        bounds.push(0usize);
        for c in 1..count {
            let share = total / count * c + total % count * c / count;
            // Smallest v with prefix(v) ≥ share, found by binary search over
            // the monotone prefix; clamped to keep every chunk non-empty.
            let (mut lo, mut hi) = (0usize, n);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if mid + offsets[mid] < share {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            bounds.push(lo.clamp(bounds[c - 1] + 1, n - (count - c)));
        }
        bounds.push(n);
        Chunks { bounds }
    }

    /// Number of chunks (0 items still yield one empty chunk).
    pub fn count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of items covered (`bounds` end).
    pub fn len(&self) -> usize {
        *self.bounds.last().expect("bounds are never empty")
    }

    /// Returns `true` if the geometry covers zero items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The half-open item range of chunk `c`.
    pub fn range(&self, c: usize) -> Range<usize> {
        debug_assert!(c < self.count());
        self.bounds[c]..self.bounds[c + 1]
    }

    /// All chunk ranges in order.
    pub fn ranges(&self) -> Vec<Range<usize>> {
        (0..self.count()).map(|c| self.range(c)).collect()
    }

    /// The chunk an item index belongs to (inverse of [`Chunks::range`]).
    pub fn chunk_of(&self, item: usize) -> usize {
        debug_assert!(item < self.len().max(1));
        (self.bounds.partition_point(|&b| b <= item) - 1).min(self.count() - 1)
    }
}

/// Applies `f` to every chunk of `0..n` and returns the results in chunk
/// order.
///
/// With a sequential policy (or a single chunk) `f` runs on the calling
/// thread; otherwise one scoped worker per chunk runs `f` concurrently. A
/// panic inside a worker is re-raised on the calling thread with its original
/// payload (the first panicking chunk in chunk order wins), so assertion
/// messages match the sequential path.
pub fn map_node_chunks<T, F>(n: usize, policy: ExecutionPolicy, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    map_chunks(&Chunks::new(n, policy.threads()), policy, f)
}

/// [`map_node_chunks`] over an explicit, caller-owned chunk geometry (e.g. a
/// degree-weighted one). Results are returned in chunk order; worker panics
/// re-raise on the calling thread with the first panicking chunk's payload.
pub fn map_chunks<T, F>(chunks: &Chunks, policy: ExecutionPolicy, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if !policy.spawning_pays_off() || chunks.count() <= 1 {
        return chunks.ranges().into_iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .ranges()
            .into_iter()
            .map(|range| scope.spawn(move || f(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(value) => value,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Runs `f` over disjoint mutable chunk slices of `items`, pairing each chunk
/// with the matching element of `per_chunk` (which must have one entry per
/// chunk of `Chunks::new(items.len(), policy.threads())`).
///
/// Used for the delivery phase of a parallel round: each worker owns the
/// mailboxes of a contiguous node range and drains the per-sender-chunk
/// buckets addressed to it, in sender-chunk order.
pub fn for_each_chunk_mut<T, U, F>(
    items: &mut [T],
    policy: ExecutionPolicy,
    per_chunk: Vec<U>,
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(Range<usize>, &mut [T], U) + Sync,
{
    for_each_chunk_mut_in(
        &Chunks::new(items.len(), policy.threads()),
        items,
        policy,
        per_chunk,
        f,
    );
}

/// Applies `f` to every chunk range of an explicit geometry paired with its
/// (moved) per-chunk payload, returning the results in chunk order.
///
/// The send phase of an allocation-free round uses this to hand each worker
/// its own reusable arena buffer (`U = &mut Vec<_>`) while collecting the
/// per-chunk [`Metrics`](crate::Metrics) for the deterministic in-order fold.
pub fn map_chunks_with<T, U, F>(
    chunks: &Chunks,
    policy: ExecutionPolicy,
    payloads: Vec<U>,
    f: F,
) -> Vec<T>
where
    T: Send,
    U: Send,
    F: Fn(Range<usize>, U) -> T + Sync,
{
    assert_eq!(
        payloads.len(),
        chunks.count(),
        "one payload per chunk required"
    );
    let paired: Vec<(Range<usize>, U)> = chunks.ranges().into_iter().zip(payloads).collect();
    if !policy.spawning_pays_off() || chunks.count() <= 1 {
        return paired.into_iter().map(|(range, u)| f(range, u)).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = paired
            .into_iter()
            .map(|(range, u)| scope.spawn(move || f(range, u)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(value) => value,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// [`for_each_chunk_mut`] over an explicit, caller-owned chunk geometry.
///
/// `chunks` must cover `items.len()` exactly; each worker owns the disjoint
/// mutable slice of its chunk, paired with the matching `per_chunk` payload.
pub fn for_each_chunk_mut_in<T, U, F>(
    chunks: &Chunks,
    items: &mut [T],
    policy: ExecutionPolicy,
    per_chunk: Vec<U>,
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(Range<usize>, &mut [T], U) + Sync,
{
    assert_eq!(
        chunks.len(),
        items.len(),
        "chunk geometry must cover the item slice exactly"
    );
    assert_eq!(
        per_chunk.len(),
        chunks.count(),
        "one payload per chunk required"
    );
    let ranges = chunks.ranges();
    // Split `items` into the chunk slices up front so workers own disjoint
    // mutable views.
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    for range in &ranges {
        let (head, tail) = rest.split_at_mut(range.len());
        slices.push(head);
        rest = tail;
    }
    if !policy.spawning_pays_off() || ranges.len() <= 1 {
        for ((range, slice), payload) in ranges.into_iter().zip(slices).zip(per_chunk) {
            f(range, slice, payload);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for ((range, slice), payload) in ranges.into_iter().zip(slices).zip(per_chunk) {
            let f = &f;
            handles.push(scope.spawn(move || f(range, slice, payload)));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_thread_counts() {
        assert_eq!(ExecutionPolicy::Sequential.threads(), 1);
        assert_eq!(ExecutionPolicy::parallel(0).threads(), 1);
        assert_eq!(ExecutionPolicy::parallel(4).threads(), 4);
        assert!(!ExecutionPolicy::Sequential.is_parallel());
        assert!(!ExecutionPolicy::parallel(1).is_parallel());
        assert!(ExecutionPolicy::parallel(2).is_parallel());
        assert!(ExecutionPolicy::auto().threads() >= 1);
        // `auto()` reads the same cached probe as the rest of the engine.
        assert_eq!(
            ExecutionPolicy::auto(),
            ExecutionPolicy::parallel(host_parallelism())
        );
        assert_eq!(ExecutionPolicy::default(), ExecutionPolicy::Sequential);
        assert_eq!(format!("{}", ExecutionPolicy::parallel(3)), "parallel(3)");
        assert_eq!(format!("{}", ExecutionPolicy::Sequential), "sequential");
    }

    #[test]
    fn sharded_policy_accessors() {
        let p = ExecutionPolicy::sharded(4, 2);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.threads(), 2);
        assert!(p.is_sharded());
        assert!(p.is_parallel());
        let single = ExecutionPolicy::sharded(0, 0);
        assert_eq!(single.shards(), 1);
        assert_eq!(single.threads(), 1);
        assert!(single.is_sharded());
        assert!(!single.is_parallel());
        assert!(!ExecutionPolicy::Sequential.is_sharded());
        assert_eq!(ExecutionPolicy::Sequential.shards(), 1);
        assert_eq!(ExecutionPolicy::parallel(8).shards(), 1);
        assert_eq!(
            format!("{}", ExecutionPolicy::sharded(4, 2)),
            "sharded(4x2)"
        );
    }

    #[test]
    fn chunk_geometry_covers_range_exactly() {
        for n in [0usize, 1, 2, 3, 7, 16, 100, 101] {
            for c in [1usize, 2, 3, 4, 8, 64] {
                let chunks = Chunks::new(n, c);
                let ranges = chunks.ranges();
                assert_eq!(ranges.len(), chunks.count());
                let mut expected = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expected, "contiguous chunks for n={n} c={c}");
                    assert!(r.end > r.start || n == 0, "no empty chunks for n={n} c={c}");
                    expected = r.end;
                }
                assert_eq!(expected, n, "chunks cover 0..{n} for c={c}");
            }
        }
    }

    #[test]
    fn chunk_of_inverts_range() {
        for n in [1usize, 2, 5, 17, 64, 100] {
            for c in [1usize, 2, 3, 7, 200] {
                let chunks = Chunks::new(n, c);
                for chunk in 0..chunks.count() {
                    for item in chunks.range(chunk) {
                        assert_eq!(
                            chunks.chunk_of(item),
                            chunk,
                            "chunk_of({item}) for n={n} c={c}"
                        );
                    }
                }
            }
        }
    }

    /// CSR offsets for a synthetic degree sequence.
    fn offsets_of(degrees: &[usize]) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(degrees.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in degrees {
            acc += d;
            offsets.push(acc);
        }
        offsets
    }

    #[test]
    fn degree_weighted_chunks_cover_range_exactly() {
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![5, 0, 0, 0, 0, 0, 0, 0],
            vec![0, 0, 0, 0, 0, 0, 0, 99],
            vec![1000, 1, 1, 1, 1, 1, 1, 1, 1, 1],
            (0..100).map(|v| v % 7).collect(),
        ];
        for degrees in &cases {
            let n = degrees.len();
            let offsets = offsets_of(degrees);
            for c in [1usize, 2, 3, 4, 8, 64] {
                let chunks = Chunks::degree_weighted(n, &offsets, c);
                let mut expected = 0usize;
                for r in chunks.ranges() {
                    assert_eq!(r.start, expected, "contiguous for n={n} c={c}");
                    assert!(r.end > r.start || n == 0, "no empty chunks n={n} c={c}");
                    expected = r.end;
                }
                assert_eq!(expected, n, "covers 0..{n} for c={c}");
                assert_eq!(chunks.len(), n);
            }
        }
    }

    #[test]
    fn degree_weighted_chunk_of_inverts_range() {
        let degrees: Vec<usize> = (0..64).map(|v| if v == 10 { 500 } else { v % 5 }).collect();
        let offsets = offsets_of(&degrees);
        for c in [1usize, 2, 3, 7, 64, 200] {
            let chunks = Chunks::degree_weighted(degrees.len(), &offsets, c);
            for chunk in 0..chunks.count() {
                for item in chunks.range(chunk) {
                    assert_eq!(chunks.chunk_of(item), chunk, "item {item} c={c}");
                }
            }
        }
    }

    #[test]
    fn degree_weighted_chunks_balance_a_hub_heavy_graph() {
        // One hub holding almost all the work: the hub's chunk should stay
        // small in node count while the remaining nodes spread over the
        // other chunks, instead of ⌈n/4⌉ nodes (hub included) in chunk 0.
        let mut degrees = vec![0usize; 64];
        degrees[0] = 1000;
        let offsets = offsets_of(&degrees);
        let chunks = Chunks::degree_weighted(64, &offsets, 4);
        assert_eq!(chunks.count(), 4);
        assert_eq!(chunks.range(0), 0..1, "the hub is isolated in chunk 0");
    }

    #[test]
    fn map_node_chunks_preserves_chunk_order() {
        for policy in [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::parallel(2),
            ExecutionPolicy::parallel(5),
        ] {
            let sums = map_node_chunks(20, policy, |range| range.sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), (0..20).sum::<usize>());
            // Each chunk's sum corresponds to a contiguous range, and the
            // chunk order matches the range order.
            let chunks = Chunks::new(20, policy.threads());
            let expected: Vec<usize> = chunks
                .ranges()
                .into_iter()
                .map(|r| r.sum::<usize>())
                .collect();
            assert_eq!(sums, expected);
        }
    }

    #[test]
    fn map_node_chunks_handles_empty_input() {
        let out = map_node_chunks(0, ExecutionPolicy::parallel(4), |range| range.len());
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn for_each_chunk_mut_partitions_items() {
        for policy in [ExecutionPolicy::Sequential, ExecutionPolicy::parallel(3)] {
            let mut items = vec![0usize; 11];
            let chunks = Chunks::new(items.len(), policy.threads());
            let payloads: Vec<usize> = (0..chunks.count()).map(|c| c + 1).collect();
            for_each_chunk_mut(&mut items, policy, payloads, |range, slice, payload| {
                assert_eq!(slice.len(), range.len());
                for (offset, item) in slice.iter_mut().enumerate() {
                    *item = payload * 1000 + range.start + offset;
                }
            });
            for (i, item) in items.iter().enumerate() {
                assert_eq!(item % 1000, i, "item {i} written by its owner chunk");
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom 3")]
    fn worker_panics_propagate_with_payload() {
        map_node_chunks(8, ExecutionPolicy::parallel(4), |range| {
            if range.contains(&3) {
                panic!("boom 3");
            }
            range.len()
        });
    }
}
