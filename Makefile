# Verification entry points for the edge-coloring reproduction workspace.

.PHONY: verify verify-fast build test clippy fmt bench-check examples doc bench bench-smoke bench-regression bench-rounds bench-io snapshot-fuzz serve-smoke serve-pipeline-smoke serve-fuzz

# The full gate: tier-1 (release build + tests) plus lints, formatting,
# bench compilation, example compilation and the rustdoc gate.
verify: build test clippy fmt bench-check examples doc

# The inner-loop gate: build + tier-1 tests only (no clippy/fmt/doc/bench
# compilation). Use while iterating; run `make verify` before pushing.
verify-fast: build test

build:
	cargo build --release

test:
	cargo test -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --check

bench-check:
	cargo bench --no-run

examples:
	cargo build --examples

# Rustdoc must stay warning-free (missing docs, broken intra-doc links).
doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# The measured baseline: quick E1–E11 sweeps plus the full-size SCALE
# experiment (million-edge graphs at 1/2/4/8 threads), the DYN dynamic
# recoloring experiment (million-edge update streams), the SHARD
# partitioned-substrate experiment (partition quality + cross-shard
# traffic), the FAULT adversary experiment (delivery losses + recovery
# cost), the IO out-of-core experiment (snapshot load paths + locality
# reordering) and the SERVE daemon experiment (concurrent seeded
# read/write mix with replay audit, including the million-edge serving
# row), serialized to BENCH_1.json at the repo root (schema:
# docs/BENCH_SCHEMA.md).
bench:
	cargo run --release -p edgecolor-bench --bin experiments -- quick scale dyn shard fault io serve --emit-json BENCH_1.json

# CI-sized variant: tiny sweeps and down-scaled SCALE/DYN/SHARD graphs
# (FAULT and IO always run their baseline-comparable configurations;
# SERVE keeps its small-torus row and skips the million-edge row).
bench-smoke:
	cargo run --release -p edgecolor-bench --bin experiments -- smoke scale dyn shard fault io serve --emit-json /tmp/bench.json

# The regression gate: the smoke run diffed against the committed
# BENCH_1.json under the tolerance table of crates/bench/src/regression.rs.
# Fails on any deterministic-field mismatch; the diff lands in
# /tmp/bench-regression-diff.txt (CI uploads it as an artifact).
bench-regression:
	cargo run --release -p edgecolor-bench --bin experiments -- smoke scale dyn shard fault io serve --emit-json /tmp/bench.json --check-baseline BENCH_1.json --diff-out /tmp/bench-regression-diff.txt

# The IO gate on its own: the out-of-core load paths (text parse vs binary
# decode vs zero-copy open, plus reorder on/off) diffed against the
# committed baseline — including the ≥ 10× million-edge-torus cold-start
# floor. The diff lands in /tmp/bench-io-diff.txt.
bench-io:
	cargo run --release -p edgecolor-bench --bin experiments -- io --emit-json /tmp/bench-io.json --check-baseline BENCH_1.json --diff-out /tmp/bench-io-diff.txt

# The snapshot corruption battery: round-trip + corruption proptests of the
# binary snapshot codec (truncation, bit flips, forged checksums → typed
# errors, zero panics) with committed proptest seeds, plus the reorder
# determinism battery.
snapshot-fuzz:
	cargo test --release -p diststore --test snapshot_corruption --test snapshot_roundtrip --test reorder_determinism -- --nocapture

# The serving gate: an in-process daemon + the deterministic loadgen on a
# small torus over real TCP. Fails unless qps is nonzero, zero protocol
# errors occurred, every deliberate duplicate was rejected and the final
# coloring passes the checkers (see docs/SERVE.md).
serve-smoke:
	cargo run --release -p distserve --bin serve-loadgen -- --smoke

# The v2 serving gate: one daemon serving two torus tenants, driven by
# pipelined connections spread across both graphs. Fails unless every
# tenant's admission counters match the deterministic expectation exactly
# and both final colorings pass the checkers (see docs/SERVE.md).
serve-pipeline-smoke:
	cargo run --release -p distserve --bin serve-loadgen -- --pipeline-smoke

# The serving test battery: protocol fuzz over v1 and v2 framing
# (arbitrary/truncated/mutated byte streams and handshakes → typed errors,
# zero panics, committed proptest seeds), multi-client concurrency with
# batch-log replay equivalence, multi-graph tenant isolation with
# out-of-order pipelined completion, and hot-swap epoch coherence
# (torn-read detector + corrupt-snapshot rejection).
serve-fuzz:
	cargo test --release -p distserve --test protocol_fuzz --test concurrency --test multi_graph --test hot_swap -- --nocapture

# The round-complexity gate: only E1/E2/E3 (quick-size sweeps, same rows as
# the committed baseline) with the ledger-derived columns — per-doubling
# round ratio, polylog fit exponent, dominant stage, fallback levels. Round
# counts are exact-match in the tolerance table, so any blowup in the
# defective-coloring recursion fails here with a diff that names the
# dominant recursion stage (see docs/ROUNDS.md).
bench-rounds:
	cargo run --release -p edgecolor-bench --bin experiments -- rounds --emit-json /tmp/bench-rounds.json --check-baseline BENCH_1.json --diff-out /tmp/bench-rounds-diff.txt
