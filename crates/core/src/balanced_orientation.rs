//! Generalized balanced edge orientations (Section 5, Definition 5.2).
//!
//! Given a 2-colored bipartite graph `G = (U ∪ V, E)` and per-edge parameters
//! `η_e`, the phase algorithm of Section 5 orients every edge so that for each
//! edge `e = (u, v)` with `u ∈ U`, `v ∈ V`:
//!
//! * oriented from `u` to `v`:  `x_v − x_u ≤ η_e + (1+ε)/2 · deg(e) + β`,
//! * oriented from `v` to `u`:  `x_u − x_v ≤ −η_e + (1+ε)/2 · deg(e) + β`,
//!
//! where `x_w` is the number of edges oriented towards `w` (Theorem 5.6, with
//! `β = O(log³ Δ̄ / ε⁵)` for the paper's constants).
//!
//! Each phase orients a batch of so-far-unoriented high-degree edges
//! (proposal/acceptance with budget `k_φ`), and then repairs the imbalance
//! this creates on the already-oriented edges by playing one instance of the
//! generalized token dropping game of Section 4 and flipping the edges over
//! which tokens moved.

use crate::params::OrientationParams;
use crate::token_dropping::{solve_distributed_with, TokenGame, TokenGameParams};
use distgraph::{BipartiteGraph, EdgeId, NodeId, Orientation};
use distsim::{bits_for, LedgerEntry, Network};

/// The outcome of the Section 5 phase algorithm.
#[derive(Debug, Clone)]
pub struct BalancedOrientationResult {
    /// The computed orientation (every edge is oriented).
    pub orientation: Orientation,
    /// The `ε` of the Definition 5.2 guarantee (`= 8ν`).
    pub eps: f64,
    /// The additive slack `β` guaranteed for the chosen parameter profile.
    pub beta: f64,
    /// Number of phases executed.
    pub phases: u32,
    /// Rounds charged to the enclosing network for this computation.
    pub rounds: u64,
    /// The largest measured value of `±(x_head − x_tail) − η_e − (1+ε)/2·deg(e)`
    /// over all edges, i.e. the additive slack actually needed. Always at most
    /// [`BalancedOrientationResult::beta`] for the paper profile.
    pub measured_beta: f64,
}

/// The per-edge threshold `η_e` of Lemma 5.3 (Equation (3)):
///
/// `η_e = 1 − 2λ_e − (1−λ_e)·deg(u) + λ_e·deg(v) + ε·(λ_e − ½)·deg(e) + (2λ_e − 1)·β`.
pub fn eta_for_lambda(
    deg_u: usize,
    deg_v: usize,
    edge_degree: usize,
    lambda: f64,
    eps: f64,
    beta: f64,
) -> f64 {
    1.0 - 2.0 * lambda - (1.0 - lambda) * deg_u as f64
        + lambda * deg_v as f64
        + eps * (lambda - 0.5) * edge_degree as f64
        + (2.0 * lambda - 1.0) * beta
}

/// Computes a generalized `(ε, β)`-balanced edge orientation of `bg` with
/// respect to the per-edge parameters `eta` (Theorem 5.6).
///
/// The number of rounds used is charged to `net` (the per-phase proposal and
/// acceptance exchanges plus the rounds of the embedded token dropping
/// games); the messages are counters of `O(log n + log Δ)` bits each and are
/// accounted as such.
///
/// # Panics
///
/// Panics if `eta.len()` differs from the number of edges of the graph.
pub fn compute_balanced_orientation(
    bg: &BipartiteGraph,
    eta: &[f64],
    params: &OrientationParams,
    net: &mut Network<'_>,
) -> BalancedOrientationResult {
    let graph = bg.graph();
    assert_eq!(eta.len(), graph.m(), "one eta value per edge");

    let mut orientation = Orientation::new(graph);
    let dbar = graph.max_edge_degree().max(1);
    let nu = params.nu;
    let message_bits = bits_for(graph.n().max(dbar) as u64) as u64 + 4;
    let max_phases = params.phase_count(dbar);
    let rounds_before = net.rounds();
    let mut phases_run = 0u32;
    let mut total_game_rounds = 0u64;
    let mut total_violating = 0usize;

    for phi in 1..=max_phases {
        if orientation.oriented_count() == graph.m() {
            break;
        }
        let threshold = (1.0 - nu).powi(phi as i32) * dbar as f64;

        // Unoriented degree of every node (number of unoriented incident edges).
        let mut unoriented_deg = vec![0usize; graph.n()];
        for e in graph.edges() {
            if !orientation.is_oriented(e) {
                let (a, b) = graph.endpoints(e);
                unoriented_deg[a.index()] += 1;
                unoriented_deg[b.index()] += 1;
            }
        }

        // Snapshot of x_w = indegree at the end of the previous phase.
        let x_prev: Vec<i64> = graph
            .nodes()
            .map(|w| orientation.indegree(w) as i64)
            .collect();

        // Step 1: E_φ = unoriented edges whose unoriented edge degree exceeds
        // (1 − ν)^φ · Δ̄.
        let e_phi: Vec<EdgeId> = graph
            .edges()
            .filter(|&e| {
                if orientation.is_oriented(e) {
                    return false;
                }
                let (a, b) = graph.endpoints(e);
                let d = unoriented_deg[a.index()] + unoriented_deg[b.index()] - 2;
                d as f64 > threshold
            })
            .collect();

        // A phase with E_φ = ∅ cannot change any state: no proposals means no
        // acceptances, and the repair game's tokens come exclusively from
        // this phase's acceptances, so it starts empty and moves nothing.
        // The phase schedule (threshold, k_φ, δ_φ) depends only on φ, so
        // skipping the phase without charging rounds is semantically exact —
        // the orientation just waits for the threshold to decay to the next
        // productive batch.
        if e_phi.is_empty() {
            continue;
        }
        phases_run += 1;

        // Step 2: every edge in E_φ proposes to one of its endpoints.
        let mut proposals_by_target: Vec<Vec<EdgeId>> = vec![Vec::new(); graph.n()];
        for &e in &e_phi {
            let (u, v) = bg.endpoints_uv(e);
            let target = if x_prev[v.index()] - x_prev[u.index()] <= eta[e.index()] as i64 {
                v
            } else {
                u
            };
            proposals_by_target[target.index()].push(e);
        }

        // Step 3: each node accepts at most k_φ proposals (deterministically
        // the ones with the smallest edge identifiers).
        let k_phi = params.k_phi(phi, dbar);
        let mut accepted: Vec<(EdgeId, NodeId)> = Vec::new();
        let mut accepted_count = vec![0usize; graph.n()];
        for w in graph.nodes() {
            let list = &mut proposals_by_target[w.index()];
            list.sort_unstable();
            for &e in list.iter().take(k_phi) {
                accepted.push((e, w));
                accepted_count[w.index()] += 1;
            }
        }

        // Step 5: F'_{<φ} = previously oriented edges currently violating the
        // η condition (evaluated with the x values of the previous phase).
        let mut violating: Vec<EdgeId> = Vec::new();
        for (e, head) in orientation.oriented_edges() {
            let (u, v) = bg.endpoints_uv(e);
            let he = eta[e.index()];
            let violated = if head == v {
                (x_prev[v.index()] - x_prev[u.index()]) as f64 > he
            } else {
                (x_prev[u.index()] - x_prev[v.index()]) as f64 > -he
            };
            if violated {
                violating.push(e);
            }
        }

        // d⁻_φ(w): the minimum deg_G(e) over edges incident to w oriented
        // before this phase (0 if there is none), used for α_w(φ).
        let mut d_minus = vec![usize::MAX; graph.n()];
        for (e, _) in orientation.oriented_edges() {
            let (a, b) = graph.endpoints(e);
            let deg_e = graph.edge_degree(e);
            d_minus[a.index()] = d_minus[a.index()].min(deg_e);
            d_minus[b.index()] = d_minus[b.index()].min(deg_e);
        }
        for d in &mut d_minus {
            if *d == usize::MAX {
                *d = 0;
            }
        }

        // Step 4: newly accepted edges get oriented towards the acceptor.
        for &(e, head) in &accepted {
            orientation.orient(graph, e, head);
        }

        // Step 6: one token dropping game on the violating edges. The game
        // arc of an edge points *against* the current orientation (from the
        // edge's head to its tail); moving a token over the arc corresponds
        // to flipping the edge.
        let mut game_rounds = 0u64;
        if !violating.is_empty() && k_phi >= 1 {
            let arcs: Vec<(NodeId, NodeId)> = violating
                .iter()
                .map(|&e| {
                    let head = orientation.head(e).expect("violating edges are oriented");
                    let tail = graph.other_endpoint(e, head);
                    (head, tail)
                })
                .collect();
            let initial_tokens: Vec<usize> = accepted_count.iter().map(|&c| c.min(k_phi)).collect();
            let game = TokenGame::new(graph.n(), arcs, k_phi, initial_tokens);
            let delta_phi = params.delta_phi(phi, dbar);
            let alpha: Vec<usize> = (0..graph.n())
                .map(|w| params.alpha(d_minus[w], dbar).max(delta_phi))
                .collect();
            let tg_params = TokenGameParams {
                alpha,
                delta: delta_phi,
            };
            let result = solve_distributed_with(&game, &tg_params, params.policy);
            game_rounds = result.rounds;
            // Step 7: flip every edge over which a token moved.
            for (i, &e) in violating.iter().enumerate() {
                if result.moved[i] {
                    orientation.flip(graph, e);
                }
            }
            // Bandwidth: each game round moves one counter per participating
            // edge in the worst case.
            net.charge_messages(result.rounds * violating.len() as u64, message_bits);
        }

        // Round accounting for the phase: one round to exchange x values, one
        // for the proposals, one for the acceptances, plus the game.
        net.charge_rounds(3 + game_rounds);
        net.charge_messages(2 * e_phi.len() as u64 + graph.m() as u64, message_bits);
        total_game_rounds += game_rounds;
        total_violating += violating.len();
    }

    // Any edge still unoriented after the phases has only O(1) unoriented
    // neighbors (Lemma 5.4); orient it arbitrarily (towards its V endpoint).
    let mut leftover = 0u64;
    for e in graph.edges() {
        if !orientation.is_oriented(e) {
            let (_, v) = bg.endpoints_uv(e);
            orientation.orient(graph, e, v);
            leftover += 1;
        }
    }
    if leftover > 0 {
        net.charge_rounds(1);
        net.charge_messages(leftover, message_bits);
    }

    let eps = 8.0 * nu;
    let beta = params.beta_bound(dbar);
    let measured_beta = measure_required_beta(bg, &orientation, eta, eps);
    net.record_ledger(LedgerEntry {
        depth: 0,
        stage: "orientation",
        delta_level: dbar,
        edges: graph.m(),
        rounds: net.rounds() - rounds_before,
        defect_ratio: phases_run as f64,
        fallback: false,
    });
    if total_game_rounds > 0 {
        net.record_ledger(LedgerEntry {
            depth: 0,
            stage: "orient-game",
            delta_level: dbar,
            edges: total_violating,
            rounds: total_game_rounds,
            defect_ratio: f64::NAN,
            fallback: false,
        });
    }

    BalancedOrientationResult {
        orientation,
        eps,
        beta,
        phases: phases_run,
        rounds: net.rounds() - rounds_before,
        measured_beta,
    }
}

/// Computes the smallest additive `β` for which the produced orientation
/// satisfies Definition 5.2 with the given `ε`, i.e.
/// `max_e (±(x_head − x_tail) − η_e − (1+ε)/2 · deg(e))` clamped at 0.
pub fn measure_required_beta(
    bg: &BipartiteGraph,
    orientation: &Orientation,
    eta: &[f64],
    eps: f64,
) -> f64 {
    let graph = bg.graph();
    let mut worst: f64 = 0.0;
    for e in graph.edges() {
        let Some(head) = orientation.head(e) else {
            continue;
        };
        let (u, v) = bg.endpoints_uv(e);
        let xu = orientation.indegree(u) as f64;
        let xv = orientation.indegree(v) as f64;
        let base = (1.0 + eps) / 2.0 * graph.edge_degree(e) as f64;
        let needed = if head == v {
            (xv - xu) - eta[e.index()] - base
        } else {
            (xu - xv) + eta[e.index()] - base
        };
        worst = worst.max(needed);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{OrientationParams, ParamProfile};
    use distgraph::generators;
    use distsim::Model;
    use edgecolor_verify::check_balanced_orientation;

    fn run(
        bg: &BipartiteGraph,
        eps: f64,
        profile: ParamProfile,
    ) -> (BalancedOrientationResult, u64) {
        let params = OrientationParams::new(eps, profile);
        let graph = bg.graph();
        let eta = vec![0.0; graph.m()];
        let mut net = Network::new(graph, Model::Local);
        let result = compute_balanced_orientation(bg, &eta, &params, &mut net);
        (result, net.rounds())
    }

    #[test]
    fn every_edge_gets_oriented() {
        let bg = generators::regular_bipartite(16, 6, 1).unwrap();
        let (result, _) = run(&bg, 0.5, ParamProfile::Practical);
        assert_eq!(result.orientation.oriented_count(), bg.graph().m());
        assert!(result.orientation.check_consistency(bg.graph()));
    }

    #[test]
    fn regular_graph_orientation_is_balanced_with_zero_eta() {
        // On a Δ-regular bipartite graph with η = 0 a perfectly balanced
        // orientation has |x_v − x_u| small; the guarantee of Theorem 5.6
        // allows slack (1+ε)/2·deg(e) + β, which the checker validates.
        let bg = generators::regular_bipartite(32, 8, 7).unwrap();
        let (result, _) = run(&bg, 0.5, ParamProfile::Practical);
        let report = check_balanced_orientation(
            &bg,
            &result.orientation,
            |_| 0.0,
            result.eps,
            result.beta,
            true,
        );
        report.assert_ok();
    }

    #[test]
    fn paper_profile_also_satisfies_its_bound() {
        let bg = generators::regular_bipartite(24, 6, 3).unwrap();
        let (result, _) = run(&bg, 1.0, ParamProfile::Paper);
        let report = check_balanced_orientation(
            &bg,
            &result.orientation,
            |_| 0.0,
            result.eps,
            result.beta,
            true,
        );
        report.assert_ok();
        // The paper-profile β at this scale is enormous; the measured slack
        // must be far smaller.
        assert!(result.measured_beta <= result.beta);
    }

    #[test]
    fn measured_beta_is_reasonable_on_regular_graphs() {
        let bg = generators::regular_bipartite(64, 16, 5).unwrap();
        let (result, _) = run(&bg, 0.5, ParamProfile::Practical);
        // On a regular graph with η = 0 the imbalance should stay well below
        // the edge degree (2·16 − 2 = 30).
        assert!(
            result.measured_beta <= bg.graph().max_edge_degree() as f64,
            "measured beta {} too large",
            result.measured_beta
        );
    }

    #[test]
    fn rounds_are_charged_to_the_network() {
        let bg = generators::regular_bipartite(16, 4, 2).unwrap();
        let (result, rounds) = run(&bg, 0.5, ParamProfile::Practical);
        assert!(rounds > 0);
        assert_eq!(result.rounds, rounds);
        assert!(result.phases >= 1);
    }

    #[test]
    fn irregular_bipartite_graphs_are_handled() {
        let bg = generators::random_bipartite(30, 30, 0.3, 11);
        if bg.graph().m() == 0 {
            return;
        }
        let params = OrientationParams::new(0.5, ParamProfile::Practical);
        let graph = bg.graph();
        // Use η values corresponding to λ = 1/2 and β = the profile bound.
        let beta = params.beta_bound(graph.max_edge_degree().max(1));
        let eta: Vec<f64> = graph
            .edges()
            .map(|e| {
                let (u, v) = bg.endpoints_uv(e);
                eta_for_lambda(
                    graph.degree(u),
                    graph.degree(v),
                    graph.edge_degree(e),
                    0.5,
                    params.eps,
                    beta,
                )
            })
            .collect();
        let mut net = Network::new(graph, Model::Local);
        let result = compute_balanced_orientation(&bg, &eta, &params, &mut net);
        assert_eq!(result.orientation.oriented_count(), graph.m());
        let report = check_balanced_orientation(
            &bg,
            &result.orientation,
            |e| eta[e.index()],
            result.eps,
            result.beta,
            true,
        );
        report.assert_ok();
    }

    #[test]
    fn eta_formula_is_zero_for_symmetric_regular_case() {
        // λ = 1/2 on a Δ-regular graph: Equation (3) reduces to 0.
        let value = eta_for_lambda(8, 8, 14, 0.5, 0.3, 100.0);
        assert!(value.abs() < 1e-9);
        // λ = 1 pushes the threshold up by deg(v) + β-ish amounts.
        let red_heavy = eta_for_lambda(8, 8, 14, 1.0, 0.0, 10.0);
        assert!(red_heavy > 0.0);
        // λ = 0 is the mirror image.
        let blue_heavy = eta_for_lambda(8, 8, 14, 0.0, 0.0, 10.0);
        assert!(
            (red_heavy + blue_heavy - 2.0 * (1.0 - 2.0 * 0.5)).abs() < 1e-9 || blue_heavy < 0.0
        );
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = distgraph::Graph::from_edges(4, &[]).unwrap();
        let bg = BipartiteGraph::from_graph(g).unwrap();
        let params = OrientationParams::new(0.5, ParamProfile::Practical);
        let mut net = Network::new(bg.graph(), Model::Local);
        let result = compute_balanced_orientation(&bg, &[], &params, &mut net);
        assert_eq!(result.orientation.oriented_count(), 0);
        assert_eq!(result.measured_beta, 0.0);
    }
}
