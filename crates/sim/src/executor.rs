//! The parallel round-execution engine.
//!
//! A node's action in one synchronous round of the LOCAL/CONGEST models is a
//! pure function of its own state and its inbox (Section 2 of the paper), so
//! executing a round over all nodes is embarrassingly parallel. This module
//! provides the machinery the simulator uses to exploit that:
//!
//! * [`ExecutionPolicy`] — the knob selecting sequential or multi-threaded
//!   round execution; carried by [`Network`](crate::Network) and accepted by
//!   [`run_program_with`](crate::run_program_with).
//! * [`map_node_chunks`] — the chunked fork/join primitive: the node range
//!   `0..n` is split into contiguous chunks, one `std::thread::scope` worker
//!   per chunk, and the per-chunk results are returned **in chunk order** so
//!   callers can merge them deterministically.
//! * [`Chunks`] — the deterministic chunk geometry, including the inverse
//!   `chunk_of` map used to bucket outgoing messages by destination chunk.
//!
//! Determinism contract: for a fixed input, the sequential path and the
//! parallel path at *any* thread count produce byte-identical mailboxes,
//! metrics and outputs. The engine guarantees this by (a) giving every worker
//! a read-only snapshot of the round's inputs, (b) merging per-chunk message
//! lists in global sender order (chunk order × in-chunk order), and
//! (c) folding per-chunk [`Metrics`](crate::Metrics) with the same
//! commutative/associative operations the sequential loop applies.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// How the simulator executes the per-node work of one synchronous round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecutionPolicy {
    /// One thread walks all nodes in index order (the reference semantics).
    #[default]
    Sequential,
    /// A `std::thread::scope` worker pool over contiguous node chunks.
    ///
    /// Results are bit-identical to [`ExecutionPolicy::Sequential`] for every
    /// thread count; only wall-clock time changes.
    Parallel {
        /// Number of worker threads (clamped to at least 1).
        threads: usize,
    },
    /// The partitioned execution substrate: the graph is split into `shards`
    /// edge-balanced shards (`distshard::bfs_partition`), each round's
    /// per-node work runs shard-locally (shards distributed over `threads`
    /// scoped workers), and only the messages crossing a shard boundary move
    /// between shards, coalesced into one buffer per shard pair per round by
    /// a `distshard::ShardRouter`.
    ///
    /// Results are bit-identical to [`ExecutionPolicy::Sequential`] for every
    /// shard and thread count; only wall-clock time and the delivery route
    /// change. Non-network per-node work (the chunked compute phases driven
    /// through [`map_node_chunks`]) treats this policy as
    /// `Parallel { threads }`.
    Sharded {
        /// Number of shards the graph is partitioned into (clamped to ≥ 1).
        shards: usize,
        /// Number of worker threads shards are distributed over (clamped to
        /// at least 1; clamped to `shards` at execution time).
        threads: usize,
    },
}

impl ExecutionPolicy {
    /// A parallel policy with the given number of worker threads.
    pub fn parallel(threads: usize) -> Self {
        ExecutionPolicy::Parallel {
            threads: threads.max(1),
        }
    }

    /// A parallel policy sized to the host's available parallelism
    /// (1 thread when the host does not report it).
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ExecutionPolicy::parallel(threads)
    }

    /// A sharded policy with the given shard and worker-thread counts
    /// (both clamped to at least 1).
    pub fn sharded(shards: usize, threads: usize) -> Self {
        ExecutionPolicy::Sharded {
            shards: shards.max(1),
            threads: threads.max(1),
        }
    }

    /// The number of worker threads this policy uses (1 for sequential).
    pub fn threads(&self) -> usize {
        match self {
            ExecutionPolicy::Sequential => 1,
            ExecutionPolicy::Parallel { threads } => (*threads).max(1),
            ExecutionPolicy::Sharded { threads, .. } => (*threads).max(1),
        }
    }

    /// The number of shards this policy partitions the graph into (1 unless
    /// [`ExecutionPolicy::Sharded`]).
    pub fn shards(&self) -> usize {
        match self {
            ExecutionPolicy::Sharded { shards, .. } => (*shards).max(1),
            _ => 1,
        }
    }

    /// Returns `true` if this policy actually spawns workers.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// Returns `true` if spawning workers can actually overlap execution on
    /// this host. On a single-hardware-thread machine a `Parallel { 8 }`
    /// policy gets no concurrency — the spawned workers just time-slice one
    /// core and the spawn/join overhead shows up as a speedup *below* 1.0 —
    /// so the chunked primitives fall back to running the (identical) chunk
    /// geometry inline on the calling thread. The result is bit-identical
    /// either way; only wall-clock changes.
    pub fn spawning_pays_off(&self) -> bool {
        self.is_parallel() && host_parallelism() > 1
    }

    /// The number of workers worth spawning on this host: the policy's
    /// thread count capped at the available hardware parallelism (but never
    /// below 1). Chunk/shard *geometry* always follows [`Self::threads`] so
    /// results stay bit-identical; only the worker count adapts.
    pub fn effective_threads(&self) -> usize {
        self.threads().min(host_parallelism()).max(1)
    }

    /// Returns `true` if rounds are executed on the sharded substrate
    /// (regardless of the worker-thread count).
    pub fn is_sharded(&self) -> bool {
        matches!(self, ExecutionPolicy::Sharded { .. })
    }
}

/// The host's available parallelism, probed once per process.
fn host_parallelism() -> usize {
    static HOST: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

impl std::fmt::Display for ExecutionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionPolicy::Sequential => write!(f, "sequential"),
            ExecutionPolicy::Parallel { threads } => write!(f, "parallel({threads})"),
            ExecutionPolicy::Sharded { shards, threads } => {
                write!(f, "sharded({shards}x{threads})")
            }
        }
    }
}

/// The deterministic chunk geometry for `n` items split into (at most)
/// `chunks` contiguous near-equal ranges.
///
/// The first `n % chunks` ranges have `⌈n/chunks⌉` items, the rest
/// `⌊n/chunks⌋`; empty ranges are never produced, so for `n < chunks` there
/// are exactly `n` singleton ranges.
#[derive(Debug, Clone)]
pub struct Chunks {
    n: usize,
    base: usize,
    long: usize,
    count: usize,
}

impl Chunks {
    /// Chunk geometry for `n` items and the requested chunk count.
    pub fn new(n: usize, chunks: usize) -> Self {
        let count = chunks.max(1).min(n.max(1));
        Chunks {
            n,
            base: n / count,
            long: n % count,
            count,
        }
    }

    /// Number of chunks (0 items still yield one empty chunk).
    pub fn count(&self) -> usize {
        self.count
    }

    /// The half-open item range of chunk `c`.
    pub fn range(&self, c: usize) -> Range<usize> {
        debug_assert!(c < self.count);
        let start = if c < self.long {
            c * (self.base + 1)
        } else {
            self.long * (self.base + 1) + (c - self.long) * self.base
        };
        let len = if c < self.long {
            self.base + 1
        } else {
            self.base
        };
        start..(start + len).min(self.n)
    }

    /// All chunk ranges in order.
    pub fn ranges(&self) -> Vec<Range<usize>> {
        (0..self.count).map(|c| self.range(c)).collect()
    }

    /// The chunk an item index belongs to (inverse of [`Chunks::range`]).
    pub fn chunk_of(&self, item: usize) -> usize {
        debug_assert!(item < self.n.max(1));
        let boundary = self.long * (self.base + 1);
        if item < boundary {
            item / (self.base + 1)
        } else {
            // `base` is 0 only for n = 0, where no valid item exists.
            self.long + (item - boundary).checked_div(self.base).unwrap_or(0)
        }
    }
}

/// Applies `f` to every chunk of `0..n` and returns the results in chunk
/// order.
///
/// With a sequential policy (or a single chunk) `f` runs on the calling
/// thread; otherwise one scoped worker per chunk runs `f` concurrently. A
/// panic inside a worker is re-raised on the calling thread with its original
/// payload (the first panicking chunk in chunk order wins), so assertion
/// messages match the sequential path.
pub fn map_node_chunks<T, F>(n: usize, policy: ExecutionPolicy, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let chunks = Chunks::new(n, policy.threads());
    if !policy.spawning_pays_off() || chunks.count() <= 1 {
        return chunks.ranges().into_iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .ranges()
            .into_iter()
            .map(|range| scope.spawn(move || f(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(value) => value,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Runs `f` over disjoint mutable chunk slices of `items`, pairing each chunk
/// with the matching element of `per_chunk` (which must have one entry per
/// chunk of `Chunks::new(items.len(), policy.threads())`).
///
/// Used for the delivery phase of a parallel round: each worker owns the
/// mailboxes of a contiguous node range and drains the per-sender-chunk
/// buckets addressed to it, in sender-chunk order.
pub fn for_each_chunk_mut<T, U, F>(
    items: &mut [T],
    policy: ExecutionPolicy,
    per_chunk: Vec<U>,
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(Range<usize>, &mut [T], U) + Sync,
{
    let chunks = Chunks::new(items.len(), policy.threads());
    assert_eq!(
        per_chunk.len(),
        chunks.count(),
        "one payload per chunk required"
    );
    let ranges = chunks.ranges();
    // Split `items` into the chunk slices up front so workers own disjoint
    // mutable views.
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    for range in &ranges {
        let (head, tail) = rest.split_at_mut(range.len());
        slices.push(head);
        rest = tail;
    }
    if !policy.spawning_pays_off() || ranges.len() <= 1 {
        for ((range, slice), payload) in ranges.into_iter().zip(slices).zip(per_chunk) {
            f(range, slice, payload);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for ((range, slice), payload) in ranges.into_iter().zip(slices).zip(per_chunk) {
            let f = &f;
            handles.push(scope.spawn(move || f(range, slice, payload)));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_thread_counts() {
        assert_eq!(ExecutionPolicy::Sequential.threads(), 1);
        assert_eq!(ExecutionPolicy::parallel(0).threads(), 1);
        assert_eq!(ExecutionPolicy::parallel(4).threads(), 4);
        assert!(!ExecutionPolicy::Sequential.is_parallel());
        assert!(!ExecutionPolicy::parallel(1).is_parallel());
        assert!(ExecutionPolicy::parallel(2).is_parallel());
        assert!(ExecutionPolicy::auto().threads() >= 1);
        assert_eq!(ExecutionPolicy::default(), ExecutionPolicy::Sequential);
        assert_eq!(format!("{}", ExecutionPolicy::parallel(3)), "parallel(3)");
        assert_eq!(format!("{}", ExecutionPolicy::Sequential), "sequential");
    }

    #[test]
    fn sharded_policy_accessors() {
        let p = ExecutionPolicy::sharded(4, 2);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.threads(), 2);
        assert!(p.is_sharded());
        assert!(p.is_parallel());
        let single = ExecutionPolicy::sharded(0, 0);
        assert_eq!(single.shards(), 1);
        assert_eq!(single.threads(), 1);
        assert!(single.is_sharded());
        assert!(!single.is_parallel());
        assert!(!ExecutionPolicy::Sequential.is_sharded());
        assert_eq!(ExecutionPolicy::Sequential.shards(), 1);
        assert_eq!(ExecutionPolicy::parallel(8).shards(), 1);
        assert_eq!(
            format!("{}", ExecutionPolicy::sharded(4, 2)),
            "sharded(4x2)"
        );
    }

    #[test]
    fn chunk_geometry_covers_range_exactly() {
        for n in [0usize, 1, 2, 3, 7, 16, 100, 101] {
            for c in [1usize, 2, 3, 4, 8, 64] {
                let chunks = Chunks::new(n, c);
                let ranges = chunks.ranges();
                assert_eq!(ranges.len(), chunks.count());
                let mut expected = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expected, "contiguous chunks for n={n} c={c}");
                    assert!(r.end > r.start || n == 0, "no empty chunks for n={n} c={c}");
                    expected = r.end;
                }
                assert_eq!(expected, n, "chunks cover 0..{n} for c={c}");
            }
        }
    }

    #[test]
    fn chunk_of_inverts_range() {
        for n in [1usize, 2, 5, 17, 64, 100] {
            for c in [1usize, 2, 3, 7, 200] {
                let chunks = Chunks::new(n, c);
                for chunk in 0..chunks.count() {
                    for item in chunks.range(chunk) {
                        assert_eq!(
                            chunks.chunk_of(item),
                            chunk,
                            "chunk_of({item}) for n={n} c={c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn map_node_chunks_preserves_chunk_order() {
        for policy in [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::parallel(2),
            ExecutionPolicy::parallel(5),
        ] {
            let sums = map_node_chunks(20, policy, |range| range.sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), (0..20).sum::<usize>());
            // Each chunk's sum corresponds to a contiguous range, and the
            // chunk order matches the range order.
            let chunks = Chunks::new(20, policy.threads());
            let expected: Vec<usize> = chunks
                .ranges()
                .into_iter()
                .map(|r| r.sum::<usize>())
                .collect();
            assert_eq!(sums, expected);
        }
    }

    #[test]
    fn map_node_chunks_handles_empty_input() {
        let out = map_node_chunks(0, ExecutionPolicy::parallel(4), |range| range.len());
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn for_each_chunk_mut_partitions_items() {
        for policy in [ExecutionPolicy::Sequential, ExecutionPolicy::parallel(3)] {
            let mut items = vec![0usize; 11];
            let chunks = Chunks::new(items.len(), policy.threads());
            let payloads: Vec<usize> = (0..chunks.count()).map(|c| c + 1).collect();
            for_each_chunk_mut(&mut items, policy, payloads, |range, slice, payload| {
                assert_eq!(slice.len(), range.len());
                for (offset, item) in slice.iter_mut().enumerate() {
                    *item = payload * 1000 + range.start + offset;
                }
            });
            for (i, item) in items.iter().enumerate() {
                assert_eq!(item % 1000, i, "item {i} written by its owner chunk");
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom 3")]
    fn worker_panics_propagate_with_payload() {
        map_node_chunks(8, ExecutionPolicy::parallel(4), |range| {
            if range.contains(&3) {
                panic!("boom 3");
            }
            range.len()
        });
    }
}
