//! Property coverage for the two sim substrate modules the fault layer
//! leans on: `payload` (message size accounting — the adversary's byte
//! counters and the CONGEST audit both trust `encoded_bits`) and
//! `identifiers` (unique IDs — the symmetry-breaking the deterministic
//! adversary hashes against).

use distsim::{bits_for, IdAssignment, Payload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `bits_for` is the minimal width: the value round-trips through a
    /// `bits_for(v)`-bit field and through no narrower one.
    #[test]
    fn bits_for_is_the_minimal_roundtrip_width(v in 0u64..u64::MAX) {
        let bits = bits_for(v);
        prop_assert!((1..=64).contains(&bits));
        // The value fits: writing and reading back `bits` bits is lossless.
        if bits < 64 {
            prop_assert!(v < 1u64 << bits, "{v} does not fit in {bits} bits");
        }
        // And the width is minimal (one bit fewer loses information).
        if bits > 1 {
            prop_assert!(v >= 1u64 << (bits - 1), "{v} also fits in {} bits", bits - 1);
        }
    }

    /// Unsigned payloads report exactly `bits_for`; signed ones add the
    /// sign bit on top of the magnitude.
    #[test]
    fn scalar_encoded_bits_match_bits_for(v in 0u64..u64::MAX, s in i64::MIN..i64::MAX) {
        prop_assert_eq!(v.encoded_bits(), bits_for(v));
        prop_assert_eq!((v as u32 as u64).encoded_bits(), (v as u32).encoded_bits());
        prop_assert_eq!(s.encoded_bits(), 1 + bits_for(s.unsigned_abs()));
    }

    /// Composite sizes decompose exactly: tuples sum, options pay one tag
    /// bit, vectors pay a length prefix plus their elements. The CONGEST
    /// accounting (and the fault layer's byte counters) rely on this
    /// decomposition being exact, not an estimate.
    #[test]
    fn composite_encoded_bits_decompose(
        (a, b, flag, v) in (0u64..1 << 40, 0u32..u32::MAX, 0u8..2, collection::vec(0u64..1 << 20, 0..12))
    ) {
        let flag = flag == 1;
        prop_assert_eq!((a, b).encoded_bits(), a.encoded_bits() + b.encoded_bits());
        prop_assert_eq!(
            (a, b, flag).encoded_bits(),
            a.encoded_bits() + b.encoded_bits() + 1
        );
        prop_assert_eq!(Some(a).encoded_bits(), 1 + a.encoded_bits());
        prop_assert_eq!(None::<u64>.encoded_bits(), 1);
        let elements: usize = v.iter().map(Payload::encoded_bits).sum();
        prop_assert_eq!(v.encoded_bits(), bits_for(v.len() as u64) + elements);
    }

    /// Monotonicity: a numerically larger value never reports fewer bits
    /// (the adversary's per-message accounting must be order-consistent).
    #[test]
    fn encoded_bits_is_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(lo.encoded_bits() <= hi.encoded_bits());
    }

    /// Scattered identifiers: unique, positive, inside the declared space,
    /// and a pure function of `(n, seed)`.
    #[test]
    fn scattered_ids_are_unique_in_range_and_deterministic(
        (n, seed) in (1usize..300, 0u64..10_000)
    ) {
        let ids = IdAssignment::scattered(n, seed);
        prop_assert_eq!(ids.len(), n);
        let mut seen = std::collections::HashSet::with_capacity(n);
        for v in 0..n {
            let id = ids.id(distgraph::NodeId::new(v));
            prop_assert!(id >= 1);
            prop_assert!(id <= ids.space());
            prop_assert!(seen.insert(id), "duplicate identifier");
        }
        prop_assert!(ids.space() <= (n as u64).pow(3).max(n as u64));
        prop_assert_eq!(IdAssignment::scattered(n, seed), ids);
    }

    /// ID-ordering invariant: sorting nodes by identifier is a permutation
    /// (strict total order, no ties) — the property every symmetry-breaking
    /// step and every deterministic adversary hash depends on.
    #[test]
    fn id_order_is_a_strict_total_order((n, seed) in (2usize..200, 0u64..5_000)) {
        let ids = IdAssignment::scattered(n, seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| ids.id(distgraph::NodeId::new(v)));
        // No adjacent ties after sorting ⇒ strict order.
        for pair in order.windows(2) {
            let a = ids.id(distgraph::NodeId::new(pair[0]));
            let b = ids.id(distgraph::NodeId::new(pair[1]));
            prop_assert!(a < b);
        }
        // And it is a permutation of the node set.
        let mut back = order.clone();
        back.sort_unstable();
        prop_assert_eq!(back, (0..n).collect::<Vec<_>>());
    }

    /// `from_vec` round-trips explicit assignments and reports the tight
    /// space bound (the maximum identifier).
    #[test]
    fn from_vec_roundtrips_and_bounds_space(raw in collection::vec(1u64..1 << 48, 1..64)) {
        let mut unique = raw.clone();
        unique.sort_unstable();
        unique.dedup();
        let ids = IdAssignment::from_vec(unique.clone());
        for (v, &expected) in unique.iter().enumerate() {
            prop_assert_eq!(ids.id(distgraph::NodeId::new(v)), expected);
        }
        prop_assert_eq!(ids.space(), *unique.iter().max().unwrap());
        prop_assert!(!ids.is_empty());
    }

    /// Contiguous identifiers are `1..=n` in node order with space `n`.
    #[test]
    fn contiguous_ids_are_the_identity(n in 1usize..500) {
        let ids = IdAssignment::contiguous(n);
        for v in 0..n {
            prop_assert_eq!(ids.id(distgraph::NodeId::new(v)), v as u64 + 1);
        }
        prop_assert_eq!(ids.space(), n as u64);
    }
}

/// Different seeds disagree somewhere (not a proptest: a fixed spot-check
/// matrix keeps this deterministic and cheap).
#[test]
fn scattered_seeds_decorrelate() {
    for n in [10usize, 50, 200] {
        let a = IdAssignment::scattered(n, 1);
        let b = IdAssignment::scattered(n, 2);
        assert_ne!(a, b, "seeds 1 and 2 collide at n={n}");
    }
}
