//! A minimal blocking client for the wire protocol: one request, one
//! response, in order, over a single connection.

use crate::error::WireError;
use crate::wire::{read_frame, write_frame, MetricsReport, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on transport failure (including the server closing
    /// mid-exchange), [`WireError::Protocol`] if the response payload is
    /// malformed.
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &req.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(WireError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ))),
        }
    }

    /// Color lookup by stable edge id.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn lookup(&mut self, stable: u64) -> Result<Response, WireError> {
        self.request(&Request::Lookup { stable })
    }

    /// Submits a mutation batch.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn submit(
        &mut self,
        delete: Vec<u64>,
        insert: Vec<(u32, u32)>,
    ) -> Result<Response, WireError> {
        self.request(&Request::Submit { delete, insert })
    }

    /// Fetches the metrics snapshot, decoded into a [`MetricsReport`].
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; an unexpected response kind maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn metrics(&mut self) -> Result<MetricsReport, WireError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(report) => Ok(report),
            other => Err(WireError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a metrics report, got {other:?}"),
            ))),
        }
    }

    /// Applies all pending batches server-side.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn flush(&mut self) -> Result<Response, WireError> {
        self.request(&Request::Flush)
    }

    /// Requests a snapshot hot-swap.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn swap(&mut self, path: &str) -> Result<Response, WireError> {
        self.request(&Request::Swap { path: path.into() })
    }

    /// Asks the daemon to stop.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Response, WireError> {
        self.request(&Request::Shutdown)
    }
}
