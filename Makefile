# Verification entry points for the edge-coloring reproduction workspace.

.PHONY: verify build test clippy fmt bench-check examples doc bench bench-smoke

# The full gate: tier-1 (release build + tests) plus lints, formatting,
# bench compilation, example compilation and the rustdoc gate.
verify: build test clippy fmt bench-check examples doc

build:
	cargo build --release

test:
	cargo test -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --check

bench-check:
	cargo bench --no-run

examples:
	cargo build --examples

# Rustdoc must stay warning-free (missing docs, broken intra-doc links).
doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# The measured baseline: quick E1–E11 sweeps plus the full-size SCALE
# experiment (million-edge graphs at 1/2/4/8 threads), the DYN dynamic
# recoloring experiment (million-edge update streams) and the SHARD
# partitioned-substrate experiment (partition quality + cross-shard
# traffic), serialized to BENCH_1.json at the repo root (schema:
# docs/BENCH_SCHEMA.md).
bench:
	cargo run --release -p edgecolor-bench --bin experiments -- quick scale dyn shard --emit-json BENCH_1.json

# CI-sized variant: tiny sweeps and down-scaled SCALE/DYN/SHARD graphs.
bench-smoke:
	cargo run --release -p edgecolor-bench --bin experiments -- smoke scale dyn shard --emit-json /tmp/bench.json
