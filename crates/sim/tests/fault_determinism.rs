//! The determinism-under-faults battery.
//!
//! The contract of `distsim::faults`: same seed + same [`FaultPlan`] ⇒
//! **bit-identical** mailboxes, outputs, metrics and fault stats under every
//! execution policy — `Sequential`, `Parallel{2,8}`, `Sharded{2,4,8}`.
//! This suite pins that contract from raw `Network` exchanges up to full
//! strict-layer program runs, plus the individual adversary semantics
//! (drops, duplicates, delays, crash/restart windows, link partitions that
//! heal, and the async scheduler's reordering).

use distgraph::{generators, EdgeId, Graph, NodeId};
use distsim::{
    run_program, run_program_under_faults, AsyncScheduler, ExecutionPolicy, FaultPlan, FaultRates,
    IdAssignment, Incoming, Model, Network, NodeCtx, NodeProgram, ProgramRun, Step,
};
use proptest::prelude::*;

/// The policies every faulty run must agree across.
fn policy_matrix() -> Vec<ExecutionPolicy> {
    vec![
        ExecutionPolicy::Sequential,
        ExecutionPolicy::parallel(2),
        ExecutionPolicy::parallel(8),
        ExecutionPolicy::sharded(2, 2),
        ExecutionPolicy::sharded(4, 2),
        ExecutionPolicy::sharded(8, 3),
    ]
}

/// Max-id flooding with a fixed horizon: tolerant of lost messages (the
/// output is whatever maximum made it through), which makes it a good probe
/// for fault determinism — every lost/delayed/duplicated message shows up
/// in the outputs.
struct Flood {
    best: u64,
    rounds_left: u32,
}

impl NodeProgram for Flood {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u64)> {
        self.best = ctx.id;
        ctx.ports.iter().map(|p| (p.edge, self.best)).collect()
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Step<u64, u64> {
        for m in inbox {
            self.best = self.best.max(m.msg);
        }
        if self.rounds_left == 0 {
            return Step::Halt(self.best);
        }
        self.rounds_left -= 1;
        Step::Send(ctx.ports.iter().map(|p| (p.edge, self.best)).collect())
    }
}

fn flood_run(
    g: &Graph,
    ids: &IdAssignment,
    policy: ExecutionPolicy,
    plan: &FaultPlan,
) -> ProgramRun<u64> {
    run_program_under_faults(g, ids, Model::Local, policy, 24, plan.clone(), |_| Flood {
        best: 0,
        rounds_left: 8,
    })
}

/// A mid-size adversary exercising every fault class at once.
fn full_plan(seed: u64, g: &Graph) -> FaultPlan {
    let mut plan = FaultPlan::new(seed)
        .with_drop_rate(0.08)
        .with_duplicate_rate(0.05)
        .with_delay_rate(0.07, 3)
        .with_partition_granularity(3)
        .with_link_cut(0, 1, 2, 3)
        .with_link_cut(1, 2, 4, 2);
    // Crash two seed-chosen nodes with overlapping windows.
    let a = NodeId::new((seed as usize * 7) % g.n());
    let b = NodeId::new((seed as usize * 13 + 1) % g.n());
    plan = plan.with_crash(a, 2, 5);
    if b != a {
        plan = plan.with_crash(b, 3, u64::MAX); // never restarts
    }
    plan
}

#[test]
fn faulty_program_runs_are_bit_identical_across_policies() {
    let g = generators::random_regular(96, 6, 5).unwrap();
    let ids = IdAssignment::scattered(96, 3);
    let plan = full_plan(17, &g);
    let reference = flood_run(&g, &ids, ExecutionPolicy::Sequential, &plan);
    let stats = reference.faults.expect("faulty run carries stats");
    // The adversary genuinely acted.
    assert!(stats.dropped > 0, "{stats:?}");
    assert!(stats.duplicated > 0, "{stats:?}");
    assert!(stats.delayed > 0 && stats.released > 0, "{stats:?}");
    assert!(stats.crash_dropped > 0, "{stats:?}");
    assert!(stats.crashed_steps > 0, "{stats:?}");
    assert!(stats.partition_dropped > 0, "{stats:?}");
    for policy in policy_matrix() {
        let run = flood_run(&g, &ids, policy, &plan);
        assert_eq!(run.outputs, reference.outputs, "outputs differ at {policy}");
        assert_eq!(run.metrics, reference.metrics, "metrics differ at {policy}");
        assert_eq!(run.faults, reference.faults, "stats differ at {policy}");
    }
}

#[test]
fn faulty_network_exchanges_are_bit_identical_across_policies() {
    let g = generators::random_regular(64, 6, 11).unwrap();
    let plan = full_plan(29, &g);
    let send = |v: NodeId| -> Vec<(EdgeId, u64)> {
        g.neighbors(v)
            .iter()
            .map(|nb| (nb.edge, (v.index() * 31 + nb.edge.index()) as u64))
            .collect()
    };
    let mut reference_net = Network::new(&g, Model::Local);
    reference_net.install_faults(plan.clone());
    // Several rounds so the delay queue spans rounds.
    let reference: Vec<_> = (0..6).map(|_| reference_net.exchange_sync(send)).collect();
    assert!(reference_net.fault_stats().unwrap().delayed > 0);
    for policy in policy_matrix() {
        let mut net = Network::with_policy(&g, Model::Local, policy);
        net.install_faults(plan.clone());
        for (round, expected) in reference.iter().enumerate() {
            let mail = net.exchange_sync(send);
            assert_eq!(&mail, expected, "round {round} differs at {policy}");
        }
        assert_eq!(net.metrics(), reference_net.metrics(), "at {policy}");
        assert_eq!(
            net.fault_stats(),
            reference_net.fault_stats(),
            "at {policy}"
        );
    }
}

#[test]
fn drop_everything_delivers_nothing() {
    let g = generators::cycle(10);
    let mut net = Network::new(&g, Model::Local);
    net.install_faults(FaultPlan::new(1).with_drop_rate(1.0));
    let mail = net.broadcast(|v| v.index() as u64);
    assert_eq!(mail.total(), 0);
    let stats = net.fault_stats().unwrap();
    assert_eq!(stats.dropped, 2 * g.m() as u64);
    assert_eq!(stats.delivered, 0);
    // The base metrics still account the attempted traffic.
    assert_eq!(net.metrics().messages, 2 * g.m() as u64);
}

#[test]
fn duplicates_arrive_adjacent_and_are_counted() {
    let g = generators::path(2);
    let mut net = Network::new(&g, Model::Local);
    net.install_faults(FaultPlan::new(4).with_duplicate_rate(1.0));
    let mail = net.broadcast(|v| v.index() as u32);
    // Each endpoint's single message is duplicated.
    assert_eq!(mail.total(), 4);
    for v in g.nodes() {
        let inbox = mail.inbox(v);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0], inbox[1], "duplicate copies are adjacent");
    }
    let stats = net.fault_stats().unwrap();
    assert_eq!(stats.duplicated, 2);
    assert_eq!(stats.delivered, 4);
}

#[test]
fn delays_shift_messages_by_k_rounds() {
    let g = generators::path(2);
    let mut net = Network::new(&g, Model::Local);
    // Delay every message by exactly one round.
    net.install_faults(FaultPlan::new(9).with_delay_rate(1.0, 1));
    let r1 = net.broadcast(|_| 7u32);
    assert_eq!(r1.total(), 0, "round 1 traffic is held back");
    let r2 = net.broadcast(|_| 8u32);
    // Round 2 delivers the delayed round-1 messages (k = 1) but holds its own.
    assert_eq!(r2.total(), 2);
    for v in g.nodes() {
        assert_eq!(r2.inbox(v)[0].msg, 7);
    }
    let stats = net.fault_stats().unwrap();
    assert_eq!(stats.delayed, 4);
    assert_eq!(stats.released, 2);
}

#[test]
fn message_type_switches_cost_nothing_without_in_flight_delays() {
    // Regression: storing an *empty* typed delay queue used to make the
    // next round of a different message type count a phantom drop.
    let g = generators::path(2);
    let mut net = Network::new(&g, Model::Local);
    net.install_faults(FaultPlan::new(3)); // fault-free plan
    net.broadcast(|_| 1u32);
    net.broadcast(|_| 2u64); // type switch, no delayed traffic
    net.broadcast(|_| 3u32); // and back
    let stats = net.fault_stats().unwrap();
    assert_eq!(stats.dropped, 0, "phantom drop on type switch: {stats:?}");
    assert_eq!(stats.delivered, 6);
}

#[test]
fn delays_into_an_open_link_cut_are_lost() {
    // Two triangles joined by a bridge; every message is delayed by one
    // round, and the bridge is cut exactly for round 2. The cut applies at
    // the *delivery* round on fresh and released messages alike: the
    // bridge traffic of round 1 (link healthy when sent) releases into the
    // open cut at round 2 and is lost, round 2's fresh bridge traffic is
    // cut on the spot, and round 3's bridge traffic (cut healed) is merely
    // delayed into round 4.
    let g =
        Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)]).unwrap();
    let mut net = Network::new(&g, Model::Local);
    net.install_faults(
        FaultPlan::new(6)
            .with_delay_rate(1.0, 1)
            .with_partition_granularity(2)
            .with_link_cut(0, 1, 2, 1), // open exactly at round 2
    );
    let full = 2 * g.m();
    let r1 = net.broadcast(|v| v.index() as u64);
    assert_eq!(r1.total(), 0, "everything is delayed by one round");
    let r2 = net.broadcast(|v| v.index() as u64);
    // Round 1's traffic releases at round 2, minus the two bridge messages
    // arriving into the open cut.
    assert_eq!(r2.total(), full - 2);
    let r3 = net.broadcast(|v| v.index() as u64);
    // Round 2's bridge messages were cut on arrival (never delayed), so
    // round 3 releases only the other twelve.
    assert_eq!(r3.total(), full - 2);
    let r4 = net.broadcast(|v| v.index() as u64);
    // The cut healed before round 3's delivery: everything flows again.
    assert_eq!(r4.total(), full);
    let stats = net.fault_stats().unwrap();
    // Two released + two fresh bridge messages died on the open cut.
    assert_eq!(stats.partition_dropped, 4, "{stats:?}");
}

#[test]
fn crash_windows_suppress_and_restart_restores() {
    let g = generators::path(3);
    let ids = IdAssignment::contiguous(3);
    // Node 1 (the middle) is down for rounds 1..3, restarts at round 3.
    let plan = FaultPlan::new(2).with_crash(NodeId::new(1), 1, 3);
    let run = run_program_under_faults(
        &g,
        &ids,
        Model::Local,
        ExecutionPolicy::Sequential,
        16,
        plan,
        |_| Flood {
            best: 0,
            rounds_left: 6,
        },
    );
    // Everyone still halts (the window closed before the horizon) and the
    // global max eventually floods through the restarted node.
    assert!(run.all_halted());
    let stats = run.faults.unwrap();
    let outs = run.expect_outputs();
    assert_eq!(outs, vec![3, 3, 3]);
    assert_eq!(stats.crashed_steps, 2, "node 1 skipped rounds 1 and 2");
    assert!(stats.crash_dropped > 0, "in-flight messages were lost");
}

#[test]
fn permanent_crash_leaves_node_unhalted() {
    let g = generators::path(3);
    let ids = IdAssignment::contiguous(3);
    let plan = FaultPlan::new(2).with_crash(NodeId::new(0), 1, u64::MAX);
    let run = run_program_under_faults(
        &g,
        &ids,
        Model::Local,
        ExecutionPolicy::Sequential,
        10,
        plan,
        |_| Flood {
            best: 0,
            rounds_left: 4,
        },
    );
    assert!(!run.all_halted());
    assert!(run.outputs[0].is_none(), "crashed node never halts");
    assert!(run.outputs[1].is_some() && run.outputs[2].is_some());
}

#[test]
fn link_partitions_sever_then_heal() {
    // Two cliques joined by a bridge: the reference 2-partition puts the
    // cliques in different shards, so a (0,1) link cut severs the bridge.
    let g =
        Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)]).unwrap();
    let bridge_plan = FaultPlan::new(5)
        .with_partition_granularity(2)
        .with_link_cut(0, 1, 1, 2); // severed for rounds 1..3
    let mut net = Network::new(&g, Model::Local);
    net.install_faults(bridge_plan);
    let full = 2 * g.m();
    let r1 = net.broadcast(|v| v.index() as u64);
    let r2 = net.broadcast(|v| v.index() as u64);
    let r3 = net.broadcast(|v| v.index() as u64);
    // While severed, exactly the two bridge-crossing messages are lost.
    assert_eq!(r1.total(), full - 2);
    assert_eq!(r2.total(), full - 2);
    // Healed: everything flows again.
    assert_eq!(r3.total(), full);
    let stats = net.fault_stats().unwrap();
    assert_eq!(stats.partition_dropped, 4);
}

#[test]
fn async_scheduler_reorders_inboxes_as_a_permutation() {
    let g = generators::star(6);
    let ids = IdAssignment::contiguous(7);
    // Fault-free plan: the scheduler only reorders.
    let scheduler = AsyncScheduler::new(FaultPlan::new(123));
    let run = scheduler.run_program(
        &g,
        &ids,
        Model::Local,
        ExecutionPolicy::Sequential,
        8,
        |_| Flood {
            best: 0,
            rounds_left: 3,
        },
    );
    let clean = run_program(&g, &ids, Model::Local, 8, |_| Flood {
        best: 0,
        rounds_left: 3,
    });
    // Flooding is order-oblivious, so outputs and metrics are untouched by
    // pure reordering — and the center's 6-message inbox was permuted.
    assert_eq!(run.outputs, clean.outputs);
    assert_eq!(run.metrics, clean.metrics);
    let stats = run.faults.unwrap();
    assert!(stats.reordered_inboxes > 0);
    assert_eq!(stats.dropped + stats.duplicated + stats.delayed, 0);
}

#[test]
fn reordering_is_observable_and_deterministic() {
    let g = generators::star(8);
    let mut plain = Network::new(&g, Model::Local);
    let plain_mail = plain.broadcast(|v| v.index() as u64);
    let run_reordered = || {
        let mut net = Network::new(&g, Model::Local);
        net.install_faults(FaultPlan::new(77).with_reordering());
        net.broadcast(|v| v.index() as u64)
    };
    let a = run_reordered();
    let b = run_reordered();
    assert_eq!(a, b, "same seed ⇒ same permutation");
    let center = NodeId::new(0);
    let mut sorted = a.inbox(center).to_vec();
    sorted.sort_by_key(|inc| inc.from);
    assert_eq!(
        sorted,
        plain_mail.inbox(center).to_vec(),
        "reordered inbox is a permutation of the clean one"
    );
    assert_ne!(
        a.inbox(center),
        plain_mail.inbox(center),
        "an 8-message inbox under seed 77 is actually permuted"
    );
}

#[test]
fn per_edge_overrides_sever_one_edge_only() {
    let g = generators::path(3); // edges 0=(0,1), 1=(1,2)
    let mut net = Network::new(&g, Model::Local);
    net.install_faults(
        FaultPlan::new(8).with_edge_rates(EdgeId::new(0), FaultRates::new(1.0, 0.0, 0.0)),
    );
    let mail = net.broadcast(|v| v.index() as u32);
    // Edge 0's two messages are gone; edge 1's two survive.
    assert_eq!(mail.total(), 2);
    assert_eq!(mail.inbox(NodeId::new(0)).len(), 0);
    assert_eq!(mail.inbox(NodeId::new(2)).len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full contract under a randomized adversary: any plan, any graph,
    /// every policy — bit-identical outputs, metrics and fault stats.
    #[test]
    fn random_plans_are_policy_invariant(
        (n, deg, seed, drop, dup, delay) in (
            12usize..48,
            2usize..5,
            0u64..1000,
            0u32..300,
            0u32..200,
            0u32..200,
        )
    ) {
        let n = if (n * deg) % 2 == 1 { n + 1 } else { n };
        let g = generators::random_regular(n, deg, seed ^ 0x5eed).unwrap();
        let ids = IdAssignment::scattered(n, seed);
        let mut plan = FaultPlan::new(seed)
            .with_drop_rate(drop as f64 / 1000.0)
            .with_duplicate_rate(dup as f64 / 1000.0)
            .with_delay_rate(delay as f64 / 1000.0, 1 + seed % 3)
            .with_partition_granularity(2)
            .with_link_cut(0, 1, 1 + seed % 3, 1 + seed % 4);
        if seed % 2 == 0 {
            plan = plan.with_crash(NodeId::new((seed % n as u64) as usize), 1 + seed % 2, 4);
        }
        if seed % 3 == 0 {
            plan = plan.with_reordering();
        }
        let reference = flood_run(&g, &ids, ExecutionPolicy::Sequential, &plan);
        for policy in policy_matrix() {
            let run = flood_run(&g, &ids, policy, &plan);
            prop_assert!(run.outputs == reference.outputs, "outputs differ at {policy}");
            prop_assert!(run.metrics == reference.metrics, "metrics differ at {policy}");
            prop_assert!(run.faults == reference.faults, "stats differ at {policy}");
        }
        // And the run itself replays bit-identically.
        let replay = flood_run(&g, &ids, ExecutionPolicy::Sequential, &plan);
        prop_assert_eq!(replay.outputs, reference.outputs);
        prop_assert_eq!(replay.faults, reference.faults);
    }
}
