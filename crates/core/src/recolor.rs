//! Dynamic recoloring: local repair of an edge coloring after a mutation
//! batch.
//!
//! The paper colors a static graph, but a `(degree+1)`-list coloring is
//! exactly the primitive that makes *local repair* cheap in a dynamic
//! setting. After a batch of edge insertions/deletions:
//!
//! * deletions never break properness — surviving edges keep their colors;
//! * each inserted (uncolored) edge `e` has at most `deg_G(e) ≤ 2Δ − 2`
//!   adjacent edges, so against a palette of `P = 2Δ − 1` colors its list of
//!   *available* colors (palette minus the colors of adjacent already-colored
//!   edges) has size at least `deg_H(e) + 1`, where `H` is the subgraph
//!   induced by the uncolored edges.
//!
//! That last inequality is the `(degree+1)`-list condition of Theorem 1.1 /
//! Theorem D.4 **on the dirty subgraph `H`**: the repair therefore runs the
//! paper's own LOCAL machinery ([`list_edge_coloring`], i.e. the Lemma D.2
//! slack solver + Lemma D.3 slack amplification pipeline) on `H` with the
//! residual lists, in `polylog(Δ) + O(log* n)` simulated rounds, touching
//! only the `O(|batch|)` dirty edges instead of the whole graph. This is the
//! same argument Lemma D.1 uses to seed the recursion: residual lists shrink
//! at most as fast as residual degrees.
//!
//! The palette budget `P` is fixed when the coloring is created. When a
//! mutation drives Δ past the budget (`2Δ − 1 > P`), the `(degree+1)`
//! inequality above no longer holds and the subsystem falls back to one full
//! [`color_edges_local`] pass, re-establishing `P = 2Δ − 1` for the new Δ —
//! the same "recompute when the instance family changes" escape hatch the
//! paper's recursion uses when slack is exhausted. When Δ *shrinks*, the
//! coloring remains proper and within `P`; call
//! [`Recoloring::refresh`] to re-tighten the budget explicitly.
//!
//! Everything here threads [`ExecutionPolicy`](distsim::ExecutionPolicy)
//! through unchanged: repairs
//! are bit-identical under `Sequential`, any `Parallel{t}` policy and any
//! `Sharded{k, t}` policy (the partitioned substrate of `crates/shard`),
//! because the underlying machinery is (see
//! `crates/sim/tests/parallel_determinism.rs`,
//! `crates/sim/tests/sharded_determinism.rs` and `tests/differential.rs`).

use crate::error::ColoringError;
use crate::list_coloring::{color_edges_local, list_edge_coloring};
use crate::params::ColoringParams;
use distgraph::{BatchDiff, Color, DynamicGraph, EdgeColoring, EdgeId, Graph, ListAssignment};
use distsim::{IdAssignment, Metrics};

pub use crate::list_coloring::default_palette;

/// What one [`Recoloring::repair`] call did.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Number of edges the repair (re)colored. For a local repair this is the
    /// number of dirty (inserted/uncolored) edges; for a full-recolor
    /// fallback it is the full edge count.
    pub repaired_edges: usize,
    /// `true` if the palette budget was exceeded and a full
    /// [`color_edges_local`] pass ran instead of a local repair.
    pub full_recolor: bool,
    /// Internal (dense, post-batch) ids of the edges whose colors changed or
    /// were assigned — the `touched` set to hand to
    /// `edgecolor_verify::check_delta`.
    pub touched: Vec<EdgeId>,
    /// Simulated execution cost of the repair pass.
    pub metrics: Metrics,
}

/// A maintained `2Δ−1`-style edge coloring of a [`DynamicGraph`], repaired
/// locally after every mutation batch.
///
/// See the [module docs](self) for the repair contract; `tests/differential.rs`
/// asserts that a repaired coloring is checker-equivalent to a from-scratch
/// recoloring of the final graph.
#[derive(Debug, Clone)]
pub struct Recoloring {
    coloring: EdgeColoring,
    palette: usize,
    /// Extra colors above the tight `2Δ − 1` requirement at the time the
    /// budget was last (re)established; re-applied after every full-recolor
    /// fallback so the capacity-planning knob of [`Recoloring::with_budget`]
    /// keeps working instead of silently degrading to zero headroom.
    headroom: usize,
}

impl Recoloring {
    /// Colors the current state of `dg` from scratch with
    /// [`color_edges_local`] and fixes the palette budget at
    /// `max(2Δ − 1, 1)`.
    ///
    /// # Errors
    ///
    /// Propagates any error of the underlying coloring algorithm.
    pub fn color_initial(
        dg: &DynamicGraph,
        ids: &IdAssignment,
        params: &ColoringParams,
    ) -> Result<(Self, RepairReport), ColoringError> {
        let graph = dg.graph();
        let outcome = color_edges_local(graph, ids, params)?;
        let palette = default_palette(graph.max_degree());
        let report = RepairReport {
            repaired_edges: graph.m(),
            full_recolor: true,
            touched: graph.edges().collect(),
            metrics: outcome.metrics,
        };
        Ok((
            Recoloring {
                coloring: outcome.coloring,
                palette,
                headroom: 0,
            },
            report,
        ))
    }

    /// Like [`Recoloring::color_initial`] but provisions a larger palette
    /// budget up front: `palette` colors are reserved even though the initial
    /// coloring uses at most `2Δ − 1 ≤ palette` of them.
    ///
    /// Headroom is the repair layer's capacity-planning knob: a budget of
    /// `2(Δ + h) − 1` tolerates Δ growing by `h` under churn before any full
    /// recolor is forced, at the price of a proportionally larger color
    /// space. The slack `palette − (2Δ − 1)` is remembered and re-applied
    /// whenever a fallback re-establishes the budget, so one Δ spike does not
    /// permanently degrade the session to a zero-headroom budget. This is
    /// the palette-budget trade-off the small-palette line of work
    /// (Bernshteyn '20; Ghaffari–Kuhn–Maus–Uitto '18) fights on the static
    /// side.
    ///
    /// # Errors
    ///
    /// Returns [`ColoringError::InvalidParameter`] if `palette < 2Δ − 1`, and
    /// propagates errors of the underlying coloring algorithm.
    pub fn with_budget(
        dg: &DynamicGraph,
        ids: &IdAssignment,
        params: &ColoringParams,
        palette: usize,
    ) -> Result<(Self, RepairReport), ColoringError> {
        let needed = default_palette(dg.graph().max_degree());
        if palette < needed {
            return Err(ColoringError::InvalidParameter {
                name: "palette",
                reason: format!("budget {palette} is below the required 2Δ−1 = {needed}"),
            });
        }
        let (mut rec, report) = Recoloring::color_initial(dg, ids, params)?;
        rec.palette = palette;
        rec.headroom = palette - needed;
        Ok((rec, report))
    }

    /// Adopts an existing proper, complete coloring of `dg`'s current graph
    /// — for example one carried by a `diststore` snapshot — instead of
    /// recoloring from scratch. The coloring is audited (proper, complete,
    /// within `palette`) in one `O(m · Δ)` pass, so resuming a serving
    /// session from a snapshot costs validation, not a fresh
    /// `polylog(Δ) + O(log* n)` coloring run. Headroom above the tight
    /// `2Δ − 1` requirement is remembered exactly as in
    /// [`Recoloring::with_budget`].
    ///
    /// # Errors
    ///
    /// [`ColoringError::InvalidParameter`] if the coloring does not cover
    /// exactly the graph's edges, if `palette < 2Δ − 1`, or if the coloring
    /// fails the proper/complete/palette audit.
    pub fn adopt(
        dg: &DynamicGraph,
        coloring: EdgeColoring,
        palette: usize,
    ) -> Result<Self, ColoringError> {
        let graph = dg.graph();
        if coloring.len() != graph.m() {
            return Err(ColoringError::InvalidParameter {
                name: "coloring",
                reason: format!(
                    "coloring covers {} edges but the graph has {}",
                    coloring.len(),
                    graph.m()
                ),
            });
        }
        let needed = default_palette(graph.max_degree());
        if palette < needed {
            return Err(ColoringError::InvalidParameter {
                name: "palette",
                reason: format!("budget {palette} is below the required 2Δ−1 = {needed}"),
            });
        }
        let mut audit = edgecolor_verify::check_proper_edge_coloring(graph, &coloring);
        audit.merge(edgecolor_verify::check_complete(graph, &coloring));
        audit.merge(edgecolor_verify::check_palette_size(&coloring, palette));
        if !audit.is_ok() {
            return Err(ColoringError::InvalidParameter {
                name: "coloring",
                reason: format!(
                    "adopted coloring fails the audit with {} violation(s), first: {:?}",
                    audit.violations().len(),
                    audit.violations().first()
                ),
            });
        }
        Ok(Recoloring {
            coloring,
            palette,
            headroom: palette - needed,
        })
    }

    /// The maintained coloring, indexed by the *current* internal ids of the
    /// dynamic graph it was last repaired against.
    pub fn coloring(&self) -> &EdgeColoring {
        &self.coloring
    }

    /// Mutable access for the self-stabilization layer ([`crate::stabilize`]):
    /// corruption injection and conflict repair rewrite colors in place.
    pub(crate) fn coloring_mut(&mut self) -> &mut EdgeColoring {
        &mut self.coloring
    }

    /// Replaces the maintained coloring (self-stabilization repair result).
    pub(crate) fn replace_coloring(&mut self, coloring: EdgeColoring) {
        self.coloring = coloring;
    }

    /// The palette budget `P`: every assigned color is `< P`.
    pub fn palette(&self) -> usize {
        self.palette
    }

    /// Repairs the coloring after `diff` was applied to `dg`.
    ///
    /// `dg` must be the dynamic graph *after* the batch and `diff` the value
    /// returned by that [`DynamicGraph::apply`] call; repairs must be applied
    /// for every batch, in order.
    ///
    /// # Errors
    ///
    /// Propagates errors of the underlying coloring machinery.
    ///
    /// # Examples
    ///
    /// ```
    /// use distgraph::{generators, DynamicGraph, UpdateBatch};
    /// use distsim::IdAssignment;
    /// use edgecolor::{default_palette, ColoringParams, Recoloring};
    /// use edgecolor_verify::check_delta;
    ///
    /// let mut dg = DynamicGraph::from_graph(generators::grid_torus(6, 6)); // Δ = 4
    /// let ids = IdAssignment::scattered(dg.n(), 1);
    /// let params = ColoringParams::new(0.5);
    /// // Provision headroom for Δ growing by 2 before any full recolor.
    /// let budget = default_palette(dg.graph().max_degree() + 2);
    /// let (mut rec, _) = Recoloring::with_budget(&dg, &ids, &params, budget)?;
    ///
    /// // Mutate, then repair: only the dirty neighborhood is recolored.
    /// let diff = dg.apply(&UpdateBatch {
    ///     delete: vec![0usize.into(), 7usize.into()],
    ///     insert: vec![(0, 14)],
    /// }).expect("valid batch");
    /// let report = rec.repair(&dg, &diff, &ids, &params)?;
    /// assert!(!report.full_recolor, "headroom absorbs the Δ growth");
    /// assert!(report.repaired_edges <= 1); // at most the inserted edge
    /// // O(batch·Δ) certification of exactly what the repair changed:
    /// check_delta(dg.graph(), rec.coloring(), &report.touched, rec.palette()).assert_ok();
    /// # Ok::<(), edgecolor::ColoringError>(())
    /// ```
    pub fn repair(
        &mut self,
        dg: &DynamicGraph,
        diff: &BatchDiff,
        ids: &IdAssignment,
        params: &ColoringParams,
    ) -> Result<RepairReport, ColoringError> {
        let graph = dg.graph();
        let carried = diff.carry_coloring(&self.coloring);
        let needed = default_palette(graph.max_degree());

        if needed > self.palette {
            // Δ outgrew the budget: the (degree+1) repair inequality no longer
            // holds, so re-establish the invariant with one full pass,
            // re-provisioning the originally requested headroom on top.
            let outcome = color_edges_local(graph, ids, params)?;
            self.coloring = outcome.coloring;
            self.palette = needed + self.headroom;
            return Ok(RepairReport {
                repaired_edges: graph.m(),
                full_recolor: true,
                touched: graph.edges().collect(),
                metrics: outcome.metrics,
            });
        }

        let report = repair_within_palette(graph, carried, self.palette, ids, params)?;
        self.coloring = report.0;
        Ok(report.1)
    }

    /// Re-tightens the palette budget to `2Δ − 1` of the current graph by
    /// recoloring from scratch (any provisioned headroom is dropped; use
    /// [`Recoloring::with_budget`] on a fresh session to re-provision).
    /// Useful after heavy deletions shrank Δ.
    ///
    /// # Errors
    ///
    /// Propagates any error of the underlying coloring algorithm.
    pub fn refresh(
        &mut self,
        dg: &DynamicGraph,
        ids: &IdAssignment,
        params: &ColoringParams,
    ) -> Result<RepairReport, ColoringError> {
        let (fresh, report) = Recoloring::color_initial(dg, ids, params)?;
        *self = fresh;
        Ok(report)
    }
}

/// Colors the uncolored edges of `carried` within the palette `{0, ..., P-1}`
/// by running the paper's LOCAL list-coloring machinery on the dirty
/// subgraph, and returns the completed coloring plus the repair report.
///
/// Invariant required of the caller: `P ≥ 2Δ(graph) − 1`, so that every
/// uncolored edge has at least `deg_H(e) + 1` available colors.
///
/// Shared with the self-stabilization layer ([`crate::stabilize`]), whose
/// dirty set is the post-fault conflict set instead of a mutation batch.
pub(crate) fn repair_within_palette(
    graph: &Graph,
    mut carried: EdgeColoring,
    palette: usize,
    ids: &IdAssignment,
    params: &ColoringParams,
) -> Result<(EdgeColoring, RepairReport), ColoringError> {
    let dirty: Vec<EdgeId> = graph.edges().filter(|&e| !carried.is_colored(e)).collect();
    if dirty.is_empty() {
        return Ok((
            carried,
            RepairReport {
                repaired_edges: 0,
                full_recolor: false,
                touched: Vec::new(),
                metrics: Metrics::new(),
            },
        ));
    }

    let (sub, sub_map) = graph.edge_subgraph(|e| !carried.is_colored(e));

    // Residual lists: palette minus the colors of adjacent clean edges in the
    // host graph. |L_e| ≥ P − (deg_G(e) − deg_H(e)) ≥ deg_H(e) + 1.
    let lists = ListAssignment::new(
        palette,
        sub.edges()
            .map(|e| {
                let host_edge = sub_map[e.index()];
                let used = carried.colors_around(graph, host_edge);
                (0..palette).filter(|c| !used.contains(c)).collect()
            })
            .collect(),
    );

    // Theorem 1.1 assumes a poly(Δ̄)-sized color space relative to the dirty
    // subgraph; tiny batches on huge-Δ hosts can violate it, in which case we
    // fall back to a deterministic greedy patch (still proper and within the
    // palette, by the same counting argument — it just skips the polylog
    // round bookkeeping).
    let sub_dbar = sub.max_edge_degree().max(1);
    let space_ok = palette <= (sub_dbar * sub_dbar * sub_dbar * sub_dbar).max(4096);

    let metrics = if space_ok {
        let outcome = list_edge_coloring(&sub, &lists, ids, params)?;
        carried.merge_mapped(&outcome.coloring, &sub_map);
        outcome.metrics
    } else {
        for e in sub.edges() {
            let host_edge = sub_map[e.index()];
            let used = carried.colors_around(graph, host_edge);
            let c: Color = (0..palette)
                .find(|c| !used.contains(c))
                .expect("P >= 2Δ−1 guarantees a free color");
            carried.set(host_edge, c);
        }
        Metrics::new()
    };

    Ok((
        carried,
        RepairReport {
            repaired_edges: dirty.len(),
            full_recolor: false,
            touched: dirty,
            metrics,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators::{self, UpdateScenario, UpdateStream};
    use distgraph::UpdateBatch;
    use edgecolor_verify::{check_complete, check_palette_size, check_proper_edge_coloring};

    fn assert_valid(graph: &Graph, recoloring: &Recoloring) {
        check_proper_edge_coloring(graph, recoloring.coloring()).assert_ok();
        check_complete(graph, recoloring.coloring()).assert_ok();
        check_palette_size(recoloring.coloring(), recoloring.palette()).assert_ok();
    }

    #[test]
    fn initial_coloring_is_valid_and_budgeted() {
        let g = generators::grid_torus(6, 6);
        let mut dg = DynamicGraph::from_graph(g);
        let ids = IdAssignment::scattered(dg.n(), 1);
        let params = ColoringParams::new(0.5);
        let (rec, report) = Recoloring::color_initial(&dg, &ids, &params).unwrap();
        assert!(report.full_recolor);
        assert_eq!(report.repaired_edges, dg.m());
        assert_valid(dg.graph(), &rec);
        assert_eq!(rec.palette(), 2 * dg.graph().max_degree() - 1);
        // An empty batch repairs nothing.
        let mut rec = rec;
        let diff = dg.apply(&UpdateBatch::empty()).unwrap();
        let report = rec.repair(&dg, &diff, &ids, &params).unwrap();
        assert_eq!(report.repaired_edges, 0);
        assert!(!report.full_recolor);
    }

    #[test]
    fn local_repair_touches_only_the_batch() {
        let g = generators::grid_torus(8, 8);
        let mut dg = DynamicGraph::from_graph(g.clone());
        let ids = IdAssignment::scattered(dg.n(), 5);
        let params = ColoringParams::new(0.5);
        let (mut rec, _) = Recoloring::color_initial(&dg, &ids, &params).unwrap();
        let mut stream = UpdateStream::new(
            g,
            UpdateScenario::Churn {
                inserts: 3,
                deletes: 3,
            },
            9,
        );
        let mut local_repairs = 0;
        for _ in 0..8 {
            let batch = stream.next_batch();
            let diff = dg.apply(&batch).unwrap();
            // A full recolor happens exactly when Δ outgrew the budget.
            let expect_full = 2 * dg.graph().max_degree() - 1 > rec.palette();
            let report = rec.repair(&dg, &diff, &ids, &params).unwrap();
            assert_eq!(report.full_recolor, expect_full);
            if !report.full_recolor {
                local_repairs += 1;
                assert!(report.repaired_edges <= batch.insert.len());
            }
            assert_eq!(report.touched.len(), report.repaired_edges);
            assert_valid(dg.graph(), &rec);
        }
        assert!(local_repairs >= 4, "churn should mostly repair locally");
        assert_eq!(dg.graph(), stream.graph());
    }

    #[test]
    fn hub_attack_forces_full_recolor_when_palette_breaks() {
        let g = generators::grid_torus(6, 6); // Δ = 4, palette 7
        let mut dg = DynamicGraph::from_graph(g.clone());
        let ids = IdAssignment::scattered(dg.n(), 2);
        let params = ColoringParams::new(0.5);
        let (mut rec, _) = Recoloring::color_initial(&dg, &ids, &params).unwrap();
        let initial_palette = rec.palette();
        let mut stream = UpdateStream::new(
            g,
            UpdateScenario::HubAttack {
                hub: 0,
                burst: 4,
                deletes: 0,
            },
            4,
        );
        let mut full_recolors = 0;
        for _ in 0..6 {
            let batch = stream.next_batch();
            let diff = dg.apply(&batch).unwrap();
            let report = rec.repair(&dg, &diff, &ids, &params).unwrap();
            if report.full_recolor {
                full_recolors += 1;
            }
            assert_valid(dg.graph(), &rec);
        }
        assert!(
            full_recolors >= 1,
            "Δ grew past the budget, expected a fallback"
        );
        assert!(rec.palette() > initial_palette);
    }

    #[test]
    fn budget_headroom_absorbs_delta_growth() {
        let g = generators::grid_torus(6, 6); // Δ = 4
        let mut dg = DynamicGraph::from_graph(g);
        let ids = IdAssignment::contiguous(dg.n());
        let params = ColoringParams::new(0.5);
        // Reserve room for Δ up to 6.
        let (mut rec, _) = Recoloring::with_budget(&dg, &ids, &params, 11).unwrap();
        assert_eq!(rec.palette(), 11);
        let diff = dg
            .apply(&UpdateBatch {
                delete: vec![],
                insert: vec![(0, 2), (0, 7)], // node 0 reaches degree 6
            })
            .unwrap();
        let report = rec.repair(&dg, &diff, &ids, &params).unwrap();
        assert!(!report.full_recolor, "headroom should absorb the growth");
        assert_valid(dg.graph(), &rec);
        // Push Δ past the budget: the fallback must re-provision the same
        // slack (headroom 11 − 7 = 4) instead of degrading to a tight budget.
        let diff = dg
            .apply(&UpdateBatch {
                delete: vec![],
                insert: vec![(0, 8), (0, 9)], // node 0 reaches degree 8
            })
            .unwrap();
        let report = rec.repair(&dg, &diff, &ids, &params).unwrap();
        assert!(report.full_recolor);
        assert_eq!(rec.palette(), default_palette(8) + 4);
        assert_valid(dg.graph(), &rec);
        // An undersized budget is rejected up front.
        let err = Recoloring::with_budget(&dg, &ids, &params, 3).unwrap_err();
        assert!(matches!(err, ColoringError::InvalidParameter { .. }));
    }

    #[test]
    fn refresh_retightens_the_palette_after_deletions() {
        let g = generators::star(12); // Δ = 12, palette 23
        let mut dg = DynamicGraph::from_graph(g);
        let ids = IdAssignment::contiguous(dg.n());
        let params = ColoringParams::new(0.5);
        let (mut rec, _) = Recoloring::color_initial(&dg, &ids, &params).unwrap();
        assert_eq!(rec.palette(), 23);
        // Delete most of the star: Δ drops to 2.
        let doomed: Vec<EdgeId> = (0..10).map(EdgeId::new).collect();
        let diff = dg
            .apply(&UpdateBatch {
                delete: doomed,
                insert: vec![],
            })
            .unwrap();
        rec.repair(&dg, &diff, &ids, &params).unwrap();
        assert_eq!(rec.palette(), 23, "repair never shrinks the budget");
        assert_valid(dg.graph(), &rec);
        let report = rec.refresh(&dg, &ids, &params).unwrap();
        assert!(report.full_recolor);
        assert_eq!(rec.palette(), 2 * dg.graph().max_degree() - 1);
        assert_valid(dg.graph(), &rec);
    }

    #[test]
    fn greedy_patch_handles_tiny_batches_on_oversized_palettes() {
        // A palette larger than the poly(Δ̄) space bound of Theorem 1.1 (as
        // happens when a tiny batch lands on a huge-Δ host) must take the
        // deterministic greedy-patch path and still produce a proper,
        // in-palette completion.
        let g = generators::grid_torus(5, 5);
        let ids = IdAssignment::contiguous(g.n());
        let params = ColoringParams::new(0.5);
        let mut carried = EdgeColoring::empty(g.m());
        // Color everything except three edges with a proper baseline.
        let full = color_edges_local(&g, &ids, &params).unwrap().coloring;
        for e in g.edges() {
            if e.index() >= 3 {
                carried.set(e, full.color(e).unwrap());
            }
        }
        let palette = 5000; // > 4096 space cap, sub graph Δ̄ is tiny
        let (completed, report) =
            repair_within_palette(&g, carried, palette, &ids, &params).unwrap();
        assert_eq!(report.repaired_edges, 3);
        assert!(!report.full_recolor);
        assert_eq!(
            report.metrics,
            Metrics::new(),
            "greedy patch charges no rounds"
        );
        check_proper_edge_coloring(&g, &completed).assert_ok();
        check_complete(&g, &completed).assert_ok();
        check_palette_size(&completed, palette).assert_ok();
    }
}
