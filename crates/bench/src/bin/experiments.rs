//! Prints the evaluation suite E1–E11 (see DESIGN.md and EXPERIMENTS.md).
//!
//! Usage:
//!   cargo run --release -p edgecolor-bench --bin experiments            # all experiments
//!   cargo run --release -p edgecolor-bench --bin experiments -- e1 e4   # a subset
//!   cargo run --release -p edgecolor-bench --bin experiments -- quick   # smaller sweeps

use edgecolor_bench as bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let quick = args.iter().any(|a| a == "quick");
    let want =
        |id: &str| args.is_empty() || args.iter().any(|a| a == id || a == "all" || a == "quick");

    let deltas: &[usize] = if quick {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64]
    };
    let small_deltas: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32, 64] };
    let ns: &[usize] = if quick {
        &[128, 256, 512]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    let congest_ns: &[usize] = if quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024]
    };
    let orientation_deltas: &[usize] = if quick {
        &[16, 32, 64]
    } else {
        &[16, 32, 64, 128]
    };
    let orientation_eps: &[f64] = if quick { &[0.5] } else { &[0.25, 0.5, 1.0] };

    let mut tables = Vec::new();
    if want("e1") {
        tables.push(bench::run_e1(deltas));
    }
    if want("e2") {
        tables.push(bench::run_e2(ns));
    }
    if want("e3") {
        tables.push(bench::run_e3(small_deltas, &[0.25, 0.5, 1.0]));
    }
    if want("e4") || want("e8") {
        tables.push(bench::run_e4(&[64, 256, 1024], &[1, 4, 16, 64]));
    }
    if want("e5") {
        tables.push(bench::run_e5(orientation_deltas, orientation_eps));
    }
    if want("e6") {
        tables.push(bench::run_e6(orientation_deltas));
    }
    if want("e7") {
        tables.push(bench::run_e7(congest_ns));
    }
    if want("e9") {
        tables.push(bench::run_e9());
    }
    if want("e10") {
        tables.push(bench::run_e10());
    }
    if want("e11") {
        tables.push(bench::run_e11(small_deltas));
    }

    for table in &tables {
        println!("{table}");
    }
}
