//! Concurrency correctness battery for the serving daemon.
//!
//! N client threads submit interleaved mutation batches and lookups over
//! real TCP connections against one daemon whose background ticker
//! coalesces admissions into repairs. Afterwards the final coloring must
//! be checker-valid, and — the strong property — **bit-identical** to a
//! sequential replay of the coalesced batch log through a fresh
//! [`Recoloring`] session with the same ids, parameters and palette
//! budget. Coalescing and thread interleavings may change *which* batches
//! form, but the log the daemon actually applied must be replayable.
//!
//! The write workload uses the loadgen's disjoint-anchor scheme: client
//! `k` of `K` inserts diagonal pairs `(a, diag(a))` for anchors
//! `a ≡ k (mod K)` (never torus edges, distinct per anchor) and deletes
//! initial stable ids `≡ k (mod K)` — so every submission is admissible
//! regardless of interleaving and the expected op count is exact.

use distgraph::{generators, DynamicGraph};
use distserve::wire::{LookupOutcome, RejectCode, Request, Response};
use distserve::{Client, DaemonHandle, Rejection, ServeConfig, ServerCore};
use edgecolor::Recoloring;
use edgecolor_verify::{check_complete, check_delta, check_proper_edge_coloring};
use std::time::Duration;

const ROWS: usize = 12;
const COLS: usize = 12;
const CLIENTS: usize = 6;
const OPS_PER_CLIENT: usize = 48;

/// The diagonal neighbor `((r+1) % ROWS, (c+1) % COLS)` — never a torus
/// edge, and `diag(diag(a)) != a` for 12×12, so pairs are distinct.
fn diag(a: usize) -> usize {
    let (r, c) = (a / COLS, a % COLS);
    ((r + 1) % ROWS) * COLS + (c + 1) % COLS
}

/// Submits until admitted, retrying transient backpressure rejects.
fn submit_admitted(client: &mut Client, delete: &[u64], insert: &[(u32, u32)]) {
    loop {
        match client
            .submit(delete.to_vec(), insert.to_vec())
            .expect("transport stays up")
        {
            Ok(_) => return,
            Err(Rejection {
                code: RejectCode::QueueFull | RejectCode::SwapInProgress,
                ..
            }) => std::thread::sleep(Duration::from_micros(200)),
            Err(r) => panic!("admissible batch rejected: {r}"),
        }
    }
}

#[test]
fn interleaved_clients_converge_to_a_replayable_coloring() {
    let graph = generators::grid_torus(ROWS, COLS);
    let (n, m0, max_deg0) = (graph.n(), graph.m(), graph.max_degree());
    let config = ServeConfig {
        tick_interval_ms: Some(1),
        ..ServeConfig::default()
    };
    let headroom = config.headroom;
    let core = ServerCore::new(graph, config).expect("boot");
    let daemon = DaemonHandle::spawn(core).expect("bind");
    let addr = daemon.addr();

    // Interleaved clients: every op alternates a lookup with a write, so
    // the read path runs concurrently with admission and ticks throughout.
    let per_client: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|k| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let (mut anchor, mut dead, mut writes) = (k, k, 0u64);
                    for i in 0..OPS_PER_CLIENT {
                        let probe = ((k * 31 + i * 7) % m0) as u64;
                        let _ = client.lookup(probe).expect("lookup");
                        if i % 2 == 0 && anchor < n {
                            submit_admitted(
                                &mut client,
                                &[],
                                &[(anchor as u32, diag(anchor) as u32)],
                            );
                            anchor += CLIENTS;
                            writes += 1;
                        } else if dead < m0 {
                            submit_admitted(&mut client, &[dead as u64], &[]);
                            dead += CLIENTS;
                            writes += 1;
                        }
                    }
                    writes
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let total_writes: u64 = per_client.iter().sum();
    assert!(total_writes > 0, "workload produced no writes");

    // Drain everything that was admitted, then stop the daemon.
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.flush().expect("flush").epoch, 1);
    let core = daemon.core().clone();
    daemon.shutdown();
    assert_eq!(core.internal_errors(), 0, "ticks hit internal errors");
    assert_eq!(core.queue_depth(), 0, "flush left admitted batches behind");

    // The final coloring is checker-valid.
    let st = core.state_snapshot();
    check_proper_edge_coloring(st.dynamic().graph(), st.coloring()).assert_ok();
    check_complete(st.dynamic().graph(), st.coloring()).assert_ok();

    // Every admitted op landed in the coalesced log, all on epoch 1.
    let log = core.batch_log();
    let logged_ops: u64 = log
        .iter()
        .map(|(_, b)| (b.delete.len() + b.insert.len()) as u64)
        .sum();
    assert_eq!(
        logged_ops, total_writes,
        "coalesced log lost or duplicated ops"
    );
    assert!(log.iter().all(|(epoch, _)| *epoch == 1));

    // The strong property: sequential replay of the coalesced batch log
    // through a fresh session reproduces the served coloring bit for bit.
    // (The daemon's post-repair stabilize pass is a certify-only no-op on a
    // clean coloring, so plain repair replay must agree exactly.)
    let mut dg = DynamicGraph::from_graph(generators::grid_torus(ROWS, COLS));
    let ids = st.ids().clone();
    let params = *core.params();
    let budget = edgecolor::default_palette(max_deg0 + headroom);
    let (mut rec, _) = Recoloring::with_budget(&dg, &ids, &params, budget).expect("replay boot");
    for (_, batch) in &log {
        let diff = dg.apply(batch).expect("logged batches replay cleanly");
        let report = rec
            .repair(&dg, &diff, &ids, &params)
            .expect("replay repair");
        check_delta(dg.graph(), rec.coloring(), &report.touched, rec.palette()).assert_ok();
    }
    assert_eq!(dg.graph().m(), st.dynamic().graph().m());
    assert_eq!(
        rec.coloring(),
        st.coloring(),
        "concurrent serving diverged from sequential replay of its own batch log"
    );
}

/// Lookups racing a manual tick loop always see a coherent answer: the
/// reported epoch stays 1 (no swaps here) and the reader never errors,
/// even while the writer republishes state every few microseconds.
#[test]
fn readers_race_ticks_without_torn_answers() {
    let graph = generators::grid_torus(ROWS, COLS);
    let m0 = graph.m();
    let config = ServeConfig {
        tick_interval_ms: None,
        ..ServeConfig::default()
    };
    let core = ServerCore::new(graph, config).expect("boot");
    let daemon = DaemonHandle::spawn(core).expect("bind");
    let addr = daemon.addr();
    let core = daemon.core().clone();

    std::thread::scope(|s| {
        // Writer: one submission per tick, ticked manually and hotly.
        s.spawn(|| {
            let mut client = Client::connect(addr).expect("connect");
            for (i, a) in (0..ROWS * COLS).step_by(3).enumerate() {
                submit_admitted(&mut client, &[], &[(a as u32, diag(a) as u32)]);
                core.tick();
                if i % 8 == 0 {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        });
        for r in 0..3usize {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..200usize {
                    let probe = ((r * 13 + i) % m0) as u64;
                    let (outcome, epoch, _) = client.lookup(probe).expect("lookup");
                    assert_eq!(epoch, 1, "no swaps here, epoch must stay 1");
                    // Initial edges stay live and colored throughout.
                    assert!(
                        matches!(outcome, LookupOutcome::Colored { .. }),
                        "live edge answered {outcome:?}"
                    );
                }
            });
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    match client.request(&Request::Flush).expect("flush") {
        Response::Flushed { epoch: 1, .. } => {}
        other => panic!("flush answered {other:?}"),
    }
    let st = core.state_snapshot();
    check_proper_edge_coloring(st.dynamic().graph(), st.coloring()).assert_ok();
    check_complete(st.dynamic().graph(), st.coloring()).assert_ok();
    daemon.shutdown();
}
