//! Quickstart: color a random graph with the paper's LOCAL and CONGEST
//! algorithms and verify the results.
//!
//! Run with `cargo run --release --example quickstart`.

use distgraph::generators;
use distsim::IdAssignment;
use edgecolor::{color_congest, color_edges_local, ColoringParams};
use edgecolor_verify::{check_complete, check_proper_edge_coloring};

fn main() {
    // A random 12-regular graph on 200 nodes; the LOCAL model gives every
    // node a unique identifier from {1, ..., n³}.
    let graph = generators::random_regular(200, 12, 42).expect("feasible parameters");
    let ids = IdAssignment::scattered(graph.n(), 7);
    let params = ColoringParams::new(0.5);

    println!(
        "graph: n = {}, m = {}, Δ = {}, Δ̄ = {}",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        graph.max_edge_degree()
    );

    // Theorem 1.1: (2Δ−1)-edge coloring in poly log Δ + O(log* n) LOCAL rounds.
    let local = color_edges_local(&graph, &ids, &params).expect("valid instance");
    check_proper_edge_coloring(&graph, &local.coloring).assert_ok();
    check_complete(&graph, &local.coloring).assert_ok();
    println!(
        "LOCAL  (Theorem 1.1): {} colors (budget {}), {} rounds ({} of them for the initial O(Δ²) coloring)",
        local.coloring.palette_size(),
        2 * graph.max_degree() - 1,
        local.metrics.rounds,
        local.initial_coloring_rounds,
    );

    // Theorem 1.2: (8+ε)Δ-edge coloring in poly log Δ + O(log* n) CONGEST rounds.
    let congest = color_congest(&graph, &ids, &params);
    check_proper_edge_coloring(&graph, &congest.coloring).assert_ok();
    check_complete(&graph, &congest.coloring).assert_ok();
    println!(
        "CONGEST (Theorem 1.2): {} colors (budget ≈ {}), {} rounds, max message {} bits, {} bandwidth violations",
        congest.colors_used,
        (8.5 * graph.max_degree() as f64) as usize,
        congest.metrics.rounds,
        congest.metrics.max_message_bits,
        congest.metrics.congest_violations,
    );
}
