//! The paper's headline guarantees, pinned on a seeded generator matrix.
//!
//! For every graph in the matrix (path, cycle, complete bipartite, random
//! d-regular, star) each algorithm must produce a proper, complete edge
//! coloring whose palette respects the stated budget:
//!
//! * greedy baseline — at most `2Δ − 1` colors (folklore bound);
//! * Misra–Gries baseline — at most `Δ + 1` colors (Vizing);
//! * bipartite algorithm (Lemma 6.1) — at most `(2 + ε)Δ` colors;
//! * CONGEST algorithm (Theorem 1.2) — at most `(8 + ε)Δ` colors.

use distgraph::{generators, BipartiteGraph, Graph, NodeId};
use distsim::{IdAssignment, Model, Network};
use edgecolor::balanced_orientation::compute_balanced_orientation;
use edgecolor::bipartite_coloring::color_bipartite;
use edgecolor::token_dropping::{solve_distributed, TokenGame, TokenGameParams};
use edgecolor::{
    color_congest, color_edges_local, ColoringParams, OrientationParams, ParamProfile,
};
use edgecolor_baselines as baselines;
use edgecolor_verify::{check_complete, check_palette_size, check_proper_edge_coloring};

/// The seeded test matrix: `(name, graph)` pairs covering every generator
/// family the satellite task names.
fn matrix() -> Vec<(String, Graph)> {
    let mut graphs = Vec::new();
    for n in [2usize, 9, 24] {
        graphs.push((format!("path({n})"), generators::path(n)));
    }
    for n in [3usize, 8, 17] {
        graphs.push((format!("cycle({n})"), generators::cycle(n)));
    }
    for (a, b) in [(1usize, 5usize), (4, 4), (6, 9)] {
        graphs.push((
            format!("complete_bipartite({a},{b})"),
            generators::complete_bipartite(a, b).graph().clone(),
        ));
    }
    for (n, d, seed) in [(10usize, 3usize, 1u64), (24, 4, 2), (36, 6, 3)] {
        graphs.push((
            format!("random_regular({n},{d},{seed})"),
            generators::random_regular(n, d, seed).expect("feasible regular instance"),
        ));
    }
    for leaves in [1usize, 7, 20] {
        graphs.push((format!("star({leaves})"), generators::star(leaves)));
    }
    graphs
}

/// Bipartite members of the matrix, as `BipartiteGraph`s.
fn bipartite_matrix() -> Vec<(String, BipartiteGraph)> {
    let mut graphs = Vec::new();
    for (a, b) in [(1usize, 5usize), (4, 4), (6, 9)] {
        graphs.push((
            format!("complete_bipartite({a},{b})"),
            generators::complete_bipartite(a, b),
        ));
    }
    for (n, d, seed) in [(8usize, 3usize, 5u64), (16, 5, 6)] {
        graphs.push((
            format!("regular_bipartite({n},{d},{seed})"),
            generators::regular_bipartite(n, d, seed).expect("feasible bipartite instance"),
        ));
    }
    // Paths and stars are bipartite; exercise the conversion path too.
    for n in [2usize, 9, 24] {
        let g = generators::path(n);
        graphs.push((
            format!("path({n})"),
            BipartiteGraph::from_graph(g).expect("paths are bipartite"),
        ));
    }
    for leaves in [1usize, 7, 20] {
        let g = generators::star(leaves);
        graphs.push((
            format!("star({leaves})"),
            BipartiteGraph::from_graph(g).expect("stars are bipartite"),
        ));
    }
    graphs
}

#[test]
fn greedy_baseline_stays_within_two_delta_minus_one() {
    for (name, g) in matrix() {
        let coloring = baselines::greedy_sequential(&g);
        check_proper_edge_coloring(&g, &coloring).assert_ok();
        check_complete(&g, &coloring).assert_ok();
        let budget = (2 * g.max_degree()).saturating_sub(1).max(1);
        check_palette_size(&coloring, budget).assert_ok();
        assert!(
            coloring.palette_size() <= budget,
            "{name}: greedy used {} colors, budget 2Δ−1 = {budget}",
            coloring.palette_size()
        );
    }
}

#[test]
fn misra_gries_baseline_stays_within_delta_plus_one() {
    for (name, g) in matrix() {
        let coloring = baselines::misra_gries(&g);
        check_proper_edge_coloring(&g, &coloring).assert_ok();
        check_complete(&g, &coloring).assert_ok();
        let budget = g.max_degree() + 1;
        check_palette_size(&coloring, budget).assert_ok();
        assert!(
            coloring.palette_size() <= budget,
            "{name}: Misra–Gries used {} colors, budget Δ+1 = {budget}",
            coloring.palette_size()
        );
    }
}

#[test]
fn local_algorithm_stays_within_two_delta_minus_one() {
    for (name, g) in matrix() {
        let ids = IdAssignment::scattered(g.n(), 17);
        let params = ColoringParams::new(0.5);
        let outcome = color_edges_local(&g, &ids, &params).expect("full palette is feasible");
        check_proper_edge_coloring(&g, &outcome.coloring).assert_ok();
        check_complete(&g, &outcome.coloring).assert_ok();
        let budget = (2 * g.max_degree()).saturating_sub(1).max(1);
        assert!(
            outcome.coloring.palette_size() <= budget,
            "{name}: LOCAL coloring used {} colors, budget 2Δ−1 = {budget}",
            outcome.coloring.palette_size()
        );
    }
}

#[test]
fn bipartite_algorithm_stays_within_two_plus_eps_delta() {
    for (name, bg) in bipartite_matrix() {
        let g = bg.graph();
        if g.m() == 0 {
            continue;
        }
        let params = ColoringParams::new(0.5);
        let mut net = Network::new(g, Model::Local);
        let result = color_bipartite(&bg, &params, &mut net);
        check_proper_edge_coloring(g, &result.coloring).assert_ok();
        check_complete(g, &result.coloring).assert_ok();
        let budget = ((2.0 + params.eps) * g.max_degree() as f64).ceil() as usize;
        assert!(
            result.colors_used <= budget.max(1),
            "{name}: bipartite coloring used {} colors, budget (2+ε)Δ = {budget}",
            result.colors_used
        );
    }
}

/// Round-count regression pins: the execution engine charges rounds in a
/// fully deterministic way, so any engine refactor that silently changes the
/// round accounting (or the algorithms' schedules) trips these exact values.
/// If a change *intentionally* alters round charging, update the constants
/// and say why in the commit message.
#[test]
fn local_round_counts_are_pinned_on_the_seeded_matrix() {
    let params = ColoringParams::new(0.5);
    let pinned: &[(usize, usize, u64, u64, usize)] = &[
        // (n, d, generator seed, expected rounds, expected colors)
        (10, 3, 1, 14, 4),
        (24, 4, 2, 28, 6),
        (36, 6, 3, 52, 8),
    ];
    for &(n, d, seed, rounds, colors) in pinned {
        let g = generators::random_regular(n, d, seed).expect("feasible regular instance");
        let ids = IdAssignment::scattered(g.n(), 17);
        let outcome = color_edges_local(&g, &ids, &params).expect("full palette is feasible");
        assert_eq!(
            outcome.metrics.rounds, rounds,
            "random_regular({n},{d},{seed}): LOCAL round count drifted"
        );
        assert_eq!(
            outcome.coloring.palette_size(),
            colors,
            "random_regular({n},{d},{seed}): LOCAL palette drifted"
        );
    }
}

/// The polylog(Δ) scaling contract of docs/ROUNDS.md: on the E1-style
/// matrix (random Δ-regular, `n = max(4Δ, 96)`, seed 7) the LOCAL
/// recursion's measured rounds must stay within a small multiplicative
/// envelope per Δ-doubling. Before the defective-sweep fix these counts
/// were 84 → 13,566 → 16,356 at Δ = 8/16/32 — a 161× cliff this test
/// would have caught on day one. The exact values are additionally
/// pinned by the `make bench-rounds` gate against BENCH_1.json; this
/// test asserts the *shape*, so an intentional re-pin that keeps the
/// scaling healthy does not need to touch it.
#[test]
fn local_rounds_scale_polylog_in_delta() {
    let params = ColoringParams::new(0.5);
    let deltas = [8usize, 16, 32, 64];
    let mut rounds = Vec::new();
    for &delta in &deltas {
        let n = (4 * delta).max(96);
        let g = generators::random_regular(n, delta, 7).expect("feasible regular instance");
        let ids = IdAssignment::scattered(g.n(), 3);
        let outcome = color_edges_local(&g, &ids, &params).expect("full palette is feasible");
        rounds.push(outcome.metrics.rounds);
    }
    // Anchor: Δ=8 sits below the split cutoff and finishes greedily; a
    // drift here means the round charging itself changed.
    assert_eq!(rounds[0], 84, "Δ=8 anchor drifted (measured {})", rounds[0]);
    // Δ=32 within 10× of Δ=8 (measured: 728 vs 84, i.e. 8.7×).
    assert!(
        rounds[2] <= 10 * rounds[0],
        "Δ=32 costs {}× the rounds of Δ=8 (limit 10×): {:?} — see docs/ROUNDS.md",
        rounds[2] / rounds[0].max(1),
        rounds
    );
    // Every Δ-doubling multiplies rounds by at most 6 (measured ratios:
    // 5.3, 1.6, 3.6). A super-polylog blowup shows up as a ratio far
    // above this; polylog growth with c ≈ 2–3 stays comfortably below.
    for (i, pair) in rounds.windows(2).enumerate() {
        assert!(
            pair[1] <= 6 * pair[0],
            "Δ={} → Δ={} multiplied rounds by {:.1} (limit 6×): {:?} — see docs/ROUNDS.md",
            deltas[i],
            deltas[i + 1],
            pair[1] as f64 / pair[0].max(1) as f64,
            rounds
        );
    }
}

#[test]
fn balanced_orientation_round_counts_are_pinned() {
    let pinned: &[(usize, usize, u64, u64, u32)] = &[
        // (n per side, d, generator seed, expected rounds, expected phases)
        // Re-pinned after the ROUNDS.md round-blowup fix: the orientation
        // game now exits as soon as every arc is stable (and skips empty
        // E_φ phases), so these small instances converge in a handful of
        // phases instead of running the analytic phase budget dry.
        (16, 5, 3, 13, 4),
        (24, 8, 9, 22, 7),
    ];
    for &(n, d, seed, rounds, phases) in pinned {
        let bg = generators::regular_bipartite(n, d, seed).expect("feasible bipartite instance");
        let eta = vec![0.0; bg.graph().m()];
        let params = OrientationParams::new(0.5, ParamProfile::Practical);
        let mut net = Network::new(bg.graph(), Model::Local);
        let result = compute_balanced_orientation(&bg, &eta, &params, &mut net);
        assert_eq!(
            result.rounds, rounds,
            "regular_bipartite({n},{d},{seed}): orientation round count drifted"
        );
        assert_eq!(
            result.phases, phases,
            "regular_bipartite({n},{d},{seed}): orientation phase count drifted"
        );
    }
}

#[test]
fn token_dropping_round_counts_are_pinned() {
    // Layered "waterfall" instances (the original token dropping setting).
    let pinned: &[(usize, usize, usize, usize, u64, u64)] = &[
        // (layers, width, k, δ, expected rounds, expected phases)
        // Re-pinned after the ROUNDS.md round-blowup fix: the token game
        // stops charging phases once no token can move, so the waterfall
        // drains in 12 phases instead of the fixed 15-phase schedule.
        (4, 4, 32, 2, 36, 12),
        (6, 8, 64, 4, 36, 12),
    ];
    for &(layers, width, k, delta, rounds, phases) in pinned {
        let n = layers * width;
        let mut arcs = Vec::new();
        for l in 0..layers - 1 {
            for a in 0..width {
                for b in 0..width {
                    arcs.push((NodeId::new(l * width + a), NodeId::new((l + 1) * width + b)));
                }
            }
        }
        let mut tokens = vec![0usize; n];
        for t in tokens.iter_mut().take(width) {
            *t = k;
        }
        let game = TokenGame::new(n, arcs, k, tokens);
        let params = TokenGameParams {
            alpha: vec![delta + 1; n],
            delta,
        };
        let result = solve_distributed(&game, &params);
        assert_eq!(
            result.rounds, rounds,
            "layered({layers},{width},k={k},δ={delta}): token dropping rounds drifted"
        );
        assert_eq!(
            result.phases, phases,
            "layered({layers},{width},k={k},δ={delta}): token dropping phases drifted"
        );
        // The 3-rounds-per-phase charging of Section 4.1 must stay intact.
        assert_eq!(result.rounds, 3 * result.phases);
    }
}

#[test]
fn congest_algorithm_stays_within_eight_plus_eps_delta() {
    for (name, g) in matrix() {
        if g.m() == 0 {
            continue;
        }
        let ids = IdAssignment::scattered(g.n(), 23);
        let params = ColoringParams::new(0.5);
        let result = color_congest(&g, &ids, &params);
        check_proper_edge_coloring(&g, &result.coloring).assert_ok();
        check_complete(&g, &result.coloring).assert_ok();
        let budget = ((8.0 + params.eps) * g.max_degree() as f64).ceil() as usize;
        assert!(
            result.colors_used <= budget.max(1),
            "{name}: CONGEST coloring used {} colors, budget (8+ε)Δ = {budget}",
            result.colors_used
        );
        assert_eq!(
            result.metrics.congest_violations, 0,
            "{name}: CONGEST run exceeded the bandwidth limit"
        );
    }
}
