//! Defective vertex colorings (the substrate imported from \[11\],
//! Barenboim–Elkin–Kuhn, used by Lemma 6.2 and Theorem D.4).
//!
//! A *d-defective c-coloring* assigns one of `c` colors to every node so that
//! each node has at most `d` neighbors of its own color. The paper uses two
//! instances of this substrate:
//!
//! * Lemma 6.2: an `(εΔ + ⌊Δ/2⌋)`-defective **4**-coloring, used to carve the
//!   graph into bipartite pieces for the CONGEST algorithm (Theorem 6.3);
//! * Theorem D.4: a `Δ/2`-defective `O(1)`-coloring, used to carve the graph
//!   into bipartite pieces for the LOCAL list coloring algorithm.
//!
//! Both are built from the same one-round *defective reduction step*: given a
//! (possibly already defective) coloring, every node re-interprets its color
//! as a low-degree polynomial over a prime field and picks the evaluation
//! point minimizing collisions with its neighbors, which adds at most
//! `t·Δ/q ≤ d_step` to its defect while shrinking the palette to `q²`
//! (see DESIGN.md for the substitution notes versus the exact procedure
//! of \[11\]).

use crate::linial::next_prime;
use distgraph::{Graph, NodeId, VertexColoring};
use distsim::{LedgerEntry, Network};

/// Result of an iterated defective coloring computation.
#[derive(Debug, Clone)]
pub struct DefectiveColoringResult {
    /// The defective coloring.
    pub coloring: VertexColoring,
    /// The palette size of the coloring.
    pub palette: usize,
    /// The analytic bound on the defect accumulated by the reduction steps.
    pub defect_bound: f64,
    /// Rounds charged.
    pub rounds: u64,
}

/// Chooses `(t, q)` for one defective reduction step: the smallest `t ≥ 1`
/// such that `q = nextprime(⌈t·Δ/d⌉ + 1)` satisfies `q^{t+1} ≥ palette`.
fn choose_defective_parameters(palette: u64, max_degree: usize, d_step: usize) -> (u32, u64) {
    let delta = max_degree.max(1) as u64;
    let d = d_step.max(1) as u64;
    for t in 1..=64u32 {
        let base = (t as u64 * delta).div_ceil(d) + 1;
        let q = next_prime(base.max(2));
        let mut power: u128 = 1;
        let mut enough = false;
        for _ in 0..=t {
            power = power.saturating_mul(q as u128);
            if power >= palette as u128 {
                enough = true;
                break;
            }
        }
        if enough {
            return (t, q);
        }
    }
    (64, next_prime(64 * delta.max(2)))
}

fn eval_poly(color: u64, t: u32, q: u64, a: u64) -> u64 {
    let mut digits = Vec::with_capacity(t as usize + 1);
    let mut rest = color;
    for _ in 0..=t {
        digits.push(rest % q);
        rest /= q;
    }
    let mut acc = 0u64;
    for &d in digits.iter().rev() {
        acc = (acc * a + d) % q;
    }
    acc
}

/// One defective reduction step (one communication round): shrinks the
/// palette to `q²` while adding at most `t·Δ/q ≤ d_step` to every node's
/// defect.
pub fn defective_step(
    graph: &Graph,
    colors: &[u64],
    palette: u64,
    d_step: usize,
    net: &mut Network<'_>,
) -> (Vec<u64>, u64, f64) {
    let max_degree = graph.max_degree();
    let (t, q) = choose_defective_parameters(palette, max_degree, d_step);
    let new_palette = q * q;
    if new_palette >= palette {
        return (colors.to_vec(), palette, 0.0);
    }
    let mail = net.broadcast(|v| colors[v.index()]);
    let mut next = vec![0u64; graph.n()];
    for v in graph.nodes() {
        let my_color = colors[v.index()];
        let neighbor_colors: Vec<u64> = mail.inbox(v).iter().map(|m| m.msg).collect();
        // Pick the evaluation point minimizing collisions with neighbors of a
        // *different* color (same-colored neighbors collide everywhere and are
        // already accounted in the incoming defect).
        let mut best = (usize::MAX, 0u64, 0u64);
        for a in 0..q {
            let mine = eval_poly(my_color, t, q, a);
            let collisions = neighbor_colors
                .iter()
                .filter(|&&c| c != my_color && eval_poly(c, t, q, a) == mine)
                .count();
            if collisions < best.0 {
                best = (collisions, a, mine);
            }
        }
        next[v.index()] = best.1 * q + best.2;
    }
    let added_defect = t as f64 * max_degree as f64 / q as f64;
    (next, new_palette, added_defect)
}

/// Iterates [`defective_step`] until the palette stops shrinking, spreading a
/// total defect budget across the steps.
///
/// Starting from a *proper* coloring with the given palette, the result is a
/// coloring with `O((Δ/defect_budget)²·polylog)` colors whose defect is at
/// most `defect_budget`. The budget is allotted geometrically (half of the
/// remaining budget per step) so that the first, most palette-reducing steps
/// get the most room; when the half-budget step stalls (its `q²` would not
/// shrink the palette), the step is retried once committing the *full*
/// remaining budget, which reaches the `O((Δ/d)²)` fixpoint instead of
/// stopping a constant factor short of it. A stalled probe costs zero rounds
/// ([`defective_step`] bails before communicating), so the retry never
/// charges for the failed attempt.
pub fn iterated_defective_coloring(
    graph: &Graph,
    coloring: &VertexColoring,
    palette: usize,
    defect_budget: f64,
    net: &mut Network<'_>,
) -> DefectiveColoringResult {
    let max_steps = 6u32;
    let mut remaining_budget = defect_budget.max(1.0);
    let mut colors: Vec<u64> = coloring.as_slice().iter().map(|&c| c as u64).collect();
    let mut current_palette = palette.max(coloring.palette_size()).max(1) as u64;
    let mut defect_bound = 0.0;
    let rounds_before = net.rounds();
    if graph.max_degree() == 0 {
        return DefectiveColoringResult {
            coloring: VertexColoring::from_vec(vec![0; graph.n()]),
            palette: 1,
            defect_bound: 0.0,
            rounds: 0,
        };
    }
    for _ in 0..max_steps {
        if remaining_budget < 1.0 {
            break;
        }
        let per_step = (remaining_budget / 2.0).max(1.0);
        let (mut next, mut next_palette, mut added) =
            defective_step(graph, &colors, current_palette, per_step as usize, net);
        if next_palette >= current_palette && remaining_budget >= per_step + 1.0 {
            // The half-budget step stalled; commit the full remaining budget
            // in one step (larger d ⇒ smaller q ⇒ smaller q² target).
            (next, next_palette, added) = defective_step(
                graph,
                &colors,
                current_palette,
                remaining_budget as usize,
                net,
            );
        }
        if next_palette >= current_palette {
            break;
        }
        colors = next;
        current_palette = next_palette;
        defect_bound += added;
        remaining_budget -= added;
    }
    DefectiveColoringResult {
        coloring: VertexColoring::from_vec(colors.iter().map(|&c| c as usize).collect()),
        palette: current_palette as usize,
        defect_bound,
        rounds: net.rounds() - rounds_before,
    }
}

/// A `Δ/2`-defective `O(1)`-coloring from a proper `poly(Δ)`-coloring
/// (the substrate used by Theorem D.4).
pub fn low_defect_constant_coloring(
    graph: &Graph,
    proper: &VertexColoring,
    palette: usize,
    net: &mut Network<'_>,
) -> DefectiveColoringResult {
    let budget = (graph.max_degree() as f64 / 2.0).max(1.0);
    iterated_defective_coloring(graph, proper, palette, budget, net)
}

/// Lemma 6.2: an `(εΔ + ⌊Δ/2⌋)`-defective 4-coloring computed from a proper
/// `O(Δ²)`-coloring in `poly(1/ε) + O(1)` rounds.
///
/// The implementation first shrinks the palette with defect budget `εΔ/2`
/// (the faithful \[11\]-style step) and then folds the classes into 4 groups by
/// a threshold local search processed class-by-class (our substitute for the
/// Refine procedure of \[11\]; see DESIGN.md). The returned coloring always has
/// palette ≤ 4; the defect bound is verified by the caller/tests via
/// `edgecolor-verify`.
pub fn defective_four_coloring(
    graph: &Graph,
    proper: &VertexColoring,
    palette: usize,
    eps: f64,
    net: &mut Network<'_>,
) -> VertexColoring {
    let n = graph.n();
    if n == 0 {
        return VertexColoring::from_vec(vec![]);
    }
    let delta = graph.max_degree();
    if delta == 0 {
        return VertexColoring::from_vec(vec![0; n]);
    }
    let eps = eps.clamp(1e-3, 1.0);
    // Step 1: descend to an O(1) palette with per-step defect Θ(Δ). The step
    // budget must be Θ(Δ): Steps 2 and 3 below charge one broadcast round
    // per class per pass, so the palette this descent stalls at — roughly
    // (Δ/d_step)² — multiplies directly into the round count. A budget of
    // o(Δ) (the old εΔ/2, split geometrically across steps) stalls at ω(1)
    // classes and makes each outer degree-reduction iteration of Theorem D.4
    // cost ω(polylog Δ) rounds. With d_step = (1+ε)Δ/2 the fixpoint is a
    // Δ-independent constant (q = nextprime(⌈tΔ/d⌉+1) depends only on
    // t/(1+ε)). Unlike `iterated_defective_coloring` this descent does not
    // cap the *accumulated* analytic defect — the final Lemma 6.2 bound is
    // enforced by the threshold local search of Step 3, not by Step 1.
    let d_step = ((1.0 + eps) * delta as f64 / 2.0).max(1.0) as usize;
    let step1_rounds_before = net.rounds();
    let mut colors: Vec<u64> = proper.as_slice().iter().map(|&c| c as u64).collect();
    let mut current_palette = palette.max(proper.palette_size()).max(1) as u64;
    for _ in 0..6 {
        let (next, next_palette, _added) =
            defective_step(graph, &colors, current_palette, d_step, net);
        if next_palette >= current_palette {
            break;
        }
        colors = next;
        current_palette = next_palette;
    }
    let base = DefectiveColoringResult {
        coloring: VertexColoring::from_vec(colors.iter().map(|&c| c as usize).collect()),
        palette: current_palette as usize,
        defect_bound: f64::NAN,
        rounds: net.rounds() - step1_rounds_before,
    };
    let classes = base.palette.max(1);
    net.record_ledger(LedgerEntry {
        depth: 0,
        stage: "d4-reduce",
        delta_level: classes,
        edges: graph.m(),
        rounds: net.rounds() - step1_rounds_before,
        defect_ratio: base.coloring.max_defect(graph) as f64 / delta as f64,
        fallback: false,
    });

    // Step 2: fold the classes into 4 groups, class by class; each node picks
    // the group with the fewest already-assigned neighbors.
    let fold_rounds_before = net.rounds();
    let mut group: Vec<Option<usize>> = vec![None; n];
    for class in 0..classes {
        // One round: nodes of this class learn their neighbors' groups.
        let mail = net.broadcast(|v| group[v.index()].map(|g| g as u64 + 1).unwrap_or(0));
        for v in graph.nodes() {
            if base.coloring.color(v) != class {
                continue;
            }
            let mut counts = [0usize; 4];
            for m in mail.inbox(v) {
                if m.msg > 0 {
                    counts[(m.msg - 1) as usize] += 1;
                }
            }
            let best = (0..4).min_by_key(|&g| counts[g]).unwrap_or(0);
            group[v.index()] = Some(best);
        }
    }
    net.record_ledger(LedgerEntry {
        depth: 0,
        stage: "d4-fold",
        delta_level: classes,
        edges: graph.m(),
        rounds: net.rounds() - fold_rounds_before,
        defect_ratio: f64::NAN,
        fallback: false,
    });

    // Step 3: threshold local-search sweeps. A node is unhappy if it has more
    // than (1/4 + ε)Δ neighbors in its own group; unhappy nodes move to the
    // group with the fewest neighbors. Every node already knows its
    // neighbors' groups from the last broadcast it heard, so a class with no
    // unhappy node can be skipped without a round: only classes that still
    // contain an unhappy node broadcast and move.
    //
    // The target is stronger than the (1/2 + ε)Δ defect promised by
    // Lemma 6.2: a local optimum of the 4-group partition has own-group
    // degree ≤ Δ/4 (moving to the minority group improves any node above
    // that), and the tighter bound is what makes the outer degree-reduction
    // loop contract by a constant factor ≈ 1/4 + ε < 1/2 per iteration
    // instead of plateauing at Δ/2. If the sweep budget runs out before the
    // local search converges the result still satisfies every caller that
    // only relies on the Lemma 6.2 bound, and the driver's stall guard
    // covers the (deterministic) non-contracting case.
    let sweep_rounds_before = net.rounds();
    let threshold = (delta as f64 / 4.0).floor() + eps * delta as f64;
    let sweeps = ((2.0 / eps).ceil() as usize).clamp(1, 8);
    let unhappy_classes = |group: &[Option<usize>]| -> Vec<bool> {
        let mut unhappy = vec![false; classes];
        for v in graph.nodes() {
            let own = group[v.index()].unwrap_or(0);
            let same = graph
                .neighbors(v)
                .iter()
                .filter(|nb| group[nb.node.index()].unwrap_or(0) == own)
                .count();
            if same as f64 > threshold {
                unhappy[base.coloring.color(v)] = true;
            }
        }
        unhappy
    };
    for _sweep in 0..sweeps {
        let mut any_moved = false;
        let unhappy = unhappy_classes(&group);
        if !unhappy.iter().any(|&u| u) {
            break;
        }
        for (class, &class_unhappy) in unhappy.iter().enumerate() {
            if !class_unhappy {
                continue;
            }
            // One broadcast carries (group, unhappy-bit); both are derived
            // from the group state at broadcast time, so neighbors can apply
            // the mover gate below without a second round.
            let mail = net.broadcast(|v| group[v.index()].map(|g| g as u64).unwrap_or(0));
            let snapshot: Vec<usize> = group.iter().map(|g| g.unwrap_or(0)).collect();
            let own_count = |v: NodeId| -> usize {
                let own = snapshot[v.index()];
                mail.inbox(v)
                    .iter()
                    .filter(|m| m.msg as usize == own)
                    .count()
            };
            // The merged base classes can have intra-class defect close to Δ,
            // so simultaneous best-response moves of a whole class oscillate
            // (two adjacent unhappy nodes keep jumping into each other's
            // group) and the sweep can exhaust its budget without reaching
            // the Lemma 6.2 defect bound. Gate the movers: an unhappy node
            // moves only if no *adjacent* same-class neighbor with a larger
            // index is also unhappy. Movers are then pairwise non-adjacent,
            // every move strictly decreases the monochromatic-edge count,
            // and the locally largest unhappy node is never blocked, so each
            // processed class makes progress.
            for v in graph.nodes() {
                if base.coloring.color(v) != class {
                    continue;
                }
                let mut counts = [0usize; 4];
                for m in mail.inbox(v) {
                    counts[m.msg as usize] += 1;
                }
                let own = snapshot[v.index()];
                if counts[own] as f64 > threshold {
                    let blocked = graph.neighbors(v).iter().any(|nb| {
                        nb.node.index() > v.index()
                            && base.coloring.color(nb.node) == class
                            && own_count(nb.node) as f64 > threshold
                    });
                    if blocked {
                        continue;
                    }
                    let best = (0..4).min_by_key(|&g| counts[g]).unwrap_or(own);
                    if best != own {
                        group[v.index()] = Some(best);
                        any_moved = true;
                    }
                }
            }
        }
        if !any_moved {
            break;
        }
    }
    net.record_ledger(LedgerEntry {
        depth: 0,
        stage: "d4-sweep",
        delta_level: classes,
        edges: graph.m(),
        rounds: net.rounds() - sweep_rounds_before,
        defect_ratio: f64::NAN,
        fallback: false,
    });

    VertexColoring::from_vec(group.into_iter().map(|g| g.unwrap_or(0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linial::linial_coloring;
    use distgraph::generators;
    use distsim::{IdAssignment, Model};

    fn proper_coloring(graph: &Graph) -> (VertexColoring, usize) {
        let ids = IdAssignment::contiguous(graph.n());
        let mut net = Network::new(graph, Model::Local);
        let result = linial_coloring(graph, &ids, &mut net);
        (result.coloring, result.palette)
    }

    #[test]
    fn defective_parameters_respect_constraints() {
        let (t, q) = choose_defective_parameters(10_000, 64, 8);
        assert!(q as usize > (t as usize * 64) / 8);
        assert!((q as u128).pow(t + 1) >= 10_000);
    }

    #[test]
    fn defective_step_reduces_palette_and_bounds_defect() {
        let g = generators::random_regular(120, 8, 3).unwrap();
        let (proper, palette) = proper_coloring(&g);
        let colors: Vec<u64> = proper.as_slice().iter().map(|&c| c as u64).collect();
        let mut net = Network::new(&g, Model::Local);
        let d_step = 4;
        let (next, new_palette, added) =
            defective_step(&g, &colors, palette as u64, d_step, &mut net);
        assert!(new_palette < palette as u64);
        assert!(added <= d_step as f64 + 1e-9);
        let coloring = VertexColoring::from_vec(next.iter().map(|&c| c as usize).collect());
        // measured defect must respect the analytic bound (input was proper)
        assert!(coloring.max_defect(&g) as f64 <= added + 1e-9);
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn iterated_defective_coloring_respects_budget() {
        let g = generators::random_regular(150, 10, 7).unwrap();
        let (proper, palette) = proper_coloring(&g);
        let mut net = Network::new(&g, Model::Local);
        let budget = g.max_degree() as f64 / 2.0;
        let result = iterated_defective_coloring(&g, &proper, palette, budget, &mut net);
        assert!(result.defect_bound <= budget + 1e-9);
        assert!(result.coloring.max_defect(&g) as f64 <= result.defect_bound + 1e-9);
        assert!(result.palette < palette);
        assert!(
            result.palette <= 600,
            "palette {} not O(1)-ish",
            result.palette
        );
    }

    #[test]
    fn low_defect_constant_coloring_has_small_palette_and_half_defect() {
        let g = generators::random_regular(200, 12, 1).unwrap();
        let (proper, palette) = proper_coloring(&g);
        let mut net = Network::new(&g, Model::Local);
        let result = low_defect_constant_coloring(&g, &proper, palette, &mut net);
        assert!(result.coloring.max_defect(&g) <= g.max_degree() / 2 + 1);
        assert!(result.palette <= 600);
    }

    #[test]
    fn defective_four_coloring_meets_lemma_6_2_bound() {
        for (n, d, seed) in [(100, 8, 1u64), (150, 12, 2), (80, 6, 3)] {
            let g = generators::random_regular(n, d, seed).unwrap();
            let (proper, palette) = proper_coloring(&g);
            let mut net = Network::new(&g, Model::Local);
            let eps = 0.25;
            let four = defective_four_coloring(&g, &proper, palette, eps, &mut net);
            assert!(four.palette_size() <= 4);
            let delta = g.max_degree();
            let bound = (eps * delta as f64) + (delta / 2) as f64;
            let defect = four.max_defect(&g);
            assert!(
                defect as f64 <= bound + 1e-9,
                "defect {defect} exceeds Lemma 6.2 bound {bound} (n={n}, d={d})"
            );
        }
    }

    #[test]
    fn defective_four_coloring_on_dense_graph() {
        let g = generators::complete_graph(40);
        let (proper, palette) = proper_coloring(&g);
        let mut net = Network::new(&g, Model::Local);
        let eps = 0.2;
        let four = defective_four_coloring(&g, &proper, palette, eps, &mut net);
        let delta = g.max_degree();
        let bound = (eps * delta as f64) + (delta / 2) as f64;
        assert!(four.max_defect(&g) as f64 <= bound + 1e-9);
    }

    #[test]
    fn edge_cases_empty_and_edgeless() {
        let empty = Graph::from_edges(0, &[]).unwrap();
        let mut net = Network::new(&empty, Model::Local);
        let coloring =
            defective_four_coloring(&empty, &VertexColoring::from_vec(vec![]), 1, 0.5, &mut net);
        assert!(coloring.is_empty());

        let edgeless = Graph::from_edges(5, &[]).unwrap();
        let mut net = Network::new(&edgeless, Model::Local);
        let proper = VertexColoring::from_vec(vec![0, 1, 2, 3, 4]);
        let coloring = defective_four_coloring(&edgeless, &proper, 5, 0.5, &mut net);
        assert_eq!(coloring.palette_size(), 1);
        let result = iterated_defective_coloring(&edgeless, &proper, 5, 1.0, &mut net);
        assert_eq!(result.palette, 1);
    }

    #[test]
    fn congest_compliance_of_defective_steps() {
        let g = generators::random_regular(100, 6, 9).unwrap();
        let (proper, palette) = proper_coloring(&g);
        let mut net = Network::new(&g, Model::congest_for(g.n()));
        let result = low_defect_constant_coloring(&g, &proper, palette, &mut net);
        assert_eq!(net.metrics().congest_violations, 0);
        assert!(result.palette > 0);
    }
}
