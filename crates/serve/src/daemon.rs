//! The TCP front door: accept loop, per-connection workers, optional tick
//! thread, cooperative shutdown.
//!
//! Transport policy:
//!
//! * **Payload-level** protocol errors (bad opcode, truncated body, …) keep
//!   the connection alive — framing is still in sync, so the worker answers
//!   [`Response::ProtocolRejected`] and keeps reading.
//! * **Framing-level** errors (oversize/zero length declaration, EOF inside
//!   a frame) desynchronize the stream: the worker answers once and closes.
//! * Shutdown never blocks on idle readers: the handle keeps a registry of
//!   connection streams and `TcpStream::shutdown`s them, which wakes every
//!   blocked `read` with EOF.

use crate::error::WireError;
use crate::state::ServerCore;
use crate::wire::{read_frame, write_frame, Request, Response};
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A running daemon: owns the listener thread, connection workers and the
/// optional background ticker over one shared [`ServerCore`].
#[derive(Debug)]
pub struct DaemonHandle {
    core: Arc<ServerCore>,
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl DaemonHandle {
    /// Binds `127.0.0.1:0` (an OS-assigned port) and starts serving `core`.
    ///
    /// # Errors
    ///
    /// Propagates listener setup failures.
    pub fn spawn(core: ServerCore) -> io::Result<Self> {
        let core = Arc::new(core);
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let core = Arc::clone(&core);
            let running = Arc::clone(&running);
            let conns = Arc::clone(&conns);
            let workers = Arc::clone(&workers);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if !running.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
                    }
                    let core = Arc::clone(&core);
                    let running = Arc::clone(&running);
                    let conns = Arc::clone(&conns);
                    let worker = std::thread::spawn(move || {
                        serve_connection(&core, stream, &running, addr, &conns);
                    });
                    workers
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(worker);
                }
            })
        };

        let ticker = core.config().tick_interval_ms.map(|interval| {
            let core = Arc::clone(&core);
            let running = Arc::clone(&running);
            std::thread::spawn(move || {
                while running.load(Ordering::SeqCst) {
                    core.tick();
                    std::thread::sleep(Duration::from_millis(interval));
                }
            })
        });

        Ok(DaemonHandle {
            core,
            addr,
            running,
            conns,
            accept: Some(accept),
            ticker,
            workers,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving core — tests and the bench harness use this for
    /// in-process introspection (batch log, state snapshots, manual ticks).
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// Stops accepting, wakes every blocked reader, and joins all daemon
    /// threads.
    pub fn shutdown(mut self) {
        stop(&self.running, self.addr, &self.conns);
        self.join_all();
    }

    /// Blocks until some client asks the daemon to stop (a `Shutdown`
    /// request), then joins all daemon threads. This is the standalone
    /// binary's serve loop.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The accept loop only exits after `stop` ran; finish the cleanup
        // (idempotent) and join the rest.
        stop(&self.running, self.addr, &self.conns);
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        let drained: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        // Best-effort stop without joining (joining here could deadlock if
        // a worker drops the handle); `shutdown` is the clean path.
        stop(&self.running, self.addr, &self.conns);
    }
}

/// Flips the running flag, closes every registered connection (waking
/// blocked reads with EOF) and pokes the listener so `accept` returns.
fn stop(running: &AtomicBool, addr: SocketAddr, conns: &Mutex<Vec<TcpStream>>) {
    if !running.swap(false, Ordering::SeqCst) {
        return;
    }
    for conn in conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
        let _ = conn.shutdown(Shutdown::Both);
    }
    let _ = TcpStream::connect(addr);
}

fn serve_connection(
    core: &ServerCore,
    stream: TcpStream,
    running: &AtomicBool,
    addr: SocketAddr,
    conns: &Mutex<Vec<TcpStream>>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        if !running.load(Ordering::SeqCst) {
            break;
        }
        match read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(payload)) => match Request::decode(&payload) {
                Ok(req) => {
                    let resp = core.handle(&req);
                    let stop_after = matches!(req, Request::Shutdown);
                    if write_frame(&mut writer, &resp.encode()).is_err() {
                        break;
                    }
                    if stop_after {
                        stop(running, addr, conns);
                        break;
                    }
                }
                Err(e) => {
                    core.note_protocol_error();
                    let reject = Response::ProtocolRejected {
                        detail: e.to_string(),
                    };
                    if write_frame(&mut writer, &reject.encode()).is_err() {
                        break;
                    }
                }
            },
            Err(WireError::Protocol(e)) => {
                core.note_protocol_error();
                let reject = Response::ProtocolRejected {
                    detail: e.to_string(),
                };
                let _ = write_frame(&mut writer, &reject.encode());
                break;
            }
            Err(WireError::Io(_)) => break,
        }
    }
}
