//! Adversarial tests for the checkers themselves: the verify layer guards
//! every other test in the workspace, so each checker must actually reject
//! the malformed inputs it exists to catch — and accept the good ones.

use distgraph::{generators, EdgeColoring, EdgeId, Graph, ListAssignment, VertexColoring};
use edgecolor_verify::{
    check_complete, check_delta, check_list_compliance, check_palette_size,
    check_proper_edge_coloring, check_proper_vertex_coloring, Violation,
};

/// A triangle: every pair of edges is adjacent, so any repeated color is a
/// properness violation.
fn triangle() -> Graph {
    generators::cycle(3)
}

#[test]
fn improper_edge_coloring_is_rejected() {
    let g = triangle();
    let mut coloring = EdgeColoring::empty(g.m());
    coloring.set(EdgeId::new(0), 0);
    coloring.set(EdgeId::new(1), 0); // adjacent to edge 0 — improper
    coloring.set(EdgeId::new(2), 1);
    let report = check_proper_edge_coloring(&g, &coloring);
    assert!(!report.is_ok());
    assert!(report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::AdjacentEdgesShareColor { color: 0, .. })));
}

#[test]
fn proper_edge_coloring_is_accepted() {
    let g = triangle();
    let mut coloring = EdgeColoring::empty(g.m());
    coloring.set(EdgeId::new(0), 0);
    coloring.set(EdgeId::new(1), 1);
    coloring.set(EdgeId::new(2), 2);
    check_proper_edge_coloring(&g, &coloring).assert_ok();
    check_complete(&g, &coloring).assert_ok();
}

#[test]
fn incomplete_coloring_is_rejected_with_the_missing_edge() {
    let g = generators::path(4); // edges 0,1,2
    let mut coloring = EdgeColoring::empty(g.m());
    coloring.set(EdgeId::new(0), 0);
    coloring.set(EdgeId::new(2), 0);
    let report = check_complete(&g, &coloring);
    assert!(!report.is_ok());
    assert_eq!(
        report.violations(),
        &[Violation::EdgeUncolored {
            edge: EdgeId::new(1)
        }]
    );
    // Properness of the colored part is a separate question: the partial
    // coloring above is proper, so the properness checker accepts it.
    check_proper_edge_coloring(&g, &coloring).assert_ok();
}

#[test]
fn out_of_list_color_is_rejected() {
    let g = generators::path(3); // edges 0,1 sharing the middle node
    let lists = ListAssignment::new(4, vec![vec![0, 1], vec![2, 3]]);
    let mut coloring = EdgeColoring::empty(g.m());
    coloring.set(EdgeId::new(0), 0);
    coloring.set(EdgeId::new(1), 1); // proper, but 1 is not in edge 1's list
    check_proper_edge_coloring(&g, &coloring).assert_ok();
    let report = check_list_compliance(&g, &lists, &coloring);
    assert!(!report.is_ok());
    assert_eq!(
        report.violations(),
        &[Violation::ColorNotInList {
            edge: EdgeId::new(1),
            color: 1
        }]
    );
    // The compliant assignment passes.
    let mut ok = EdgeColoring::empty(g.m());
    ok.set(EdgeId::new(0), 0);
    ok.set(EdgeId::new(1), 2);
    check_list_compliance(&g, &lists, &ok).assert_ok();
}

#[test]
fn oversized_palette_is_rejected() {
    let g = generators::star(3);
    let mut coloring = EdgeColoring::empty(g.m());
    for e in g.edges() {
        coloring.set(e, e.index());
    }
    // Palette size is max color + 1 = 3 here.
    check_palette_size(&coloring, 3).assert_ok();
    let report = check_palette_size(&coloring, 2);
    assert!(!report.is_ok());
    assert_eq!(
        report.violations(),
        &[Violation::TooManyColors {
            used: 3,
            allowed: 2
        }]
    );
}

#[test]
fn improper_vertex_coloring_is_rejected() {
    let g = generators::path(2);
    let same = VertexColoring::from_vec(vec![7, 7]);
    let report = check_proper_vertex_coloring(&g, &same);
    assert!(!report.is_ok());
    assert!(report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::AdjacentNodesShareColor { color: 7, .. })));
    let distinct = VertexColoring::from_vec(vec![0, 1]);
    check_proper_vertex_coloring(&g, &distinct).assert_ok();
}

#[test]
fn empty_graph_trivially_passes_all_checks() {
    let g = Graph::from_edges(3, &[]).expect("edgeless graph");
    let coloring = EdgeColoring::empty(0);
    check_proper_edge_coloring(&g, &coloring).assert_ok();
    check_complete(&g, &coloring).assert_ok();
    check_palette_size(&coloring, 0).assert_ok();
}

#[test]
#[should_panic(expected = "verification failed")]
fn assert_ok_panics_on_violations() {
    let g = triangle();
    let mut coloring = EdgeColoring::empty(g.m());
    coloring.set(EdgeId::new(0), 0);
    coloring.set(EdgeId::new(1), 0);
    coloring.set(EdgeId::new(2), 0);
    check_proper_edge_coloring(&g, &coloring).assert_ok();
}

// ---- check_delta: the incremental verifier's adversarial paths -------------

/// A path on five nodes: edges 0-1-2-3 in a row, so edges 0/1, 1/2, 2/3 are
/// the adjacent pairs.
fn path5() -> Graph {
    generators::path(5)
}

#[test]
fn check_delta_catches_conflicts_introduced_by_the_touched_edge() {
    let g = path5();
    let mut coloring = EdgeColoring::empty(g.m());
    coloring.set(EdgeId::new(0), 0);
    coloring.set(EdgeId::new(1), 1);
    coloring.set(EdgeId::new(2), 0);
    coloring.set(EdgeId::new(3), 2);
    check_delta(&g, &coloring, &[EdgeId::new(2)], 3).assert_ok();
    // Repainting edge 2 to clash with its neighbor edge 1 is caught when
    // edge 2 is in the touched set...
    coloring.set(EdgeId::new(2), 1);
    let report = check_delta(&g, &coloring, &[EdgeId::new(2)], 3);
    assert!(!report.is_ok());
    assert!(report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::AdjacentEdgesShareColor { color: 1, .. })));
    // ...and equally when only the *other* side of the conflict is touched.
    let report = check_delta(&g, &coloring, &[EdgeId::new(1)], 3);
    assert!(!report.is_ok());
    // The conflicting pair is reported once even when both sides are touched.
    let report = check_delta(&g, &coloring, &[EdgeId::new(1), EdgeId::new(2)], 3);
    assert_eq!(report.violations().len(), 1);
}

#[test]
fn check_delta_catches_uncolored_and_oversized_touched_edges() {
    let g = path5();
    let mut coloring = EdgeColoring::empty(g.m());
    coloring.set(EdgeId::new(0), 7);
    let report = check_delta(&g, &coloring, &[EdgeId::new(0), EdgeId::new(1)], 3);
    assert_eq!(report.violations().len(), 2);
    assert!(report.violations().iter().any(|v| matches!(
        v,
        Violation::TooManyColors {
            used: 8,
            allowed: 3
        }
    )));
    assert!(report
        .violations()
        .iter()
        .any(|v| matches!(v, Violation::EdgeUncolored { edge: EdgeId(1) })));
}

/// The documented out-of-contract case: a *stale* conflict strictly outside
/// the touched neighborhood. `check_delta` certifies only the delta — if the
/// pre-batch coloring was valid and `touched` lists every changed edge, a
/// clean incremental report implies global validity. A violation smuggled
/// into the untouched region therefore must be caught by the `O(m)` full
/// checker but is intentionally invisible to the `O(batch·Δ)` incremental
/// one.
///
/// Callers who cannot trust their suspect sets close this gap one layer up:
/// `SelfStabilizing::with_full_sweep_every` in the `edgecolor` crate
/// periodically widens detection to every edge, so the same stale-conflict
/// shape is found and healed within one sweep period (pinned by
/// `full_sweep_escape_hatch_heals_stale_conflicts_outside_the_suspect_set`
/// in `crates/core/src/stabilize.rs`).
#[test]
fn stale_conflict_outside_the_touched_set_is_out_of_contract() {
    let g = path5();
    let mut coloring = EdgeColoring::empty(g.m());
    coloring.set(EdgeId::new(0), 0);
    coloring.set(EdgeId::new(1), 0); // stale conflict: edges 0 and 1 adjacent
    coloring.set(EdgeId::new(2), 1);
    coloring.set(EdgeId::new(3), 0);
    // Touching only the far end of the path sees nothing...
    check_delta(&g, &coloring, &[EdgeId::new(3)], 2).assert_ok();
    // ...while the full checker still catches the stale pair.
    let full = check_proper_edge_coloring(&g, &coloring);
    assert!(!full.is_ok());
    // The moment the touched set reaches the conflict's neighborhood, the
    // incremental checker catches it too.
    assert!(!check_delta(&g, &coloring, &[EdgeId::new(0)], 2).is_ok());
}

#[test]
fn check_delta_cost_is_bounded_by_the_touched_neighborhood() {
    // A star plus one far-away colored pair: touching only the far pair must
    // not report anything about the (improperly colored) star.
    let mut edges = vec![(0usize, 1usize)];
    for leaf in 3..20 {
        edges.push((2, leaf));
    }
    let g = Graph::from_edges(20, &edges).expect("valid");
    let mut coloring = EdgeColoring::empty(g.m());
    for e in g.edges() {
        coloring.set(e, 0); // the star edges all clash with each other
    }
    check_delta(&g, &coloring, &[EdgeId::new(0)], 1).assert_ok();
    assert!(!check_proper_edge_coloring(&g, &coloring).is_ok());
}
