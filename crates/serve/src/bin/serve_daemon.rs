//! `serve-daemon`: boot a serving daemon from snapshot files and/or
//! generated toruses and print the bound address.
//!
//! ```text
//! serve-daemon --snapshot PATH          # boot from a diststore snapshot
//! serve-daemon --torus ROWSxCOLS        # boot from a generated grid torus
//! ```
//!
//! Both flags are repeatable; each occurrence adds one served graph, in
//! order, so the first becomes graph 0 (the v1-compat default tenant).
//! Torus tenants are named `torus-ROWSxCOLS-K` (`K` = position among the
//! tenants), snapshot tenants after their file stem.
//!
//! The process serves until a client sends the `Shutdown` request.

use distgraph::generators;
use distserve::{DaemonHandle, ServeConfig, ServerCore, Tenant};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: serve-daemon (--snapshot PATH | --torus ROWSxCOLS)...");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ServeConfig::default();
    let mut tenants = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            return usage();
        };
        match flag.as_str() {
            "--snapshot" => {
                match Tenant::from_snapshot_path(
                    snapshot_name(value, tenants.len()),
                    value,
                    config.clone(),
                ) {
                    Ok(t) => tenants.push(t),
                    Err(e) => {
                        eprintln!("serve-daemon: cannot boot from {value}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--torus" => {
                let Some((rows, cols)) = value
                    .split_once('x')
                    .and_then(|(r, c)| Some((r.parse::<usize>().ok()?, c.parse::<usize>().ok()?)))
                else {
                    return usage();
                };
                if rows < 3 || cols < 3 {
                    eprintln!("serve-daemon: torus dimensions must be at least 3x3");
                    return ExitCode::FAILURE;
                }
                let name = format!("torus-{rows}x{cols}-{}", tenants.len());
                match Tenant::new(name, generators::grid_torus(rows, cols), config.clone()) {
                    Ok(t) => tenants.push(t),
                    Err(e) => {
                        eprintln!("serve-daemon: initial coloring failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => return usage(),
        }
    }
    if tenants.is_empty() {
        return usage();
    }
    let core = ServerCore::from_tenants(tenants);

    let daemon = match DaemonHandle::spawn(core) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve-daemon: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("serve-daemon listening on {}", daemon.addr());
    for (gid, tenant) in daemon.core().tenants().iter().enumerate() {
        let info = tenant.info(gid as u32);
        println!("  graph {gid}: {} (n={}, m={})", info.name, info.n, info.m);
    }

    // Serve until a Shutdown request flips the running flag; the handle's
    // threads do all the work, so this thread just waits for them.
    daemon.wait();
    ExitCode::SUCCESS
}

fn snapshot_name(path: &str, position: usize) -> String {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .map(str::to_owned)
        .unwrap_or_else(|| format!("snapshot-{position}"))
}
