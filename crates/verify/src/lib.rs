//! # edgecolor-verify
//!
//! Validity checkers for the edge-coloring reproduction. Every experiment and
//! most tests funnel their outputs through these functions so that "the
//! algorithm produced a valid coloring" is asserted by one audited piece of
//! code rather than ad-hoc loops scattered across the repository.
//!
//! The checkers cover the paper's output specifications:
//!
//! * proper (partial or complete) edge colorings,
//! * list compliance (`c_e ∈ L_e`, Section 2),
//! * defective vertex colorings (`d`-defective `c`-colorings, Section 2),
//! * generalized `(1+ε, β)`-relaxed defective 2-edge colorings
//!   (Definition 5.1),
//! * generalized `(ε, β)`-balanced edge orientations (Definition 5.2),
//! * incremental re-validation after a mutation/repair batch
//!   ([`check_delta`]: `O(batch · Δ)` instead of `O(m)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use distgraph::{
    BipartiteGraph, EdgeColoring, EdgeId, Graph, ListAssignment, NodeId, Orientation,
    VertexColoring,
};
use std::fmt;

/// A single violated requirement found by a checker.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two adjacent edges share a color.
    AdjacentEdgesShareColor {
        /// First edge.
        a: EdgeId,
        /// Second edge.
        b: EdgeId,
        /// The shared color.
        color: usize,
    },
    /// An edge that was required to be colored is not.
    EdgeUncolored {
        /// The uncolored edge.
        edge: EdgeId,
    },
    /// An edge is colored with a color outside its list.
    ColorNotInList {
        /// The edge.
        edge: EdgeId,
        /// The offending color.
        color: usize,
    },
    /// Two adjacent nodes share a color (for proper vertex colorings).
    AdjacentNodesShareColor {
        /// First node.
        a: NodeId,
        /// Second node.
        b: NodeId,
        /// The shared color.
        color: usize,
    },
    /// A node exceeds the allowed defect.
    NodeDefectExceeded {
        /// The node.
        node: NodeId,
        /// Number of same-colored neighbors.
        defect: usize,
        /// The allowed bound.
        allowed: f64,
    },
    /// An edge exceeds the allowed defect (same-colored adjacent edges).
    EdgeDefectExceeded {
        /// The edge.
        edge: EdgeId,
        /// Number of same-colored adjacent edges.
        defect: usize,
        /// The allowed bound.
        allowed: f64,
    },
    /// An oriented edge violates the balanced-orientation inequality of
    /// Definition 5.2.
    OrientationImbalance {
        /// The edge.
        edge: EdgeId,
        /// The measured difference `x_head − x_tail`.
        difference: i64,
        /// The allowed bound.
        allowed: f64,
    },
    /// An edge that was required to be oriented is not.
    EdgeUnoriented {
        /// The unoriented edge.
        edge: EdgeId,
    },
    /// The number of colors used exceeds the allowed palette size.
    TooManyColors {
        /// Palette size used (max color + 1).
        used: usize,
        /// The allowed number of colors.
        allowed: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::AdjacentEdgesShareColor { a, b, color } => {
                write!(f, "adjacent edges {a} and {b} both have color {color}")
            }
            Violation::EdgeUncolored { edge } => write!(f, "edge {edge} is uncolored"),
            Violation::ColorNotInList { edge, color } => {
                write!(f, "edge {edge} uses color {color} which is not in its list")
            }
            Violation::AdjacentNodesShareColor { a, b, color } => {
                write!(f, "adjacent nodes {a} and {b} both have color {color}")
            }
            Violation::NodeDefectExceeded {
                node,
                defect,
                allowed,
            } => {
                write!(
                    f,
                    "node {node} has defect {defect} exceeding the allowed {allowed}"
                )
            }
            Violation::EdgeDefectExceeded {
                edge,
                defect,
                allowed,
            } => {
                write!(
                    f,
                    "edge {edge} has defect {defect} exceeding the allowed {allowed}"
                )
            }
            Violation::OrientationImbalance {
                edge,
                difference,
                allowed,
            } => {
                write!(f, "edge {edge} has orientation imbalance {difference} exceeding the allowed {allowed}")
            }
            Violation::EdgeUnoriented { edge } => write!(f, "edge {edge} is unoriented"),
            Violation::TooManyColors { used, allowed } => {
                write!(f, "{used} colors used but only {allowed} allowed")
            }
        }
    }
}

/// The outcome of a checker: the list of violations found (empty = valid).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    violations: Vec<Violation>,
}

impl Report {
    /// A report with no violations.
    pub fn clean() -> Self {
        Report::default()
    }

    /// Records a violation.
    pub fn push(&mut self, violation: Violation) {
        self.violations.push(violation);
    }

    /// Returns `true` if no violations were found.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
    }

    /// Panics with a readable message if any violation was found. Intended
    /// for tests.
    #[track_caller]
    pub fn assert_ok(&self) {
        if !self.is_ok() {
            let preview: Vec<String> = self
                .violations
                .iter()
                .take(5)
                .map(ToString::to_string)
                .collect();
            panic!(
                "verification failed with {} violations, first few: {}",
                self.violations.len(),
                preview.join("; ")
            );
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            write!(f, "valid")
        } else {
            write!(f, "{} violations", self.violations.len())
        }
    }
}

/// Checks that no two *colored* adjacent edges share a color.
pub fn check_proper_edge_coloring(graph: &Graph, coloring: &EdgeColoring) -> Report {
    let mut report = Report::clean();
    for v in graph.nodes() {
        let mut seen: std::collections::HashMap<usize, EdgeId> = std::collections::HashMap::new();
        for nb in graph.neighbors(v) {
            if let Some(c) = coloring.color(nb.edge) {
                if let Some(&prev) = seen.get(&c) {
                    if prev != nb.edge {
                        report.push(Violation::AdjacentEdgesShareColor {
                            a: prev,
                            b: nb.edge,
                            color: c,
                        });
                    }
                } else {
                    seen.insert(c, nb.edge);
                }
            }
        }
    }
    report
}

/// Incrementally re-validates a coloring after a mutation/repair batch: only
/// the `touched` edges (and their line-graph neighborhoods) are inspected,
/// in `O(|touched| · Δ)` instead of the full checkers' `O(m)`.
///
/// For every touched edge the checker asserts that it is colored, that its
/// color is below `allowed_palette`, and that no adjacent edge (touched or
/// not) carries the same color. Conflicting pairs are reported once even if
/// both endpoints of the conflict are in `touched`.
///
/// # Contract
///
/// `check_delta` certifies exactly the *delta*: if the pre-batch coloring was
/// valid and every edge whose color changed (or was assigned) since is listed
/// in `touched`, a clean report implies the whole coloring is still valid. A
/// **stale** violation between two edges outside `touched` is out of contract
/// and deliberately not detected — that is what the `O(m)` full checkers are
/// for (see `crates/verify/tests/adversarial.rs`).
pub fn check_delta(
    graph: &Graph,
    coloring: &EdgeColoring,
    touched: &[EdgeId],
    allowed_palette: usize,
) -> Report {
    let mut report = Report::clean();
    let mut seen_pairs: std::collections::HashSet<(EdgeId, EdgeId)> =
        std::collections::HashSet::new();
    for &e in touched {
        let Some(c) = coloring.color(e) else {
            report.push(Violation::EdgeUncolored { edge: e });
            continue;
        };
        if c >= allowed_palette {
            report.push(Violation::TooManyColors {
                used: c + 1,
                allowed: allowed_palette,
            });
        }
        let (u, v) = graph.endpoints(e);
        for nb in graph.neighbors(u).iter().chain(graph.neighbors(v)) {
            if nb.edge == e || coloring.color(nb.edge) != Some(c) {
                continue;
            }
            let key = (e.min(nb.edge), e.max(nb.edge));
            if seen_pairs.insert(key) {
                report.push(Violation::AdjacentEdgesShareColor {
                    a: key.0,
                    b: key.1,
                    color: c,
                });
            }
        }
    }
    report
}

/// Checks that every edge is colored (combine with
/// [`check_proper_edge_coloring`] for a complete proper coloring).
pub fn check_complete(graph: &Graph, coloring: &EdgeColoring) -> Report {
    let mut report = Report::clean();
    for e in graph.edges() {
        if !coloring.is_colored(e) {
            report.push(Violation::EdgeUncolored { edge: e });
        }
    }
    report
}

/// Checks that every colored edge uses a color from its list.
pub fn check_list_compliance(
    graph: &Graph,
    lists: &ListAssignment,
    coloring: &EdgeColoring,
) -> Report {
    let mut report = Report::clean();
    for e in graph.edges() {
        if let Some(c) = coloring.color(e) {
            if !lists.contains(e, c) {
                report.push(Violation::ColorNotInList { edge: e, color: c });
            }
        }
    }
    report
}

/// Checks that the coloring uses at most `allowed` colors (palette size).
pub fn check_palette_size(coloring: &EdgeColoring, allowed: usize) -> Report {
    let mut report = Report::clean();
    let used = coloring.palette_size();
    if used > allowed {
        report.push(Violation::TooManyColors { used, allowed });
    }
    report
}

/// Checks a proper vertex coloring.
pub fn check_proper_vertex_coloring(graph: &Graph, coloring: &VertexColoring) -> Report {
    let mut report = Report::clean();
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        if coloring.color(u) == coloring.color(v) {
            report.push(Violation::AdjacentNodesShareColor {
                a: u,
                b: v,
                color: coloring.color(u),
            });
        }
    }
    report
}

/// Checks a `d`-defective vertex coloring: every node has at most
/// `allowed(v)` neighbors of its own color.
pub fn check_vertex_defect(
    graph: &Graph,
    coloring: &VertexColoring,
    allowed: impl Fn(NodeId) -> f64,
) -> Report {
    let mut report = Report::clean();
    for v in graph.nodes() {
        let defect = coloring.defect(graph, v);
        let bound = allowed(v);
        if (defect as f64) > bound + 1e-9 {
            report.push(Violation::NodeDefectExceeded {
                node: v,
                defect,
                allowed: bound,
            });
        }
    }
    report
}

/// Checks a defective *edge* coloring: every edge has at most `allowed(e)`
/// same-colored adjacent edges.
pub fn check_edge_defect(
    graph: &Graph,
    coloring: &EdgeColoring,
    allowed: impl Fn(EdgeId) -> f64,
) -> Report {
    let mut report = Report::clean();
    for e in graph.edges() {
        if coloring.is_colored(e) {
            let defect = coloring.defect(graph, e);
            let bound = allowed(e);
            if (defect as f64) > bound + 1e-9 {
                report.push(Violation::EdgeDefectExceeded {
                    edge: e,
                    defect,
                    allowed: bound,
                });
            }
        }
    }
    report
}

/// Checks Definition 5.1: a generalized `(1+ε, β)`-relaxed defective 2-edge
/// coloring with per-edge parameters `λ_e`, where `red(e)` says whether edge
/// `e` is red.
pub fn check_relaxed_defective_two_coloring(
    graph: &Graph,
    red: impl Fn(EdgeId) -> bool,
    lambda: impl Fn(EdgeId) -> f64,
    eps: f64,
    beta: f64,
) -> Report {
    let mut report = Report::clean();
    for e in graph.edges() {
        let lam = lambda(e);
        let deg = graph.edge_degree(e) as f64;
        let is_red = red(e);
        let same = graph
            .adjacent_edges(e)
            .into_iter()
            .filter(|&f| red(f) == is_red)
            .count();
        let allowed = if is_red {
            (1.0 + eps) * lam * deg + lam * beta
        } else {
            (1.0 + eps) * (1.0 - lam) * deg + (1.0 - lam) * beta
        };
        if (same as f64) > allowed + 1e-9 {
            report.push(Violation::EdgeDefectExceeded {
                edge: e,
                defect: same,
                allowed,
            });
        }
    }
    report
}

/// Checks Definition 5.2: a generalized `(ε, β)`-balanced edge orientation of
/// a bipartite graph with per-edge parameters `η_e`.
///
/// For every oriented edge `e = (u, v)` with `u ∈ U`, `v ∈ V`:
///
/// * oriented from `u` to `v` (head is `v`): `x_v − x_u ≤ η_e + (1+ε)/2·deg(e) + β`
/// * oriented from `v` to `u` (head is `u`): `x_u − x_v ≤ −η_e + (1+ε)/2·deg(e) + β`
///
/// Unoriented edges are reported via [`Violation::EdgeUnoriented`] when
/// `require_all_oriented` is set.
pub fn check_balanced_orientation(
    bipartite: &BipartiteGraph,
    orientation: &Orientation,
    eta: impl Fn(EdgeId) -> f64,
    eps: f64,
    beta: f64,
    require_all_oriented: bool,
) -> Report {
    let mut report = Report::clean();
    let graph = bipartite.graph();
    for e in graph.edges() {
        let (u, v) = bipartite.endpoints_uv(e);
        match orientation.head(e) {
            None => {
                if require_all_oriented {
                    report.push(Violation::EdgeUnoriented { edge: e });
                }
            }
            Some(head) => {
                let xu = orientation.indegree(u) as i64;
                let xv = orientation.indegree(v) as i64;
                let deg = graph.edge_degree(e) as f64;
                let slack = (1.0 + eps) / 2.0 * deg + beta;
                let (difference, allowed) = if head == v {
                    (xv - xu, eta(e) + slack)
                } else {
                    (xu - xv, -eta(e) + slack)
                };
                if (difference as f64) > allowed + 1e-9 {
                    report.push(Violation::OrientationImbalance {
                        edge: e,
                        difference,
                        allowed,
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;
    use distgraph::Side;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn proper_edge_coloring_detects_conflicts() {
        let g = triangle();
        let mut c = EdgeColoring::empty(3);
        c.set(EdgeId::new(0), 1);
        c.set(EdgeId::new(1), 2);
        c.set(EdgeId::new(2), 3);
        assert!(check_proper_edge_coloring(&g, &c).is_ok());
        c.set(EdgeId::new(2), 2);
        let report = check_proper_edge_coloring(&g, &c);
        assert!(!report.is_ok());
        assert!(matches!(
            report.violations()[0],
            Violation::AdjacentEdgesShareColor { .. }
        ));
    }

    #[test]
    fn completeness_check() {
        let g = triangle();
        let mut c = EdgeColoring::empty(3);
        assert_eq!(check_complete(&g, &c).violations().len(), 3);
        c.set(EdgeId::new(0), 0);
        c.set(EdgeId::new(1), 1);
        c.set(EdgeId::new(2), 2);
        assert!(check_complete(&g, &c).is_ok());
    }

    #[test]
    fn list_compliance_check() {
        let g = triangle();
        let lists = ListAssignment::new(10, vec![vec![1, 2], vec![3], vec![4]]);
        let mut c = EdgeColoring::empty(3);
        c.set(EdgeId::new(0), 2);
        c.set(EdgeId::new(1), 3);
        assert!(check_list_compliance(&g, &lists, &c).is_ok());
        c.set(EdgeId::new(2), 9);
        let report = check_list_compliance(&g, &lists, &c);
        assert_eq!(report.violations().len(), 1);
    }

    #[test]
    fn palette_size_check() {
        let mut c = EdgeColoring::empty(2);
        c.set(EdgeId::new(0), 7);
        assert!(check_palette_size(&c, 8).is_ok());
        assert!(!check_palette_size(&c, 7).is_ok());
    }

    #[test]
    fn vertex_coloring_checks() {
        let g = triangle();
        let proper = VertexColoring::from_vec(vec![0, 1, 2]);
        assert!(check_proper_vertex_coloring(&g, &proper).is_ok());
        let mono = VertexColoring::from_vec(vec![0, 0, 1]);
        assert!(!check_proper_vertex_coloring(&g, &mono).is_ok());
        // defect of the two 0-colored nodes is 1 each
        assert!(check_vertex_defect(&g, &mono, |_| 1.0).is_ok());
        assert!(!check_vertex_defect(&g, &mono, |_| 0.0).is_ok());
    }

    #[test]
    fn edge_defect_check() {
        let g = generators::star(4);
        let mut c = EdgeColoring::empty(4);
        for e in g.edges() {
            c.set(e, 0);
        }
        // all 4 star edges share the center: defect 3 each
        assert!(check_edge_defect(&g, &c, |_| 3.0).is_ok());
        assert!(!check_edge_defect(&g, &c, |_| 2.0).is_ok());
    }

    #[test]
    fn relaxed_defective_two_coloring_check() {
        let bg = generators::complete_bipartite(3, 3);
        let g = bg.graph();
        // color edges red/blue alternating by edge id parity
        let red = |e: EdgeId| e.index().is_multiple_of(2);
        // with λ=1/2, ε=1 and β=deg the bound is generous enough to hold
        let report =
            check_relaxed_defective_two_coloring(g, red, |_| 0.5, 1.0, g.max_edge_degree() as f64);
        assert!(report.is_ok());
        // with λ=0 every red edge is allowed zero red neighbors: must fail
        let report = check_relaxed_defective_two_coloring(g, red, |_| 0.0, 0.0, 0.0);
        assert!(!report.is_ok());
    }

    #[test]
    fn balanced_orientation_check() {
        let bg = generators::complete_bipartite(2, 2);
        let g = bg.graph();
        let mut orientation = Orientation::new(g);
        // orient everything towards the V side: maximally unbalanced
        for e in g.edges() {
            let (_, v) = bg.endpoints_uv(e);
            orientation.orient(g, e, v);
        }
        // with a huge β it passes
        let ok = check_balanced_orientation(&bg, &orientation, |_| 0.0, 0.0, 100.0, true);
        assert!(ok.is_ok());
        // with β = 0 and η = 0 it must fail: x_v − x_u = 2 > (1+0)/2·deg = 1
        let bad = check_balanced_orientation(&bg, &orientation, |_| 0.0, 0.0, 0.0, true);
        assert!(!bad.is_ok());
        // unoriented edges are flagged only when required
        let empty = Orientation::new(g);
        assert!(check_balanced_orientation(&bg, &empty, |_| 0.0, 0.0, 0.0, false).is_ok());
        assert!(!check_balanced_orientation(&bg, &empty, |_| 0.0, 0.0, 0.0, true).is_ok());
        // sanity: sides exist
        assert_eq!(bg.side(NodeId::new(0)), Side::U);
    }

    #[test]
    fn report_merge_display_and_assert() {
        let mut a = Report::clean();
        assert!(a.is_ok());
        assert_eq!(a.to_string(), "valid");
        a.push(Violation::EdgeUncolored {
            edge: EdgeId::new(0),
        });
        let mut b = Report::clean();
        b.merge(a.clone());
        assert_eq!(b.violations().len(), 1);
        assert_eq!(b.to_string(), "1 violations");
        a.assert_ok_should_panic();
    }

    impl Report {
        fn assert_ok_should_panic(&self) {
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.assert_ok()));
            assert!(result.is_err(), "assert_ok should panic on a dirty report");
        }
    }

    #[test]
    fn check_delta_validates_touched_neighborhoods() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut c = EdgeColoring::empty(3);
        c.set(EdgeId::new(0), 0);
        c.set(EdgeId::new(1), 1);
        c.set(EdgeId::new(2), 0);
        assert!(check_delta(&g, &c, &[EdgeId::new(2)], 2).is_ok());
        // A conflict with the touched edge is found from either side.
        c.set(EdgeId::new(2), 1);
        let report = check_delta(&g, &c, &[EdgeId::new(2)], 2);
        assert_eq!(report.violations().len(), 1);
        // Both conflicting edges touched: still reported once.
        let report = check_delta(&g, &c, &[EdgeId::new(1), EdgeId::new(2)], 2);
        assert_eq!(report.violations().len(), 1);
    }

    #[test]
    fn check_delta_flags_uncolored_and_out_of_palette_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut c = EdgeColoring::empty(2);
        let report = check_delta(&g, &c, &[EdgeId::new(0)], 4);
        assert!(matches!(
            report.violations()[0],
            Violation::EdgeUncolored { .. }
        ));
        c.set(EdgeId::new(0), 9);
        let report = check_delta(&g, &c, &[EdgeId::new(0)], 4);
        assert!(matches!(
            report.violations()[0],
            Violation::TooManyColors {
                used: 10,
                allowed: 4
            }
        ));
    }

    #[test]
    fn check_delta_with_empty_touched_set_is_clean() {
        let g = triangle();
        let mono = {
            let mut c = EdgeColoring::empty(3);
            for e in g.edges() {
                c.set(e, 0);
            }
            c
        };
        // Everything conflicts, but nothing is touched: clean by contract.
        assert!(check_delta(&g, &mono, &[], 1).is_ok());
        assert!(!check_proper_edge_coloring(&g, &mono).is_ok());
    }

    #[test]
    fn violation_display_messages() {
        let samples = [
            Violation::AdjacentEdgesShareColor {
                a: EdgeId::new(0),
                b: EdgeId::new(1),
                color: 2,
            },
            Violation::EdgeUncolored {
                edge: EdgeId::new(3),
            },
            Violation::ColorNotInList {
                edge: EdgeId::new(4),
                color: 5,
            },
            Violation::AdjacentNodesShareColor {
                a: NodeId::new(0),
                b: NodeId::new(1),
                color: 0,
            },
            Violation::NodeDefectExceeded {
                node: NodeId::new(2),
                defect: 3,
                allowed: 1.0,
            },
            Violation::EdgeDefectExceeded {
                edge: EdgeId::new(2),
                defect: 3,
                allowed: 1.0,
            },
            Violation::OrientationImbalance {
                edge: EdgeId::new(2),
                difference: 3,
                allowed: 1.0,
            },
            Violation::EdgeUnoriented {
                edge: EdgeId::new(2),
            },
            Violation::TooManyColors {
                used: 9,
                allowed: 3,
            },
        ];
        for v in samples {
            assert!(!v.to_string().is_empty());
        }
    }
}
