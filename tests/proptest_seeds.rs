//! CI check for the failure-persistence contract of the property suites.
//!
//! Every test file that declares properties with a proptest block must carry a
//! committed `proptest-regressions/<stem>.txt` seed file next to it: the
//! offline proptest stand-in persists new counterexamples there (and
//! replays them first on every later run), so an adversarial case found
//! once — on any machine, in any CI run — keeps reproducing everywhere.
//! A missing seed file means a new property suite was added without wiring
//! it into that contract; a seed file with unparseable `cc` lines means
//! the replay path silently stopped working.

use std::path::{Path, PathBuf};

/// All Rust test files of the workspace (crate `tests/` dirs plus the
/// workspace-level `tests/`).
fn test_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut dirs = vec![root.join("tests")];
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for entry in entries.flatten() {
            dirs.push(entry.path().join("tests"));
        }
    }
    for dir in dirs {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

#[test]
fn every_property_suite_has_a_committed_seed_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut property_suites = 0usize;
    let mut missing: Vec<String> = Vec::new();
    for file in test_files(root) {
        let content = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        // Match the macro invocation itself — built at runtime so this
        // checker's own source (which must name the pattern somehow) does
        // not match it.
        let needle = concat!("proptest", "!").to_string() + " {";
        if !content.contains(&needle) {
            continue;
        }
        property_suites += 1;
        let seeds = file
            .parent()
            .expect("test files live in a directory")
            .join("proptest-regressions")
            .join(file.file_stem().expect("rs files have a stem"))
            .with_extension("txt");
        if !seeds.exists() {
            missing.push(format!("{} (expected {})", file.display(), seeds.display()));
        }
    }
    assert!(
        missing.is_empty(),
        "property suites without a committed proptest-regressions seed file:\n{}",
        missing.join("\n")
    );
    // The walker genuinely found the batteries; zero would mean it broke.
    assert!(
        property_suites >= 10,
        "only {property_suites} property suites found — walker broken?"
    );
}

#[test]
fn committed_seed_files_are_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0usize;
    for file in test_files(root) {
        let dir = file.parent().unwrap().join("proptest-regressions");
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "txt") {
                continue;
            }
            checked += 1;
            let content = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            for (lineno, line) in content.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                // Every non-comment line must be a replayable entry:
                // `cc <test path> case <index>`.
                let valid = line
                    .strip_prefix("cc ")
                    .and_then(|rest| rest.rsplit_once(" case "))
                    .is_some_and(|(name, case)| {
                        !name.trim().is_empty() && case.trim().parse::<u32>().is_ok()
                    });
                assert!(
                    valid,
                    "{}:{}: unparseable seed line `{line}` — the replay path would skip it",
                    path.display(),
                    lineno + 1
                );
            }
        }
        // Only visit each proptest-regressions dir once per test dir; the
        // outer loop may hand us siblings of the same parent repeatedly,
        // but re-checking is cheap and keeps the walker simple.
    }
    assert!(
        checked >= 5,
        "only {checked} seed files checked — committed files missing?"
    );
}
