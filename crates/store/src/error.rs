//! The typed error surface of the snapshot layer.
//!
//! Every way a snapshot can be malformed — truncated file, flipped magic,
//! stale version, forged checksum, misaligned or out-of-bounds section,
//! semantically corrupt payload — maps to a distinct [`SnapshotError`]
//! variant. The load path never panics on untrusted bytes; the corruption
//! proptests in `tests/` feed mutated snapshots through [`crate::Snapshot::open`]
//! and assert exactly this.

use distgraph::GraphError;
use std::fmt;
use std::io;

/// Renders a 4-byte section tag for error messages (`OFFS`, `COLR`, ...).
pub(crate) fn tag_name(tag: [u8; 4]) -> String {
    tag.iter()
        .map(|&b| {
            if b.is_ascii_graphic() {
                char::from(b)
            } else {
                '?'
            }
        })
        .collect()
}

/// Errors produced while encoding, opening or materializing snapshots, or
/// while parsing text edge lists.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file does not start with the `DSTSNAP\0` magic bytes.
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// The buffer ends before a structure that must be present.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
        /// Bytes needed to read it.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A section-table entry points outside the file.
    SectionOutOfBounds {
        /// The section's tag.
        tag: String,
        /// Section byte offset from the start of the file.
        offset: u64,
        /// Section byte length.
        len: u64,
        /// Total file length.
        file_len: u64,
    },
    /// A section's payload does not hash to the checksum in the table.
    ChecksumMismatch {
        /// The section's tag.
        tag: String,
    },
    /// A section's byte length is impossible for its element type, e.g. a
    /// `u32` array section whose length is not a multiple of 4.
    MisalignedSection {
        /// The section's tag.
        tag: String,
        /// The offending byte length.
        len: u64,
    },
    /// A section required by the header flags (or unconditionally) is absent.
    MissingSection {
        /// The missing section's tag.
        tag: String,
    },
    /// The same section tag appears twice in the section table.
    DuplicateSection {
        /// The repeated tag.
        tag: String,
    },
    /// A section decodes but its contents violate a structural invariant.
    CorruptSection {
        /// The section's tag.
        tag: String,
        /// Human-readable description of the first violated invariant.
        detail: String,
    },
    /// Materializing graph structures out of valid-looking sections failed
    /// the graph crate's own validation.
    Graph(GraphError),
    /// An underlying filesystem error.
    Io(io::Error),
    /// A text edge-list line failed to parse.
    Text {
        /// 1-based line number.
        line: usize,
        /// What was wrong with the line.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => {
                write!(f, "not a snapshot: missing DSTSNAP magic bytes")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} is newer than the supported version {supported}"
            ),
            SnapshotError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "snapshot truncated reading {what}: need {needed} bytes, have {available}"
            ),
            SnapshotError::SectionOutOfBounds {
                tag,
                offset,
                len,
                file_len,
            } => write!(
                f,
                "section {tag} at offset {offset} with length {len} exceeds the {file_len}-byte file"
            ),
            SnapshotError::ChecksumMismatch { tag } => {
                write!(f, "section {tag} failed its checksum")
            }
            SnapshotError::MisalignedSection { tag, len } => write!(
                f,
                "section {tag} has byte length {len}, not a whole number of elements"
            ),
            SnapshotError::MissingSection { tag } => {
                write!(f, "required section {tag} is missing")
            }
            SnapshotError::DuplicateSection { tag } => {
                write!(f, "section {tag} appears more than once")
            }
            SnapshotError::CorruptSection { tag, detail } => {
                write!(f, "section {tag} is corrupt: {detail}")
            }
            SnapshotError::Graph(e) => write!(f, "snapshot payload rejected: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Text { line, detail } => {
                write!(f, "edge list parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Graph(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SnapshotError {
    fn from(e: GraphError) -> Self {
        SnapshotError::Graph(e)
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let cases: Vec<(SnapshotError, &str)> = vec![
            (SnapshotError::BadMagic, "DSTSNAP"),
            (
                SnapshotError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (
                SnapshotError::Truncated {
                    what: "header",
                    needed: 16,
                    available: 3,
                },
                "need 16 bytes, have 3",
            ),
            (
                SnapshotError::ChecksumMismatch {
                    tag: "OFFS".to_string(),
                },
                "OFFS failed its checksum",
            ),
            (
                SnapshotError::MisalignedSection {
                    tag: "ADJN".to_string(),
                    len: 7,
                },
                "byte length 7",
            ),
            (
                SnapshotError::Text {
                    line: 4,
                    detail: "bad".to_string(),
                },
                "line 4",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn tag_names_replace_non_ascii() {
        assert_eq!(tag_name(*b"OFFS"), "OFFS");
        assert_eq!(tag_name([b'A', 0, 0xFF, b'Z']), "A??Z");
    }
}
