//! The self-stabilization battery: post-fault repair must be
//! checker-equivalent to a from-scratch coloring.
//!
//! Closes the loop between the fault adversary (`distsim::faults`) and the
//! coloring layer (`edgecolor::stabilize`): after seed-driven corruption —
//! the stale-color state crashes, drops and severed shard links leave
//! behind — [`SelfStabilizing`] must detect every conflict in the suspect
//! neighborhood and heal the coloring to the *same guarantees* a
//! from-scratch `color_edges_local` run gives on the identical graph
//! (proper, complete, within the `2Δ − 1` budget), across the whole seeded
//! generator matrix and under every execution policy.

use distgraph::generators::{self, Family, UpdateScenario, UpdateStream};
use distgraph::{DynamicGraph, Graph};
use distsim::{ExecutionPolicy, IdAssignment};
use edgecolor::{color_edges_local, default_palette, ColoringParams, Recoloring, SelfStabilizing};
use edgecolor_verify::{
    check_complete, check_delta, check_palette_size, check_proper_edge_coloring,
};

/// The seeded generator matrix (mirrors `tests/differential.rs`).
fn matrix() -> Vec<(String, Graph)> {
    let mut graphs = Vec::new();
    for family in [
        Family::RegularBipartite,
        Family::ErdosRenyi,
        Family::PowerLaw,
        Family::GridTorus,
        Family::RandomTree,
    ] {
        for seed in [3u64, 17] {
            let g = family.generate(96, 6, seed);
            if g.m() > 0 {
                graphs.push((format!("{}(seed {seed})", family.name()), g));
            }
        }
    }
    graphs
}

#[test]
fn stabilized_colorings_are_checker_equivalent_to_from_scratch() {
    let params = ColoringParams::new(0.5);
    for (name, g) in matrix() {
        let ids = IdAssignment::scattered(g.n(), 7);
        let dg = DynamicGraph::from_graph(g.clone());
        let (rec, _) = Recoloring::color_initial(&dg, &ids, &params)
            .unwrap_or_else(|e| panic!("{name}: initial coloring failed: {e}"));
        let palette = rec.palette();
        let mut session = SelfStabilizing::new(rec);

        // Adversarial corruption proportional to the graph (≥ 4 edges).
        let count = (g.m() / 10).max(4);
        let touched = session.inject_corruption(dg.graph(), 0xFA_017 ^ g.m() as u64, count);
        assert!(!touched.is_empty(), "{name}: nothing corrupted");
        let report = session
            .stabilize(&dg, &touched, &ids, &params)
            .unwrap_or_else(|e| panic!("{name}: stabilize failed: {e}"));
        assert!(
            report.conflicts_found > 0,
            "{name}: corruption of {count} edges produced no detectable conflict"
        );

        // The healed coloring passes the exact checker suite a
        // from-scratch run passes, with the same palette bound.
        let scratch = color_edges_local(&g, &ids, &params)
            .unwrap_or_else(|e| panic!("{name}: from-scratch failed: {e}"));
        for (which, coloring) in [
            ("stabilized", session.coloring()),
            ("from-scratch", &scratch.coloring),
        ] {
            let proper = check_proper_edge_coloring(&g, coloring);
            assert!(proper.is_ok(), "{name}/{which}: improper: {proper}");
            let complete = check_complete(&g, coloring);
            assert!(complete.is_ok(), "{name}/{which}: incomplete: {complete}");
            let budget = check_palette_size(coloring, palette);
            assert!(budget.is_ok(), "{name}/{which}: palette: {budget}");
        }

        // The repair's own incremental certificate is clean.
        check_delta(&g, session.coloring(), &report.touched, palette).assert_ok();
    }
}

#[test]
fn stabilization_is_bit_identical_across_policies() {
    let g = generators::grid_torus(10, 10);
    let seeds = (0xBAD_5EED, 14usize);
    let run = |policy: ExecutionPolicy| {
        let params = ColoringParams::new(0.5).with_policy(policy);
        let ids = IdAssignment::scattered(g.n(), 9);
        let dg = DynamicGraph::from_graph(g.clone());
        let (rec, _) = Recoloring::color_initial(&dg, &ids, &params).unwrap();
        let mut session = SelfStabilizing::new(rec);
        let touched = session.inject_corruption(dg.graph(), seeds.0, seeds.1);
        let report = session.stabilize(&dg, &touched, &ids, &params).unwrap();
        (session.coloring().clone(), touched, report)
    };
    let (seq_coloring, seq_touched, seq_report) = run(ExecutionPolicy::Sequential);
    assert!(seq_report.conflicts_found > 0);
    for policy in [
        ExecutionPolicy::parallel(2),
        ExecutionPolicy::parallel(8),
        ExecutionPolicy::sharded(2, 2),
        ExecutionPolicy::sharded(4, 2),
        ExecutionPolicy::sharded(8, 3),
    ] {
        let (coloring, touched, report) = run(policy);
        assert_eq!(touched, seq_touched, "corruption diverged at {policy}");
        assert_eq!(
            coloring, seq_coloring,
            "healed coloring diverged at {policy}"
        );
        assert_eq!(
            report.repaired_edges, seq_report.repaired_edges,
            "repair size diverged at {policy}"
        );
        assert_eq!(
            report.metrics, seq_report.metrics,
            "repair rounds diverged at {policy}"
        );
    }
}

#[test]
fn stabilization_composes_with_dynamic_repair() {
    // Faults and churn interleave: mutate → repair → corrupt → stabilize,
    // repeatedly; the maintained coloring must stay checker-clean after
    // every cycle against the *current* graph.
    let g = generators::grid_torus(8, 8);
    let params = ColoringParams::new(0.5);
    let ids = IdAssignment::scattered(g.n(), 3);
    let mut dg = DynamicGraph::from_graph(g.clone());
    let budget = default_palette(g.max_degree() + 2);
    let (rec, _) = Recoloring::with_budget(&dg, &ids, &params, budget).unwrap();
    let mut session = SelfStabilizing::new(rec);
    let mut stream = UpdateStream::new(
        g,
        UpdateScenario::Churn {
            inserts: 4,
            deletes: 4,
        },
        21,
    );
    let mut stabilized_any = false;
    for cycle in 0..6u64 {
        // Churn batch + local repair (the PR 3 pipeline) — via the wrapped
        // session's recoloring by rebuilding the wrapper around it.
        let batch = stream.next_batch();
        let diff = dg.apply(&batch).expect("stream batches are valid");
        let mut rec = session.recoloring().clone();
        rec.repair(&dg, &diff, &ids, &params).expect("repairable");
        session = SelfStabilizing::new(rec);
        // Fault corruption + stabilization.
        let touched = session.inject_corruption(dg.graph(), 1000 + cycle, 6);
        let report = session.stabilize(&dg, &touched, &ids, &params).unwrap();
        stabilized_any |= report.conflicts_found > 0;
        check_proper_edge_coloring(dg.graph(), session.coloring()).assert_ok();
        check_complete(dg.graph(), session.coloring()).assert_ok();
        check_palette_size(session.coloring(), session.palette()).assert_ok();
    }
    assert!(stabilized_any, "six corruption cycles never conflicted");
    assert_eq!(dg.graph(), stream.graph());
}
