//! The greedy BFS-grown, edge-balanced edge-cut partitioner.
//!
//! The partitioner assigns every node to one of `k` shards. Edge ownership is
//! derived from the node assignment: an edge belongs to the *smaller* of its
//! two endpoint shards ([`Partition::owner`]), so every edge lands in exactly
//! one shard and the owned-edge sets of the shards partition the edge set.
//!
//! Shards are grown one at a time by breadth-first search from the smallest
//! still-unassigned node, which keeps each shard connected (per component)
//! and the cut small on mesh-like topologies. Balance is controlled on the
//! *edge* mass: shard `s` stops growing once it owns
//! `⌈remaining edges / remaining shards⌉` edges, which yields the guarantee
//! checked by `tests/partition_props.rs`:
//!
//! > every shard owns at most `⌈m/k⌉ + Δ` edges,
//!
//! because closing a shard can overshoot its target by at most the
//! unassigned-degree of the final node, and the adaptive targets are
//! non-increasing across shards.

use distgraph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// An assignment of every node of a graph to one of `k` shards.
///
/// The assignment is pure data — it can come from [`bfs_partition`], from
/// [`Partition::contiguous`], or from any external placement — and all
/// derived structure ([`crate::ShardedGraph`], [`PartitionReport`]) is
/// computed from it deterministically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `shard_of[v]` is the shard of node `v`; every value is `< shards`.
    shard_of: Vec<u32>,
    /// Number of shards `k ≥ 1`.
    shards: usize,
}

impl Partition {
    /// Wraps a raw node→shard assignment.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or any entry of `shard_of` is `≥ shards`.
    pub fn new(shard_of: Vec<u32>, shards: usize) -> Self {
        assert!(shards >= 1, "a partition needs at least one shard");
        assert!(
            shard_of.iter().all(|&s| (s as usize) < shards),
            "shard assignment out of range"
        );
        Partition { shard_of, shards }
    }

    /// The trivial balanced partition: contiguous node ranges of near-equal
    /// size, in index order. Used as the fallback for edgeless graphs and as
    /// the reference layout in tests.
    pub fn contiguous(n: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let base = n / shards;
        let long = n % shards;
        let mut shard_of = Vec::with_capacity(n);
        for s in 0..shards {
            let len = base + usize::from(s < long);
            shard_of.extend(std::iter::repeat_n(s as u32, len));
        }
        Partition { shard_of, shards }
    }

    /// Number of shards `k`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes covered by the assignment.
    pub fn n(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard of node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// The raw node→shard assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.shard_of
    }

    /// The shard that owns edge `e` of `graph`: the smaller of its two
    /// endpoint shards. This rule makes edge ownership a pure function of the
    /// node assignment, so every edge lands in exactly one shard.
    #[inline]
    pub fn owner(&self, graph: &Graph, e: distgraph::EdgeId) -> usize {
        let (u, v) = graph.endpoints(e);
        self.shard_of(u).min(self.shard_of(v))
    }

    /// The normalized (smaller shard first) shard pair edge `e` crosses, or
    /// `None` for a shard-internal edge. This is the key the fault layer's
    /// shard-link partitions sever messages by: a link cut `(a, b)` loses
    /// exactly the traffic of the edges whose `crossing_pair` is `(a, b)`
    /// while the cut is open, and that traffic flows again once it heals.
    #[inline]
    pub fn crossing_pair(&self, graph: &Graph, e: distgraph::EdgeId) -> Option<(usize, usize)> {
        let (u, v) = graph.endpoints(e);
        let (su, sv) = (self.shard_of(u), self.shard_of(v));
        if su == sv {
            None
        } else {
            Some((su.min(sv), su.max(sv)))
        }
    }

    /// Computes the quality report of this partition for `graph`.
    pub fn report(&self, graph: &Graph) -> PartitionReport {
        assert_eq!(self.n(), graph.n(), "partition covers a different graph");
        let mut shard_nodes = vec![0usize; self.shards];
        for &s in &self.shard_of {
            shard_nodes[s as usize] += 1;
        }
        let mut shard_owned_edges = vec![0usize; self.shards];
        let mut cut_edges = 0usize;
        for e in graph.edges() {
            let (u, v) = graph.endpoints(e);
            let (su, sv) = (self.shard_of(u), self.shard_of(v));
            shard_owned_edges[su.min(sv)] += 1;
            if su != sv {
                cut_edges += 1;
            }
        }
        let m = graph.m();
        let max_owned = shard_owned_edges.iter().copied().max().unwrap_or(0);
        let balance_factor = if m == 0 {
            1.0
        } else {
            max_owned as f64 / (m as f64 / self.shards as f64)
        };
        PartitionReport {
            shards: self.shards,
            n: graph.n(),
            m,
            cut_edges,
            cut_fraction: if m == 0 {
                0.0
            } else {
                cut_edges as f64 / m as f64
            },
            balance_factor,
            shard_nodes,
            shard_owned_edges,
        }
    }
}

/// The machine-readable quality report of a [`Partition`] — the numbers the
/// `SHARD` bench experiment records (see `docs/BENCH_SCHEMA.md`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionReport {
    /// Number of shards `k`.
    pub shards: usize,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Number of edges whose endpoints live in different shards.
    pub cut_edges: usize,
    /// `cut_edges / m` (0 for an edgeless graph). Every cut edge carries
    /// cross-shard messages in both directions each round, so this is the
    /// fraction of round traffic that must cross shard boundaries.
    pub cut_fraction: f64,
    /// `max owned edges per shard / (m / k)` — 1.0 is perfect edge balance.
    pub balance_factor: f64,
    /// Nodes per shard.
    pub shard_nodes: Vec<usize>,
    /// Owned edges per shard (sums to `m`; ownership per
    /// [`Partition::owner`]).
    pub shard_owned_edges: Vec<usize>,
}

/// Partitions `graph` into `shards` edge-balanced shards by greedy BFS
/// growth (see `crates/shard/src/partition.rs`'s module docs for the
/// guarantees).
///
/// Deterministic: seeds are the smallest unassigned nodes, BFS visits
/// neighbors in the graph's sorted adjacency order, and isolated nodes are
/// distributed round-robin at the end. Edgeless graphs fall back to
/// [`Partition::contiguous`].
pub fn bfs_partition(graph: &Graph, shards: usize) -> Partition {
    let shards = shards.max(1);
    let n = graph.n();
    let m = graph.m();
    if m == 0 || shards == 1 {
        return Partition::contiguous(n, shards);
    }

    const UNASSIGNED: u32 = u32::MAX;
    let mut shard_of = vec![UNASSIGNED; n];
    let mut remaining_edges = m;
    // Rotating cursor over node ids: every node left of it with positive
    // degree is already assigned, making reseeding O(n) total.
    let mut seed_cursor = 0usize;
    let mut queue = std::collections::VecDeque::new();

    for s in 0..shards {
        let remaining_shards = shards - s;
        // Adaptive edge target: never above ⌈m/k⌉ because earlier shards
        // meet (or exceed) their own targets.
        let target = remaining_edges.div_ceil(remaining_shards);
        let mut owned = 0usize;
        let last = s + 1 == shards;
        queue.clear();

        while last || owned < target {
            let v = match queue.pop_front() {
                Some(v) => v,
                None => {
                    // Reseed from the smallest unassigned node that has
                    // degree > 0 (isolated nodes are placed afterwards).
                    while seed_cursor < n
                        && (shard_of[seed_cursor] != UNASSIGNED
                            || graph.degree(NodeId::new(seed_cursor)) == 0)
                    {
                        seed_cursor += 1;
                    }
                    if seed_cursor == n {
                        break;
                    }
                    NodeId::new(seed_cursor)
                }
            };
            if shard_of[v.index()] != UNASSIGNED {
                continue;
            }
            shard_of[v.index()] = s as u32;
            for nb in graph.neighbors(v) {
                if shard_of[nb.node.index()] == UNASSIGNED {
                    // `v` is the first-assigned endpoint, so shard `s` owns
                    // this edge (the neighbor's shard can only be ≥ s).
                    owned += 1;
                    queue.push_back(nb.node);
                }
            }
        }
        remaining_edges -= owned.min(remaining_edges);
    }

    // Isolated nodes (and nothing else) are still unassigned: spread them
    // round-robin in index order.
    let mut next = 0u32;
    for slot in shard_of.iter_mut() {
        if *slot == UNASSIGNED {
            *slot = next;
            next = (next + 1) % shards as u32;
        }
    }
    Partition::new(shard_of, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;

    #[test]
    fn contiguous_partition_is_balanced() {
        let p = Partition::contiguous(10, 4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.n(), 10);
        let mut counts = vec![0usize; 4];
        for v in 0..10 {
            counts[p.shard_of(NodeId::new(v))] += 1;
        }
        assert_eq!(counts, vec![3, 3, 2, 2]);
        // Contiguous: shard indices are non-decreasing in node order.
        let a = p.assignment();
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bfs_partition_covers_all_nodes_and_edges() {
        let g = generators::grid_torus(10, 10);
        let p = bfs_partition(&g, 4);
        let report = p.report(&g);
        assert_eq!(report.shard_nodes.iter().sum::<usize>(), g.n());
        assert_eq!(report.shard_owned_edges.iter().sum::<usize>(), g.m());
        assert_eq!(report.m, g.m());
    }

    #[test]
    fn bfs_partition_balance_bound_holds() {
        for (g, k) in [
            (generators::grid_torus(10, 10), 4),
            (generators::grid_torus(7, 9), 3),
            (generators::random_regular(64, 6, 11).unwrap(), 8),
            (generators::power_law(200, 2.5, 16, 3), 5),
        ] {
            let p = bfs_partition(&g, k);
            let report = p.report(&g);
            let bound = g.m().div_ceil(k) + g.max_degree();
            let max_owned = report.shard_owned_edges.iter().copied().max().unwrap();
            assert!(
                max_owned <= bound,
                "max owned {max_owned} > bound {bound} for k={k}"
            );
        }
    }

    #[test]
    fn bfs_partition_cut_is_small_on_a_torus() {
        // A 2D torus has excellent locality: BFS growth keeps the vast
        // majority of edges internal.
        let g = generators::grid_torus(20, 20);
        let p = bfs_partition(&g, 4);
        let report = p.report(&g);
        assert!(
            report.cut_fraction < 0.25,
            "cut fraction {} too large",
            report.cut_fraction
        );
        assert!(report.balance_factor >= 1.0);
    }

    #[test]
    fn edgeless_graph_falls_back_to_contiguous() {
        let g = Graph::from_edges(9, &[]).unwrap();
        let p = bfs_partition(&g, 3);
        assert_eq!(p, Partition::contiguous(9, 3));
        let report = p.report(&g);
        assert_eq!(report.cut_edges, 0);
        assert_eq!(report.cut_fraction, 0.0);
        assert_eq!(report.balance_factor, 1.0);
    }

    #[test]
    fn isolated_nodes_are_spread_round_robin() {
        // Nodes 4..9 are isolated; they must not all pile into shard 0.
        let g = Graph::from_edges(9, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let p = bfs_partition(&g, 3);
        let report = p.report(&g);
        assert_eq!(report.shard_nodes.iter().sum::<usize>(), 9);
        assert!(report.shard_nodes.iter().all(|&c| c >= 1));
    }

    #[test]
    fn single_shard_owns_everything() {
        let g = generators::cycle(12);
        let p = bfs_partition(&g, 1);
        let report = p.report(&g);
        assert_eq!(report.cut_edges, 0);
        assert_eq!(report.shard_owned_edges, vec![g.m()]);
        assert_eq!(report.balance_factor, 1.0);
    }

    #[test]
    fn more_shards_than_nodes_is_fine() {
        let g = generators::path(3);
        let p = bfs_partition(&g, 8);
        let report = p.report(&g);
        assert_eq!(report.shard_nodes.iter().sum::<usize>(), 3);
        assert_eq!(report.shard_owned_edges.iter().sum::<usize>(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_assignment_is_rejected() {
        Partition::new(vec![0, 3], 3);
    }

    #[test]
    fn owner_is_min_endpoint_shard() {
        let g = generators::path(4); // 0-1-2-3
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.owner(&g, distgraph::EdgeId::new(0)), 0); // (0,1) internal
        assert_eq!(p.owner(&g, distgraph::EdgeId::new(1)), 0); // (1,2) cut → min
        assert_eq!(p.owner(&g, distgraph::EdgeId::new(2)), 1); // (2,3) internal
        let report = p.report(&g);
        assert_eq!(report.cut_edges, 1);
    }
}
