//! Property-based tests for the graph substrate.

use distgraph::{generators, EdgeColoring, Graph, ListAssignment, Side, VertexColoring};
use proptest::prelude::*;

/// Strategy producing a random simple graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(120)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(key);
                }
            }
            Graph::from_edges(n, &edges).expect("sanitized edges are valid")
        })
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        prop_assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn edge_degree_formula(g in arb_graph()) {
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert_eq!(g.edge_degree(e), g.degree(u) + g.degree(v) - 2);
            prop_assert_eq!(g.adjacent_edges(e).len(), g.edge_degree(e));
        }
    }

    #[test]
    fn max_edge_degree_bound(g in arb_graph()) {
        // Δ̄ ≤ 2Δ − 2 whenever the graph has an edge (Section 2 of the paper).
        if g.m() > 0 {
            prop_assert!(g.max_edge_degree() <= 2 * g.max_degree() - 2);
        }
    }

    #[test]
    fn edge_between_is_symmetric_and_consistent(g in arb_graph()) {
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert_eq!(g.edge_between(u, v), Some(e));
            prop_assert_eq!(g.edge_between(v, u), Some(e));
            prop_assert_eq!(g.other_endpoint(e, u), v);
            prop_assert_eq!(g.other_endpoint(e, v), u);
        }
    }

    #[test]
    fn bipartition_is_proper_when_found(g in arb_graph()) {
        if let Some(sides) = g.bipartition() {
            for e in g.edges() {
                let (u, v) = g.endpoints(e);
                prop_assert_ne!(sides[u.index()], sides[v.index()]);
            }
        }
    }

    #[test]
    fn subgraph_degrees_never_increase(g in arb_graph()) {
        let (sub, map) = g.edge_subgraph(|e| e.index() % 2 == 0);
        prop_assert_eq!(sub.n(), g.n());
        prop_assert!(sub.m() <= g.m());
        for v in sub.nodes() {
            prop_assert!(sub.degree(v) <= g.degree(v));
        }
        for (new_idx, orig) in map.iter().enumerate() {
            let (a, b) = sub.endpoints(distgraph::EdgeId::new(new_idx));
            let (oa, ob) = g.endpoints(*orig);
            prop_assert_eq!((a, b), (oa, ob));
        }
    }

    #[test]
    fn degree_plus_one_lists_always_satisfy_invariant(g in arb_graph()) {
        let lists = ListAssignment::degree_plus_one(&g);
        prop_assert!(lists.is_degree_plus_one(&g));
        for e in g.edges() {
            prop_assert!(lists.list_size(e) > g.edge_degree(e));
        }
    }

    #[test]
    fn identity_vertex_coloring_is_proper(g in arb_graph()) {
        let coloring = VertexColoring::from_vec((0..g.n()).collect());
        prop_assert!(coloring.is_proper(&g));
        prop_assert_eq!(coloring.max_defect(&g), 0);
    }

    #[test]
    fn monochromatic_edge_coloring_defect_equals_edge_degree(g in arb_graph()) {
        let mut coloring = EdgeColoring::empty(g.m());
        for e in g.edges() {
            coloring.set(e, 0);
        }
        for e in g.edges() {
            prop_assert_eq!(coloring.defect(&g, e), g.edge_degree(e));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn regular_bipartite_generator_is_regular(n in 4usize..24, d in 1usize..6, seed in 0u64..1000) {
        let d = d.min(n);
        let bg = generators::regular_bipartite(n, d, seed).unwrap();
        let g = bg.graph();
        prop_assert_eq!(g.n(), 2 * n);
        prop_assert_eq!(g.m(), n * d);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), d);
        }
        for e in g.edges() {
            let (u, v) = bg.endpoints_uv(e);
            prop_assert_eq!(bg.side(u), Side::U);
            prop_assert_eq!(bg.side(v), Side::V);
        }
    }

    #[test]
    fn random_regular_generator_respects_degree_bound(n in 6usize..40, d in 2usize..6, seed in 0u64..1000) {
        let d = d.min(n - 1);
        if n * d % 2 == 1 {
            return Ok(());
        }
        let g = generators::random_regular(n, d, seed).unwrap();
        prop_assert!(g.max_degree() <= d);
    }

    #[test]
    fn trees_are_connected_and_acyclic(n in 2usize..128, seed in 0u64..1000) {
        let g = generators::random_tree(n, seed);
        prop_assert_eq!(g.m(), n - 1);
        prop_assert_eq!(g.connected_components(), 1);
    }
}
