//! # distsim
//!
//! A synchronous-round simulator for the LOCAL and CONGEST models of
//! distributed computing (Section 2 of *Distributed Edge Coloring in Time
//! Polylogarithmic in Δ*, PODC 2022).
//!
//! Two execution layers are provided:
//!
//! * [`Network`] — the orchestrated layer: algorithms call
//!   [`Network::exchange`]/[`Network::broadcast`] once per communication
//!   round; the network delivers messages, charges rounds and accounts
//!   message sizes (flagging CONGEST violations). The composed coloring
//!   algorithms of the `edgecolor` crate run on this layer.
//! * [`NodeProgram`]/[`run_program`] — the strict layer: one state machine
//!   per node, seeing only its own port-numbered neighborhood, its unique
//!   identifier, `n` and `Δ`. Unit algorithms (flooding, BFS, the token
//!   dropping phases) are implemented against this layer to demonstrate
//!   locality.
//!
//! Both layers execute rounds under an [`ExecutionPolicy`]: the default
//! `Sequential` walks all nodes on one thread, while `Parallel { threads }`
//! runs each round's per-node work on a scoped worker pool over contiguous
//! node chunks ([`Network::with_policy`], [`run_program_with`]). Because a
//! node's round action depends only on its own state and inbox, the parallel
//! engine merges per-chunk messages and metrics deterministically and its
//! results are bit-identical to the sequential path at any thread count.
//!
//! The third policy, `Sharded { shards, threads }`, runs rounds on the
//! partitioned substrate of the [`distshard`] crate: the graph is split into
//! edge-balanced shards by a BFS-grown edge-cut partitioner, each round's
//! per-node work runs shard-locally, and only the messages crossing a shard
//! boundary move between shards — coalesced into one buffer per shard pair
//! per round by a `ShardRouter`. The determinism contract is unchanged
//! (bit-identical to `Sequential` at every shard/thread count); the
//! cross-shard traffic is observable through [`Network::shard_state`] and
//! [`ProgramRun::shard`].
//!
//! Both layers can additionally run under a seed-driven **fault adversary**
//! ([`faults`]): message drops/duplicates/delays with per-edge rates, node
//! crash/restart windows, and shard-link partitions that heal, plus the
//! [`AsyncScheduler`]'s adversarial message reordering. Same seed + same
//! [`FaultPlan`] ⇒ bit-identical run under every execution policy
//! ([`Network::install_faults`], [`run_program_under_faults`]).
//!
//! # Examples
//!
//! ```
//! use distgraph::generators;
//! use distsim::{Model, Network};
//!
//! let g = generators::cycle(6);
//! let mut net = Network::new(&g, Model::Local);
//! // One round in which every node tells its neighbors its degree.
//! let mail = net.broadcast(|v| g.degree(v) as u64);
//! assert_eq!(net.rounds(), 1);
//! assert_eq!(mail.inbox(distgraph::NodeId::new(0)).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
pub mod faults;
mod identifiers;
mod ledger;
mod metrics;
mod model;
mod network;
mod payload;
mod program;

pub use executor::{
    for_each_chunk_mut, for_each_chunk_mut_in, host_parallelism, map_chunks, map_chunks_with,
    map_node_chunks, Chunks, ExecutionPolicy,
};
pub use faults::{AsyncScheduler, CrashWindow, FaultPlan, FaultRates, FaultStats, LinkPartition};
pub use identifiers::IdAssignment;
pub use ledger::{LedgerEntry, LedgerSummaryRow, RoundLedger};
pub use metrics::Metrics;
pub use model::Model;
pub use network::{Incoming, Mailboxes, Network, ShardState};
pub use payload::{bits_for, Payload};
pub use program::{
    run_program, run_program_under_faults, run_program_with, NodeCtx, NodeProgram, ProgramRun,
    ShardRunStats, Step,
};
