//! The LOCAL and CONGEST models (Section 2 of the paper).

use serde::{Deserialize, Serialize};

/// The communication model under which an execution is accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Model {
    /// The LOCAL model: unbounded message size and local computation.
    #[default]
    Local,
    /// The CONGEST model: every message is limited to `bandwidth_bits` bits.
    ///
    /// The paper (and the literature) use `O(log n)`; use
    /// [`Model::congest_for`] to get the conventional `c · ⌈log₂ n⌉` limit.
    Congest {
        /// Maximum message size in bits.
        bandwidth_bits: u64,
    },
}

impl Model {
    /// The conventional CONGEST model for an `n`-node network:
    /// messages of at most `c · ⌈log₂(n+1)⌉` bits with `c = 32`
    /// (a message can carry a constant number of identifiers/counters).
    pub fn congest_for(n: usize) -> Model {
        let log_n = (usize::BITS - n.max(1).leading_zeros()) as u64;
        Model::Congest {
            bandwidth_bits: 32 * log_n.max(1),
        }
    }

    /// The per-message bandwidth limit, if any.
    pub fn bandwidth_limit(&self) -> Option<u64> {
        match self {
            Model::Local => None,
            Model::Congest { bandwidth_bits } => Some(*bandwidth_bits),
        }
    }

    /// Returns `true` for the CONGEST model.
    pub fn is_congest(&self) -> bool {
        matches!(self, Model::Congest { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_has_no_limit() {
        assert_eq!(Model::Local.bandwidth_limit(), None);
        assert!(!Model::Local.is_congest());
        assert_eq!(Model::default(), Model::Local);
    }

    #[test]
    fn congest_for_scales_with_log_n() {
        let small = Model::congest_for(16);
        let large = Model::congest_for(1 << 20);
        let (Some(s), Some(l)) = (small.bandwidth_limit(), large.bandwidth_limit()) else {
            panic!("congest models must have limits");
        };
        assert!(l > s);
        assert_eq!(s, 32 * 5); // ⌈log₂ 17⌉ = 5
        assert!(Model::congest_for(0).bandwidth_limit().unwrap() >= 32);
    }

    #[test]
    fn explicit_bandwidth_is_respected() {
        let m = Model::Congest { bandwidth_bits: 7 };
        assert_eq!(m.bandwidth_limit(), Some(7));
        assert!(m.is_congest());
    }
}
