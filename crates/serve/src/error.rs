//! Typed errors for the wire protocol and the transport beneath it.
//!
//! The decoder never panics on adversarial input: every malformed byte
//! stream maps to a [`ProtocolError`] variant (the protocol fuzz battery in
//! `tests/protocol_fuzz.rs` pins this), and transport failures stay separate
//! in [`WireError::Io`] so connection handlers can distinguish "the client
//! sent garbage" (answer with a protocol reject) from "the socket died"
//! (drop the connection).

use std::error::Error;
use std::fmt;
use std::io;

/// A malformed frame or payload. Every variant is a *client* fault: the
/// daemon stays up, counts the error and answers with a protocol reject
/// where the stream is still in sync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A frame declared a zero-length payload (every message carries at
    /// least an opcode byte).
    EmptyFrame,
    /// A frame declared a payload larger than [`MAX_FRAME_LEN`].
    ///
    /// [`MAX_FRAME_LEN`]: crate::wire::MAX_FRAME_LEN
    FrameTooLarge {
        /// The declared payload length.
        len: usize,
    },
    /// The payload ended before a fixed-size field was complete.
    Truncated {
        /// Bytes the field needed.
        expected: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The payload carried bytes past the end of a fully decoded message.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The first payload byte is not a known request/response opcode.
    UnknownOpcode(u8),
    /// An enum tag inside a payload (reject code, lookup outcome) is out of
    /// range.
    UnknownTag {
        /// Which tagged field was being decoded.
        field: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A declared element count cannot fit in the bytes that follow it —
    /// rejected before any allocation, so a hostile length prefix cannot
    /// balloon memory.
    CountTooLarge {
        /// The declared count (elements or bytes).
        declared: usize,
        /// The maximum the remaining payload could hold.
        budget: usize,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A swap path exceeds the protocol's path-length cap — rejected at
    /// decode time, before the path ever reaches the filesystem.
    PathTooLong {
        /// The declared path length, bytes.
        len: usize,
        /// The protocol cap ([`MAX_SWAP_PATH`]).
        ///
        /// [`MAX_SWAP_PATH`]: crate::wire::MAX_SWAP_PATH
        max: usize,
    },
    /// A swap path carries an embedded NUL byte — never a valid file name,
    /// and historically the classic way to smuggle a truncated path past a
    /// validating layer into a C API. Rejected at decode time.
    NulInPath,
    /// A `Hello` requested a protocol version the daemon does not speak.
    UnsupportedVersion {
        /// The version the client asked for.
        requested: u32,
        /// The version the daemon serves.
        supported: u32,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::EmptyFrame => write!(f, "frame with an empty payload"),
            ProtocolError::FrameTooLarge { len } => {
                write!(f, "declared payload of {len} bytes exceeds the frame cap")
            }
            ProtocolError::Truncated { expected, have } => {
                write!(
                    f,
                    "payload truncated: field needs {expected} bytes, {have} left"
                )
            }
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete message")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::UnknownTag { field, tag } => {
                write!(f, "unknown {field} tag {tag:#04x}")
            }
            ProtocolError::CountTooLarge { declared, budget } => {
                write!(
                    f,
                    "declared count {declared} exceeds the remaining-bytes budget {budget}"
                )
            }
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::PathTooLong { len, max } => {
                write!(f, "swap path of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::NulInPath => write!(f, "swap path carries an embedded NUL byte"),
            ProtocolError::UnsupportedVersion {
                requested,
                supported,
            } => {
                write!(
                    f,
                    "protocol version {requested} is not served (daemon speaks {supported})"
                )
            }
        }
    }
}

impl Error for ProtocolError {}

/// A failure while reading or writing frames on a transport.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket/stream failed (includes read timeouts, which
    /// connection handlers treat as "poll again").
    Io(io::Error),
    /// The peer sent a malformed frame.
    Protocol(ProtocolError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Protocol(e) => Some(e),
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<ProtocolError> for WireError {
    fn from(e: ProtocolError) -> Self {
        WireError::Protocol(e)
    }
}

/// A failure while building a serving session (daemon boot or hot swap).
#[derive(Debug)]
pub enum SetupError {
    /// The snapshot file failed open-time or load-time validation.
    Snapshot(diststore::SnapshotError),
    /// The initial coloring run failed.
    Coloring(edgecolor::ColoringError),
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
            SetupError::Coloring(e) => write!(f, "initial coloring failed: {e}"),
        }
    }
}

impl Error for SetupError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SetupError::Snapshot(e) => Some(e),
            SetupError::Coloring(e) => Some(e),
        }
    }
}

impl From<diststore::SnapshotError> for SetupError {
    fn from(e: diststore::SnapshotError) -> Self {
        SetupError::Snapshot(e)
    }
}

impl From<edgecolor::ColoringError> for SetupError {
    fn from(e: edgecolor::ColoringError) -> Self {
        SetupError::Coloring(e)
    }
}

/// A typed failure surfaced by the [`Client`](crate::client::Client) API.
///
/// The v1 client returned the raw [`Response`](crate::wire::Response) enum
/// and left every caller to re-match it; the v2 surface decodes the
/// response into the type the method promises and maps everything else to
/// one of these variants.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or codec failed beneath the request.
    Wire(WireError),
    /// The daemon rejected a submission with a typed admission code.
    Rejected(crate::client::Rejection),
    /// The daemon refused a snapshot hot-swap; the old generation is still
    /// serving.
    SwapRejected {
        /// Why the snapshot was refused.
        detail: String,
    },
    /// The daemon hit an internal failure handling a well-formed request.
    Server {
        /// Human-readable detail from the daemon.
        detail: String,
    },
    /// The daemon answered `ProtocolRejected` — it considered our frame
    /// malformed.
    ProtocolRejected {
        /// The daemon's echo of its decode error.
        detail: String,
    },
    /// The connection handshake failed (bad `Welcome`, version mismatch).
    Handshake {
        /// What went wrong.
        detail: String,
    },
    /// The daemon answered with a response kind the request cannot produce.
    Unexpected {
        /// The response kind the method expected.
        expected: &'static str,
        /// Debug form of what actually arrived.
        got: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Rejected(r) => write!(f, "submission rejected: {r}"),
            ClientError::SwapRejected { detail } => write!(f, "swap rejected: {detail}"),
            ClientError::Server { detail } => write!(f, "server error: {detail}"),
            ClientError::ProtocolRejected { detail } => {
                write!(f, "daemon rejected our frame: {detail}")
            }
            ClientError::Handshake { detail } => write!(f, "handshake failed: {detail}"),
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected {expected}, daemon answered {got}")
            }
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Wire(WireError::Protocol(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_fault() {
        assert!(ProtocolError::EmptyFrame.to_string().contains("empty"));
        assert!(ProtocolError::FrameTooLarge { len: 99 }
            .to_string()
            .contains("99"));
        assert!(ProtocolError::Truncated {
            expected: 8,
            have: 3
        }
        .to_string()
        .contains('8'));
        assert!(ProtocolError::TrailingBytes { extra: 2 }
            .to_string()
            .contains('2'));
        assert!(ProtocolError::UnknownOpcode(0xfe)
            .to_string()
            .contains("0xfe"));
        assert!(ProtocolError::UnknownTag {
            field: "outcome",
            tag: 9
        }
        .to_string()
        .contains("outcome"));
        assert!(ProtocolError::CountTooLarge {
            declared: 7,
            budget: 1
        }
        .to_string()
        .contains('7'));
        assert!(ProtocolError::BadUtf8.to_string().contains("UTF-8"));
        let wrapped = WireError::from(ProtocolError::BadUtf8);
        assert!(wrapped.to_string().contains("protocol"));
        assert!(Error::source(&wrapped).is_some());
        let io_err = WireError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
    }
}
