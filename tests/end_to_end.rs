//! End-to-end integration tests spanning all crates: graph generation →
//! distributed simulation → the paper's algorithms → verification.

use distgraph::{generators, Graph, ListAssignment};
use distsim::IdAssignment;
use edgecolor::{color_congest, color_edges_local, ColoringParams, ParamProfile};
use edgecolor_baselines as baselines;
use edgecolor_verify::{
    check_complete, check_list_compliance, check_palette_size, check_proper_edge_coloring,
};

fn verify_complete_proper(graph: &Graph, coloring: &distgraph::EdgeColoring) {
    check_proper_edge_coloring(graph, coloring).assert_ok();
    check_complete(graph, coloring).assert_ok();
}

#[test]
fn local_coloring_across_graph_families() {
    let params = ColoringParams::new(0.5);
    for (family, delta) in [
        (generators::Family::RegularBipartite, 12),
        (generators::Family::ErdosRenyi, 10),
        (generators::Family::PowerLaw, 12),
        (generators::Family::Hypercube, 6),
        (generators::Family::RandomTree, 4),
        (generators::Family::Grid, 4),
    ] {
        let graph = family.generate(128, delta, 99);
        if graph.m() == 0 {
            continue;
        }
        let ids = IdAssignment::scattered(graph.n(), 5);
        let outcome = color_edges_local(&graph, &ids, &params)
            .unwrap_or_else(|e| panic!("family {} failed: {e}", family.name()));
        verify_complete_proper(&graph, &outcome.coloring);
        let budget = (2 * graph.max_degree()).saturating_sub(1).max(1);
        check_palette_size(&outcome.coloring, budget).assert_ok();
    }
}

#[test]
fn congest_coloring_across_graph_families() {
    let params = ColoringParams::new(0.5);
    for (family, delta) in [
        (generators::Family::RegularBipartite, 10),
        (generators::Family::ErdosRenyi, 8),
        (generators::Family::Hypercube, 5),
        (generators::Family::Grid, 4),
    ] {
        let graph = family.generate(96, delta, 7);
        if graph.m() == 0 {
            continue;
        }
        let ids = IdAssignment::scattered(graph.n(), 3);
        let result = color_congest(&graph, &ids, &params);
        verify_complete_proper(&graph, &result.coloring);
        assert_eq!(
            result.metrics.congest_violations,
            0,
            "bandwidth violated on {}",
            family.name()
        );
        let budget = ((8.0 + 6.0 * params.eps) * graph.max_degree() as f64).ceil() as usize + 16;
        assert!(
            result.colors_used <= budget,
            "{}: {} colors exceed {budget}",
            family.name(),
            result.colors_used
        );
    }
}

#[test]
fn list_coloring_with_adversarially_skewed_lists() {
    // Lists heavily concentrated in one half of the color space exercise the
    // λ_e machinery of Lemma D.1 (λ far from 1/2).
    let bg = generators::regular_bipartite(32, 10, 17).unwrap();
    let graph = bg.graph().clone();
    let space = 4 * graph.max_edge_degree();
    let lists = ListAssignment::new(
        space,
        graph
            .edges()
            .map(|e| {
                let need = graph.edge_degree(e) + 1;
                // even edges draw from the low half, odd edges from the high half
                if e.index() % 2 == 0 {
                    (0..need).collect()
                } else {
                    (space - need..space).collect()
                }
            })
            .collect(),
    );
    let ids = IdAssignment::contiguous(graph.n());
    let params = ColoringParams::new(0.5);
    let outcome = edgecolor::list_edge_coloring(&graph, &lists, &ids, &params).unwrap();
    verify_complete_proper(&graph, &outcome.coloring);
    check_list_compliance(&graph, &lists, &outcome.coloring).assert_ok();
}

#[test]
fn both_parameter_profiles_agree_on_validity() {
    let graph = generators::random_regular(80, 10, 21).unwrap();
    let ids = IdAssignment::scattered(graph.n(), 11);
    for params in [ColoringParams::new(0.5), ColoringParams::paper(0.5)] {
        let outcome = color_edges_local(&graph, &ids, &params).unwrap();
        verify_complete_proper(&graph, &outcome.coloring);
        check_palette_size(&outcome.coloring, 2 * graph.max_degree() - 1).assert_ok();
        assert_eq!(
            params.profile,
            if matches!(params.profile, ParamProfile::Paper) {
                ParamProfile::Paper
            } else {
                ParamProfile::Practical
            }
        );
    }
}

#[test]
fn algorithms_and_baselines_agree_on_feasibility() {
    let graph = generators::random_regular(72, 8, 5).unwrap();
    let ids = IdAssignment::scattered(graph.n(), 9);
    let params = ColoringParams::new(0.5);

    let ours = color_edges_local(&graph, &ids, &params).unwrap();
    let greedy = baselines::greedy_sequential(&graph);
    let vizing = baselines::misra_gries(&graph);
    let classes = baselines::greedy_by_classes(&graph, &ids, distsim::Model::Local);
    let random = baselines::randomized_coloring(&graph, 4, distsim::Model::Local);

    for coloring in [
        &ours.coloring,
        &greedy,
        &vizing,
        &classes.coloring,
        &random.coloring,
    ] {
        verify_complete_proper(&graph, coloring);
    }
    // Color-count sanity ordering: Vizing ≤ Δ+1 ≤ ours/greedy ≤ 2Δ−1.
    assert!(vizing.palette_size() <= graph.max_degree() + 1);
    assert!(ours.coloring.palette_size() < 2 * graph.max_degree());
    assert!(greedy.palette_size() < 2 * graph.max_degree());
}

#[test]
fn locality_round_counts_are_stable_as_n_grows() {
    // The ∆-dependent part of the round complexity must not grow with n;
    // only the O(log* n) initial coloring may add a couple of rounds.
    let params = ColoringParams::new(0.5);
    let small = generators::random_regular(64, 8, 2).unwrap();
    let large = generators::random_regular(256, 8, 2).unwrap();
    let ids_small = IdAssignment::scattered(small.n(), 1);
    let ids_large = IdAssignment::scattered(large.n(), 1);
    let out_small = color_edges_local(&small, &ids_small, &params).unwrap();
    let out_large = color_edges_local(&large, &ids_large, &params).unwrap();
    verify_complete_proper(&large, &out_large.coloring);
    assert!(
        out_large.initial_coloring_rounds <= out_small.initial_coloring_rounds + 3,
        "initial coloring rounds grew too fast: {} vs {}",
        out_large.initial_coloring_rounds,
        out_small.initial_coloring_rounds
    );
}

#[test]
fn rejects_invalid_instances_cleanly() {
    let graph = generators::star(5);
    let ids = IdAssignment::contiguous(graph.n());
    let params = ColoringParams::new(0.5);
    // Lists smaller than degree+1 must be rejected, not mis-colored.
    let lists = ListAssignment::new(3, vec![vec![0, 1]; graph.m()]);
    let err = edgecolor::list_edge_coloring(&graph, &lists, &ids, &params).unwrap_err();
    assert!(matches!(err, edgecolor::ColoringError::ListTooSmall { .. }));
}
