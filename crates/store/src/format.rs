//! The versioned binary snapshot format and its encoder.
//!
//! Layout (all integers little-endian, see `docs/SNAPSHOTS.md`):
//!
//! ```text
//! magic  [u8; 8]    = "DSTSNAP\0"
//! version u32       = 1
//! count   u32       = number of section-table entries
//! table   [entry]   = count × { tag [u8;4], offset u64, len u64, checksum64 u64 }
//! payloads          = the sections' bytes, at the offsets the table declares
//! ```
//!
//! Sections of version 1 (`n` nodes, `m` edges):
//!
//! | tag    | required | payload                                              |
//! |--------|----------|------------------------------------------------------|
//! | `META` | yes      | 48 bytes: n, m, flags, next_stable, max_degree, 0 (u64 each) |
//! | `OFFS` | yes      | CSR offsets, `(n + 1) × u32`                          |
//! | `ADJN` | yes      | adjacency neighbor node ids, `2m × u32`               |
//! | `ADJE` | yes      | adjacency edge ids, `2m × u32`, parallel to `ADJN`    |
//! | `ENDP` | yes      | edge endpoints, `2m × u32`, interleaved (u, v) pairs  |
//! | `COLR` | flag 0   | per-edge colors, `m × u32`, `u32::MAX` = uncolored    |
//! | `STBL` | flag 1   | per-edge stable ids, `m × u32`                        |
//! | `PERM` | flag 2   | node permutation `old_of_new`, `n × u32`              |
//!
//! Everything is hand-rolled over `std` (the workspace `serde` is a
//! marker-only stand-in, see `crates/compat/README.md`), and every section
//! carries a word-chunked FNV-1a 64 checksum (`checksum64`) so corruption
//! is detected before any payload is interpreted.

use crate::error::SnapshotError;
use distgraph::{DynamicGraph, EdgeColoring, Graph, GraphError, NodePermutation};
use std::fs;
use std::path::Path;

/// The 8 magic bytes every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"DSTSNAP\0";
/// The format version this build writes and the newest it reads.
pub const VERSION: u32 = 1;

/// Fixed header size: magic + version + section count.
pub(crate) const HEADER_LEN: usize = 16;
/// Size of one section-table entry: tag + offset + len + checksum.
pub(crate) const TABLE_ENTRY_LEN: usize = 28;
/// Size of the `META` section payload.
pub(crate) const META_LEN: usize = 48;

/// Section tags of version 1.
pub(crate) const TAG_META: [u8; 4] = *b"META";
pub(crate) const TAG_OFFS: [u8; 4] = *b"OFFS";
pub(crate) const TAG_ADJN: [u8; 4] = *b"ADJN";
pub(crate) const TAG_ADJE: [u8; 4] = *b"ADJE";
pub(crate) const TAG_ENDP: [u8; 4] = *b"ENDP";
pub(crate) const TAG_COLR: [u8; 4] = *b"COLR";
pub(crate) const TAG_STBL: [u8; 4] = *b"STBL";
pub(crate) const TAG_PERM: [u8; 4] = *b"PERM";

/// META flag bits announcing optional sections.
pub(crate) const FLAG_COLORING: u64 = 1 << 0;
pub(crate) const FLAG_STABLE: u64 = 1 << 1;
pub(crate) const FLAG_PERMUTATION: u64 = 1 << 2;
pub(crate) const FLAG_ALL: u64 = FLAG_COLORING | FLAG_STABLE | FLAG_PERMUTATION;

/// The per-section checksum: four interleaved FNV-1a 64 lanes over 8-byte
/// little-endian words, combined and finished byte-at-a-time.
///
/// Open-time validation hashes every payload byte, and textbook
/// byte-at-a-time FNV-1a is one serial xor→multiply dependency chain — it
/// was the dominant cost of opening a 25 MiB snapshot. This variant folds a
/// whole word per step and keeps four independent chains (lane `j` folds
/// words `j, j + 4, j + 8, …` of the input), so the multiplies pipeline
/// instead of serializing; the lanes are then combined in order and the
/// trailing `len % 32` bytes are folded byte-at-a-time. Inputs shorter than
/// 32 bytes take the textbook byte loop unchanged, so short-input hashes
/// match the classic FNV-1a 64 test vectors; longer inputs intentionally do
/// not (the format owns its checksum definition — see `docs/SNAPSHOTS.md`).
/// Good enough to catch the bit flips and truncations the corruption
/// battery simulates; not a cryptographic integrity guarantee.
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    if bytes.len() < 32 {
        let mut hash = BASIS;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
        return hash;
    }
    let word = |chunk: &[u8]| u64::from_le_bytes(chunk.try_into().expect("8-byte word"));
    let mut lanes = [
        BASIS,
        BASIS ^ PRIME,
        BASIS.rotate_left(17),
        BASIS.rotate_left(31),
    ];
    let mut groups = bytes.chunks_exact(32);
    for g in &mut groups {
        lanes[0] = (lanes[0] ^ word(&g[0..8])).wrapping_mul(PRIME);
        lanes[1] = (lanes[1] ^ word(&g[8..16])).wrapping_mul(PRIME);
        lanes[2] = (lanes[2] ^ word(&g[16..24])).wrapping_mul(PRIME);
        lanes[3] = (lanes[3] ^ word(&g[24..32])).wrapping_mul(PRIME);
    }
    let mut hash = lanes[0];
    for &lane in &lanes[1..] {
        hash = (hash ^ lane).wrapping_mul(PRIME);
    }
    for &b in groups.remainder() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

fn push_u32s(out: &mut Vec<u8>, values: impl IntoIterator<Item = u32>) {
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Everything one snapshot can carry, borrowed from the caller: a graph plus
/// optional per-edge coloring, stable-id table and node permutation.
///
/// # Examples
///
/// ```
/// use diststore::{Snapshot, SnapshotSource};
/// use distgraph::generators;
///
/// let g = generators::cycle(8);
/// let bytes = SnapshotSource::graph(&g).encode()?;
/// let snap = Snapshot::from_bytes(bytes)?;
/// assert_eq!(snap.view().n(), 8);
/// # Ok::<(), diststore::SnapshotError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotSource<'a> {
    graph: &'a Graph,
    coloring: Option<&'a EdgeColoring>,
    stable: Option<(&'a [distgraph::EdgeId], usize)>,
    permutation: Option<&'a NodePermutation>,
}

impl<'a> SnapshotSource<'a> {
    /// A snapshot of just the graph structure.
    pub fn graph(graph: &'a Graph) -> Self {
        SnapshotSource {
            graph,
            coloring: None,
            stable: None,
            permutation: None,
        }
    }

    /// A snapshot of a dynamic graph: its current structure plus the
    /// stable-id table and high-water mark, so `EdgeId` stability survives
    /// the round-trip.
    pub fn dynamic(dynamic: &'a DynamicGraph) -> Self {
        SnapshotSource {
            graph: dynamic.graph(),
            coloring: None,
            stable: Some((dynamic.stable_table(), dynamic.next_stable_id())),
            permutation: None,
        }
    }

    /// Attaches a (possibly partial) edge coloring.
    ///
    /// # Panics
    ///
    /// Panics if the coloring is not sized for the graph's edge count — that
    /// is a caller bug, not a decode-time condition.
    pub fn with_coloring(mut self, coloring: &'a EdgeColoring) -> Self {
        assert_eq!(
            coloring.len(),
            self.graph.m(),
            "coloring covers {} edges, graph has {}",
            coloring.len(),
            self.graph.m()
        );
        self.coloring = Some(coloring);
        self
    }

    /// Attaches the node permutation that produced this graph's numbering
    /// (stored so node-keyed data can be mapped back to original ids).
    ///
    /// # Panics
    ///
    /// Panics if the permutation does not act on exactly the graph's nodes.
    pub fn with_permutation(mut self, permutation: &'a NodePermutation) -> Self {
        assert_eq!(
            permutation.len(),
            self.graph.n(),
            "permutation acts on {} nodes, graph has {}",
            permutation.len(),
            self.graph.n()
        );
        self.permutation = Some(permutation);
        self
    }

    /// Encodes the snapshot into its binary form.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Graph`] with
    /// [`GraphError::IndexOverflow`] if any stored quantity does not fit the
    /// format's `u32` element type (adjacency length `2m`, a color value, or
    /// the stable-id high-water mark).
    pub fn encode(&self) -> Result<Vec<u8>, SnapshotError> {
        let g = self.graph;
        let n = g.n();
        let m = g.m();
        let offsets = g.csr_offsets();
        // Node and edge ids fit u32 by construction, but the *offsets* go up
        // to 2m, which a near-u32::MAX edge count pushes past u32.
        if offsets[n] > u32::MAX as usize {
            return Err(GraphError::IndexOverflow {
                what: "adjacency length",
                index: offsets[n] as u64,
            }
            .into());
        }

        let mut flags = 0u64;
        let mut sections: Vec<([u8; 4], Vec<u8>)> = Vec::with_capacity(8);

        let mut offs = Vec::with_capacity((n + 1) * 4);
        push_u32s(&mut offs, offsets.iter().map(|&o| o as u32));

        let mut adjn = Vec::with_capacity(2 * m * 4);
        let mut adje = Vec::with_capacity(2 * m * 4);
        for v in g.nodes() {
            for nb in g.neighbors(v) {
                adjn.extend_from_slice(&nb.node.0.to_le_bytes());
                adje.extend_from_slice(&nb.edge.0.to_le_bytes());
            }
        }

        let mut endp = Vec::with_capacity(2 * m * 4);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            endp.extend_from_slice(&u.0.to_le_bytes());
            endp.extend_from_slice(&v.0.to_le_bytes());
        }

        sections.push((TAG_OFFS, offs));
        sections.push((TAG_ADJN, adjn));
        sections.push((TAG_ADJE, adje));
        sections.push((TAG_ENDP, endp));

        if let Some(coloring) = self.coloring {
            let mut colr = Vec::with_capacity(m * 4);
            for e in g.edges() {
                let raw = match coloring.color(e) {
                    // u32::MAX is the uncolored sentinel, so the largest
                    // storable color is u32::MAX - 1.
                    Some(c) => u32::try_from(c).ok().filter(|&c| c != u32::MAX).ok_or(
                        GraphError::IndexOverflow {
                            what: "color value",
                            index: c as u64,
                        },
                    )?,
                    None => u32::MAX,
                };
                colr.extend_from_slice(&raw.to_le_bytes());
            }
            sections.push((TAG_COLR, colr));
            flags |= FLAG_COLORING;
        }

        let mut next_stable = 0u64;
        if let Some((table, next)) = self.stable {
            // Stable ids are u32, so a consistent high-water mark can be at
            // most u32::MAX + 1; anything larger cannot round-trip.
            if next > u32::MAX as usize + 1 {
                return Err(GraphError::IndexOverflow {
                    what: "stable edge id",
                    index: next as u64,
                }
                .into());
            }
            let mut stbl = Vec::with_capacity(m * 4);
            push_u32s(&mut stbl, table.iter().map(|id| id.0));
            sections.push((TAG_STBL, stbl));
            flags |= FLAG_STABLE;
            next_stable = next as u64;
        }

        if let Some(perm) = self.permutation {
            let mut pbytes = Vec::with_capacity(n * 4);
            push_u32s(&mut pbytes, perm.old_of_new().iter().copied());
            sections.push((TAG_PERM, pbytes));
            flags |= FLAG_PERMUTATION;
        }

        let mut meta = Vec::with_capacity(META_LEN);
        for word in [
            n as u64,
            m as u64,
            flags,
            next_stable,
            g.max_degree() as u64,
            0u64,
        ] {
            meta.extend_from_slice(&word.to_le_bytes());
        }
        sections.insert(0, (TAG_META, meta));

        // Assemble: header, table, payloads in table order.
        let count = sections.len();
        let mut out = Vec::with_capacity(
            HEADER_LEN
                + count * TABLE_ENTRY_LEN
                + sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(count as u32).to_le_bytes());
        let mut offset = (HEADER_LEN + count * TABLE_ENTRY_LEN) as u64;
        for (tag, payload) in &sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum64(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        Ok(out)
    }

    /// Encodes the snapshot and writes it to `path`.
    ///
    /// # Errors
    ///
    /// Encoding errors as in [`SnapshotSource::encode`], plus any filesystem
    /// error as [`SnapshotError::Io`].
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let bytes = self.encode()?;
        fs::write(path, bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;

    #[test]
    fn checksum_vectors() {
        // Inputs shorter than 32 bytes take the byte loop and match the
        // standard FNV-1a 64 test vectors.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(checksum64(b"foobar"), 0x85944171f73967e8);
        // Lane-path vectors, pinned: the checksum is part of the on-disk
        // format, so any change to the folding breaks every existing
        // snapshot and must show up here first. One exact multiple of the
        // 32-byte group, one with a 13-byte tail.
        let bytes: Vec<u8> = (0u8..45).collect();
        assert_eq!(checksum64(&bytes[..32]), 0x27d2_bf62_3fb9_b32a);
        assert_eq!(checksum64(&bytes), 0x4a8b_7574_589a_d0da);
    }

    #[test]
    fn encoded_layout_starts_with_magic_and_version() {
        let g = generators::cycle(5);
        let bytes = SnapshotSource::graph(&g).encode().unwrap();
        assert_eq!(&bytes[..8], &MAGIC);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            VERSION
        );
        // Five mandatory sections, no optional ones.
        assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 5);
    }

    #[test]
    fn oversized_color_is_a_typed_error() {
        let g = generators::cycle(3);
        let mut coloring = EdgeColoring::empty(g.m());
        coloring.set(distgraph::EdgeId::new(0), u32::MAX as usize);
        let err = SnapshotSource::graph(&g)
            .with_coloring(&coloring)
            .encode()
            .unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Graph(GraphError::IndexOverflow {
                what: "color value",
                ..
            })
        ));
    }
}
