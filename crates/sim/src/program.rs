//! The strict per-node state-machine execution layer.
//!
//! In the LOCAL/CONGEST models every node runs the *same* algorithm with
//! access only to its own state and the messages it receives. The
//! [`NodeProgram`] trait captures exactly that: a node gets a [`NodeCtx`]
//! describing its local view of the topology (its port-numbered neighbor
//! list, its unique identifier, `n` and `Δ`) and produces, in each round, the
//! messages to send, until it halts with an output.
//!
//! The orchestrated layer ([`crate::Network`]) is more convenient for the
//! composed algorithms of the paper; this layer exists to demonstrate and
//! test that the building blocks are genuinely local, and all unit algorithms
//! that fit in a page (flooding, BFS, proposal/accept steps, token dropping)
//! have strict implementations running on it.

use crate::executor::{for_each_chunk_mut_in, Chunks, ExecutionPolicy};
use crate::faults::{FaultPlan, FaultState, FaultStats};
use crate::identifiers::IdAssignment;
use crate::ledger::{LedgerEntry, RoundLedger};
use crate::metrics::Metrics;
use crate::model::Model;
use crate::network::Incoming;
use crate::payload::Payload;
use distgraph::{EdgeId, Graph, Neighbor, NodeId};

/// A node's local view of the network, available in every round.
#[derive(Debug, Clone)]
pub struct NodeCtx {
    /// The node's (dense) index; only used for bookkeeping, the algorithmic
    /// symmetry breaking must use [`NodeCtx::id`].
    pub node: NodeId,
    /// The node's unique identifier from `{1, ..., poly n}`.
    pub id: u64,
    /// The node's degree.
    pub degree: usize,
    /// Port-numbered adjacency: `ports[i]` is the neighbor reachable through
    /// port `i` together with the connecting edge.
    pub ports: Vec<Neighbor>,
    /// The number of nodes `n`, known to all nodes (Section 2).
    pub n: usize,
    /// The maximum degree Δ, known to all nodes (Section 2).
    pub max_degree: usize,
}

/// What a node does at the end of a round.
#[derive(Debug, Clone)]
pub enum Step<M, O> {
    /// Keep running and send these messages (over incident edges).
    Send(Vec<(EdgeId, M)>),
    /// Halt with an output. A halted node sends nothing and ignores later
    /// messages.
    Halt(O),
}

/// A distributed algorithm, instantiated once per node.
pub trait NodeProgram {
    /// Message type exchanged between neighbors.
    type Msg: Payload;
    /// Per-node output when the node halts.
    type Output: Clone;

    /// Called once before the first round; returns the messages for round 1.
    fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, Self::Msg)>;

    /// Called once per round with the messages received in that round.
    fn round(
        &mut self,
        ctx: &NodeCtx,
        inbox: &[Incoming<Self::Msg>],
    ) -> Step<Self::Msg, Self::Output>;
}

/// Shard-level observability of a program run executed under
/// [`ExecutionPolicy::Sharded`]: the quality of the partition the run used
/// and the cross-shard traffic its rounds generated.
#[derive(Debug, Clone)]
pub struct ShardRunStats {
    /// Quality report of the BFS partition (cut fraction, balance factor).
    pub report: distshard::PartitionReport,
    /// Cumulative cross-shard traffic over all executed rounds.
    pub router: distshard::RouterStats,
}

/// The result of running a [`NodeProgram`] on every node of a graph.
#[derive(Debug, Clone)]
pub struct ProgramRun<O> {
    /// Per-node outputs (`None` for nodes that did not halt before the round limit).
    pub outputs: Vec<Option<O>>,
    /// Cost of the execution.
    pub metrics: Metrics,
    /// Partition quality and cross-shard traffic when the run executed under
    /// [`ExecutionPolicy::Sharded`]; `None` for the other policies.
    pub shard: Option<ShardRunStats>,
    /// What the fault adversary did when the run executed under a
    /// [`FaultPlan`] (see [`run_program_under_faults`]); `None` for
    /// fault-free runs.
    pub faults: Option<FaultStats>,
    /// The per-level round ledger of the run. The strict layer records one
    /// top-level `"program"` entry summarizing the execution; composed
    /// drivers running on the orchestrated layer attach their recursion's
    /// full ledger here.
    pub ledger: RoundLedger,
}

impl<O> ProgramRun<O> {
    /// Returns `true` if every node halted.
    pub fn all_halted(&self) -> bool {
        self.outputs.iter().all(Option::is_some)
    }

    /// Unwraps the outputs, panicking if some node did not halt.
    pub fn expect_outputs(self) -> Vec<O> {
        self.outputs
            .into_iter()
            .map(|o| o.expect("node did not halt within the round limit"))
            .collect()
    }
}

/// Runs one instance of `make_program` per node until every node halts or
/// `max_rounds` is reached.
///
/// The per-round semantics match the synchronous models: all `round` calls of
/// round `t` observe exactly the messages sent at the end of round `t − 1`.
pub fn run_program<P, F>(
    graph: &Graph,
    ids: &IdAssignment,
    model: Model,
    max_rounds: u64,
    make_program: F,
) -> ProgramRun<P::Output>
where
    P: NodeProgram,
    P::Msg: Send,
    F: FnMut(NodeId) -> P,
{
    run_program_inner(graph, ids, model, max_rounds, make_program, None)
}

/// The single top-level ledger entry of a strict-layer run: one `"program"`
/// record summarizing the whole execution.
fn program_ledger(graph: &Graph, metrics: &Metrics) -> RoundLedger {
    let mut ledger = RoundLedger::new();
    ledger.record(LedgerEntry {
        depth: 0,
        stage: "program",
        delta_level: graph.max_degree(),
        edges: graph.m(),
        rounds: metrics.rounds,
        defect_ratio: f64::NAN,
        fallback: false,
    });
    ledger
}

/// The sequential execution path, optionally filtered through a fault
/// adversary (the reference semantics every other path is bit-identical to).
fn run_program_inner<P, F>(
    graph: &Graph,
    ids: &IdAssignment,
    model: Model,
    max_rounds: u64,
    mut make_program: F,
    mut faults: Option<&mut FaultState>,
) -> ProgramRun<P::Output>
where
    P: NodeProgram,
    P::Msg: Send,
    F: FnMut(NodeId) -> P,
{
    let n = graph.n();
    let max_degree = graph.max_degree();
    let mut metrics = Metrics::new();
    let limit = model.bandwidth_limit();

    let contexts: Vec<NodeCtx> = graph
        .nodes()
        .map(|v| NodeCtx {
            node: v,
            id: ids.id(v),
            degree: graph.degree(v),
            ports: graph.neighbors(v).to_vec(),
            n,
            max_degree,
        })
        .collect();

    let mut programs: Vec<P> = graph.nodes().map(&mut make_program).collect();
    let mut outputs: Vec<Option<P::Output>> = vec![None; n];

    // Round 0: init.
    let mut pending: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); n];
    for v in graph.nodes() {
        let sends = programs[v.index()].init(&contexts[v.index()]);
        for (edge, msg) in sends {
            assert!(
                graph.is_endpoint(edge, v),
                "{v} sent over non-incident edge {edge}"
            );
            metrics.record_message(msg.encoded_bits() as u64, limit);
            let target = graph.other_endpoint(edge, v);
            pending[target.index()].push(Incoming { from: v, edge, msg });
        }
    }

    // The inbox double buffer: each round swaps `pending` (the messages to
    // deliver) into `inboxes` and clears the previous round's consumed
    // inboxes in place, so the steady-state loop allocates nothing.
    let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); n];
    for _round in 0..max_rounds {
        if outputs.iter().all(Option::is_some) {
            break;
        }
        metrics.rounds += 1;
        let crash_mask = apply_round_faults(&mut faults, graph, metrics.rounds, &mut pending);
        std::mem::swap(&mut pending, &mut inboxes);
        for inbox in pending.iter_mut() {
            inbox.clear();
        }
        for v in graph.nodes() {
            if outputs[v.index()].is_some() {
                continue;
            }
            if crash_mask.as_ref().is_some_and(|mask| mask[v.index()]) {
                continue;
            }
            match programs[v.index()].round(&contexts[v.index()], &inboxes[v.index()]) {
                Step::Halt(out) => outputs[v.index()] = Some(out),
                Step::Send(sends) => {
                    for (edge, msg) in sends {
                        assert!(
                            graph.is_endpoint(edge, v),
                            "{v} sent over non-incident edge {edge}"
                        );
                        metrics.record_message(msg.encoded_bits() as u64, limit);
                        let target = graph.other_endpoint(edge, v);
                        pending[target.index()].push(Incoming { from: v, edge, msg });
                    }
                }
            }
        }
        note_crashed_steps(&mut faults, &crash_mask, &outputs);
    }

    ProgramRun {
        outputs,
        metrics,
        shard: None,
        faults: None,
        ledger: program_ledger(graph, &metrics),
    }
}

/// Filters the round's pending messages through the fault adversary (if
/// any) and returns the round's crash mask. Shared by all three execution
/// paths, *after* each has produced the canonical sequential delivery
/// order, so the adversary's decisions are identical across policies.
fn apply_round_faults<M: Payload + Send>(
    faults: &mut Option<&mut FaultState>,
    graph: &Graph,
    round: u64,
    pending: &mut [Vec<Incoming<M>>],
) -> Option<Vec<bool>> {
    let state = faults.as_deref_mut()?;
    state.apply(graph, round, pending);
    state.crash_mask(graph.n(), round)
}

/// Accounts the node steps suppressed by this round's crash mask. A crashed
/// node can neither step nor halt, so its output is still `None` exactly
/// when the crash suppressed a live step.
fn note_crashed_steps<O>(
    faults: &mut Option<&mut FaultState>,
    crash_mask: &Option<Vec<bool>>,
    outputs: &[Option<O>],
) {
    let (Some(state), Some(mask)) = (faults.as_deref_mut(), crash_mask) else {
        return;
    };
    let suppressed = mask
        .iter()
        .zip(outputs)
        .filter(|(&crashed, output)| crashed && output.is_none())
        .count() as u64;
    state.note_crashed_steps(suppressed);
}

/// Like [`run_program`], but executes each round's node actions under the
/// given [`ExecutionPolicy`].
///
/// Under `Parallel { threads }` the still-running programs are split into
/// contiguous node chunks, one scoped worker per chunk calls
/// [`NodeProgram::round`] against a read-only snapshot of the round's
/// inboxes, and the outgoing messages and metrics are merged in chunk order
/// (i.e. global node order). The produced outputs, pending messages and
/// [`Metrics`] are therefore **byte-identical** to the sequential execution
/// at every thread count; only wall-clock time changes.
///
/// Under `Sharded { shards, threads }` the programs run shard-locally on a
/// [`distshard::bfs_partition`] of the graph (shards distributed over the
/// worker threads), with only boundary-crossing messages moving between
/// shards through a batched [`distshard::ShardRouter`]; the returned
/// [`ProgramRun::shard`] carries the partition report and the cross-shard
/// traffic. Outputs and metrics remain byte-identical to the sequential
/// execution at every shard/thread count.
pub fn run_program_with<P, F>(
    graph: &Graph,
    ids: &IdAssignment,
    model: Model,
    policy: ExecutionPolicy,
    max_rounds: u64,
    make_program: F,
) -> ProgramRun<P::Output>
where
    P: NodeProgram + Send,
    P::Msg: Send + Sync,
    P::Output: Send,
    F: FnMut(NodeId) -> P,
{
    run_program_with_inner(graph, ids, model, policy, max_rounds, make_program, None)
}

/// Like [`run_program_with`], but executes every round under the
/// seed-driven fault adversary described by `plan` (drops, duplicates,
/// delays, crash windows, severed shard links — see [`crate::faults`]).
///
/// The determinism contract extends to faults: the same `plan` produces
/// bit-identical outputs, metrics and [`FaultStats`] under every execution
/// policy, because every adversary decision is a pure hash of
/// `(seed, round, edge, sender)` applied to the canonically ordered
/// mailboxes. The adversary's effect is returned in
/// [`ProgramRun::faults`].
pub fn run_program_under_faults<P, F>(
    graph: &Graph,
    ids: &IdAssignment,
    model: Model,
    policy: ExecutionPolicy,
    max_rounds: u64,
    plan: FaultPlan,
    make_program: F,
) -> ProgramRun<P::Output>
where
    P: NodeProgram + Send,
    P::Msg: Send + Sync,
    P::Output: Send,
    F: FnMut(NodeId) -> P,
{
    let mut state = FaultState::new(plan);
    let mut run = run_program_with_inner(
        graph,
        ids,
        model,
        policy,
        max_rounds,
        make_program,
        Some(&mut state),
    );
    run.faults = Some(state.stats());
    run
}

/// Policy dispatch shared by [`run_program_with`] and
/// [`run_program_under_faults`].
fn run_program_with_inner<P, F>(
    graph: &Graph,
    ids: &IdAssignment,
    model: Model,
    policy: ExecutionPolicy,
    max_rounds: u64,
    make_program: F,
    faults: Option<&mut FaultState>,
) -> ProgramRun<P::Output>
where
    P: NodeProgram + Send,
    P::Msg: Send + Sync,
    P::Output: Send,
    F: FnMut(NodeId) -> P,
{
    if policy.is_sharded() {
        return run_program_sharded(graph, ids, model, policy, max_rounds, make_program, faults);
    }
    // `spawning_pays_off` also routes oversubscribed policies (more threads
    // than the host has hardware slots for) to the inline runner, whose
    // output is bit-identical.
    if !policy.spawning_pays_off() {
        return run_program_inner(graph, ids, model, max_rounds, make_program, faults);
    }
    let mut faults = faults;
    let mut make_program = make_program;
    let n = graph.n();
    let max_degree = graph.max_degree();
    let mut metrics = Metrics::new();
    let limit = model.bandwidth_limit();
    // Degree-weighted chunks: a pure function of the graph and the policy's
    // thread count, so the chunk order (and with it the delivery order)
    // matches every other policy bit for bit, while hub-heavy chunks stop
    // serializing the round on one worker.
    let chunks = Chunks::degree_weighted(n, graph.csr_offsets(), policy.threads());
    let chunk_count = chunks.count();

    let contexts: Vec<NodeCtx> = graph
        .nodes()
        .map(|v| NodeCtx {
            node: v,
            id: ids.id(v),
            degree: graph.degree(v),
            ports: graph.neighbors(v).to_vec(),
            n,
            max_degree,
        })
        .collect();

    let mut programs: Vec<P> = graph.nodes().map(&mut make_program).collect();
    let mut outputs: Vec<Option<P::Output>> = Vec::with_capacity(n);
    outputs.resize_with(n, || None);

    // Round 0: init (sequential — one pass, identical to `run_program`).
    let mut pending: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); n];
    for v in graph.nodes() {
        let sends = programs[v.index()].init(&contexts[v.index()]);
        for (edge, msg) in sends {
            assert!(
                graph.is_endpoint(edge, v),
                "{v} sent over non-incident edge {edge}"
            );
            metrics.record_message(msg.encoded_bits() as u64, limit);
            let target = graph.other_endpoint(edge, v);
            pending[target.index()].push(Incoming { from: v, edge, msg });
        }
    }

    /// One undelivered message: destination node index plus inbox entry.
    type Targeted<M> = (usize, Incoming<M>);

    /// Per-chunk result of one parallel round.
    struct RoundOut<M> {
        buckets: Vec<Vec<Targeted<M>>>,
        metrics: Metrics,
    }

    // The inbox double buffer (see `run_program_inner`).
    let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); n];
    for _round in 0..max_rounds {
        if outputs.iter().all(Option::is_some) {
            break;
        }
        metrics.rounds += 1;
        let crash_mask = apply_round_faults(&mut faults, graph, metrics.rounds, &mut pending);
        std::mem::swap(&mut pending, &mut inboxes);
        for inbox in pending.iter_mut() {
            inbox.clear();
        }

        // Split programs and outputs into disjoint per-chunk mutable slices.
        let ranges = chunks.ranges();
        let mut prog_slices: Vec<&mut [P]> = Vec::with_capacity(ranges.len());
        let mut out_slices: Vec<&mut [Option<P::Output>]> = Vec::with_capacity(ranges.len());
        let mut prog_rest: &mut [P] = &mut programs;
        let mut out_rest: &mut [Option<P::Output>] = &mut outputs;
        for range in &ranges {
            let (ph, pt) = prog_rest.split_at_mut(range.len());
            prog_slices.push(ph);
            prog_rest = pt;
            let (oh, ot) = out_rest.split_at_mut(range.len());
            out_slices.push(oh);
            out_rest = ot;
        }

        let outs: Vec<RoundOut<P::Msg>> = std::thread::scope(|scope| {
            let contexts = &contexts;
            let inboxes = &inboxes;
            let chunks = &chunks;
            let crash_mask = crash_mask.as_deref();
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .zip(prog_slices)
                .zip(out_slices)
                .map(|((range, progs), outs)| {
                    scope.spawn(move || {
                        let mut chunk_metrics = Metrics::new();
                        let mut buckets: Vec<Vec<Targeted<P::Msg>>> = Vec::new();
                        buckets.resize_with(chunk_count, Vec::new);
                        for (offset, (program, output)) in
                            progs.iter_mut().zip(outs.iter_mut()).enumerate()
                        {
                            if output.is_some() {
                                continue;
                            }
                            let raw_v = range.start + offset;
                            if crash_mask.is_some_and(|mask| mask[raw_v]) {
                                continue;
                            }
                            let v = NodeId::new(raw_v);
                            match program.round(&contexts[raw_v], &inboxes[raw_v]) {
                                Step::Halt(out) => *output = Some(out),
                                Step::Send(sends) => {
                                    for (edge, msg) in sends {
                                        assert!(
                                            graph.is_endpoint(edge, v),
                                            "{v} sent over non-incident edge {edge}"
                                        );
                                        chunk_metrics
                                            .record_message(msg.encoded_bits() as u64, limit);
                                        let target = graph.other_endpoint(edge, v).index();
                                        buckets[chunks.chunk_of(target)]
                                            .push((target, Incoming { from: v, edge, msg }));
                                    }
                                }
                            }
                        }
                        RoundOut {
                            buckets,
                            metrics: chunk_metrics,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(out) => out,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        // Merge the per-chunk metrics in chunk order (order-independent,
        // see `Metrics::fold_costs`; the round itself was charged above).
        for out in &outs {
            metrics.fold_costs(&out.metrics);
        }

        // Deliver: per target chunk, drain the sender-chunk buckets in order,
        // which reproduces the sequential (global sender order) delivery.
        let mut per_target: Vec<Vec<Vec<Targeted<P::Msg>>>> = Vec::new();
        per_target.resize_with(chunk_count, Vec::new);
        for out in outs {
            for (tc, bucket) in out.buckets.into_iter().enumerate() {
                per_target[tc].push(bucket);
            }
        }
        for_each_chunk_mut_in(
            &chunks,
            &mut pending,
            policy,
            per_target,
            |range, slice, lists| {
                for bucket in lists {
                    for (target, incoming) in bucket {
                        slice[target - range.start].push(incoming);
                    }
                }
            },
        );
        note_crashed_steps(&mut faults, &crash_mask, &outputs);
    }

    ProgramRun {
        outputs,
        metrics,
        shard: None,
        faults: None,
        ledger: program_ledger(graph, &metrics),
    }
}

/// The sharded execution path of [`run_program_with`].
///
/// Programs are stored shard-major (the nodes of shard 0 in ascending order,
/// then shard 1, …) so that each shard's programs form one contiguous
/// mutable slice a worker can own. Every round, each shard's still-running
/// programs step against a read-only snapshot of the round's inboxes;
/// shard-internal messages are delivered directly, boundary-crossing
/// messages travel through a long-lived [`distshard::ShardRouter`] (one
/// coalesced buffer per shard pair, drained in place so steady-state rounds
/// reuse its capacity). Each inbox is then normalized to
/// ascending sender order — exactly the sequential delivery order, since in
/// a simple graph a sender contributes at most one message per target per
/// round — which makes outputs, pending messages and metrics byte-identical
/// to [`run_program`].
fn run_program_sharded<P, F>(
    graph: &Graph,
    ids: &IdAssignment,
    model: Model,
    policy: ExecutionPolicy,
    max_rounds: u64,
    mut make_program: F,
    mut faults: Option<&mut FaultState>,
) -> ProgramRun<P::Output>
where
    P: NodeProgram + Send,
    P::Msg: Send + Sync,
    P::Output: Send,
    F: FnMut(NodeId) -> P,
{
    let n = graph.n();
    let max_degree = graph.max_degree();
    let mut metrics = Metrics::new();
    let limit = model.bandwidth_limit();
    let shards = policy.shards();
    // Cap the workers at the host's hardware slots: shard *assignment* stays
    // a function of `policy.threads()` alone, so results are bit-identical.
    let threads = policy.effective_threads().min(shards);

    let partition = distshard::bfs_partition(graph, shards);
    let report = partition.report(graph);
    let sharded = distshard::ShardedGraph::new(graph, partition);
    let mut router_stats = distshard::RouterStats::default();

    let contexts: Vec<NodeCtx> = graph
        .nodes()
        .map(|v| NodeCtx {
            node: v,
            id: ids.id(v),
            degree: graph.degree(v),
            ports: graph.neighbors(v).to_vec(),
            n,
            max_degree,
        })
        .collect();

    // Programs are *created* in node order (`make_program` may be stateful,
    // and the sequential runner calls it in node order), then rearranged into
    // shard-major storage.
    let mut by_node: Vec<Option<P>> = graph.nodes().map(|v| Some(make_program(v))).collect();
    let order: Vec<NodeId> = (0..shards)
        .flat_map(|s| sharded.nodes(s).iter().copied())
        .collect();
    let mut programs: Vec<P> = order
        .iter()
        .map(|&v| by_node[v.index()].take().expect("each node appears once"))
        .collect();
    drop(by_node);
    let mut outputs_sm: Vec<Option<P::Output>> = Vec::with_capacity(n);
    outputs_sm.resize_with(n, || None);

    // Round 0: init (sequential in node order, identical to `run_program`).
    let mut pending: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); n];
    {
        // Shard-major position of every node, to address `programs` during
        // the node-order init pass.
        let mut pos_of = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos_of[v.index()] = i;
        }
        for v in graph.nodes() {
            let sends = programs[pos_of[v.index()]].init(&contexts[v.index()]);
            for (edge, msg) in sends {
                assert!(
                    graph.is_endpoint(edge, v),
                    "{v} sent over non-incident edge {edge}"
                );
                metrics.record_message(msg.encoded_bits() as u64, limit);
                let target = graph.other_endpoint(edge, v);
                pending[target.index()].push(Incoming { from: v, edge, msg });
            }
        }
    }

    /// One undelivered message: destination node index plus inbox entry.
    type Targeted<M> = (usize, Incoming<M>);

    /// Per-shard result of one sharded round.
    struct ShardRoundOut<M> {
        local: Vec<Targeted<M>>,
        cross: Vec<(usize, u64, Targeted<M>)>,
        metrics: Metrics,
    }

    /// One shard's work unit for a round: its index plus mutable views of
    /// its programs and outputs.
    type ShardWork<'a, P, O> = (usize, &'a mut [P], &'a mut [Option<O>]);

    // The inbox double buffer (see `run_program_inner`) and the long-lived
    // cross-shard router, drained in place each round so its per-pair
    // buffers retain their capacity across rounds.
    let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); n];
    let mut router: distshard::ShardRouter<Targeted<P::Msg>> = distshard::ShardRouter::new(shards);
    for _round in 0..max_rounds {
        if outputs_sm.iter().all(Option::is_some) {
            break;
        }
        metrics.rounds += 1;
        let crash_mask = apply_round_faults(&mut faults, graph, metrics.rounds, &mut pending);
        std::mem::swap(&mut pending, &mut inboxes);
        for inbox in pending.iter_mut() {
            inbox.clear();
        }

        // Split programs and outputs into one contiguous slice per shard.
        let mut prog_slices: Vec<&mut [P]> = Vec::with_capacity(shards);
        let mut out_slices: Vec<&mut [Option<P::Output>]> = Vec::with_capacity(shards);
        let mut prog_rest: &mut [P] = &mut programs;
        let mut out_rest: &mut [Option<P::Output>] = &mut outputs_sm;
        for s in 0..shards {
            let len = sharded.nodes(s).len();
            let (ph, pt) = prog_rest.split_at_mut(len);
            prog_slices.push(ph);
            prog_rest = pt;
            let (oh, ot) = out_rest.split_at_mut(len);
            out_slices.push(oh);
            out_rest = ot;
        }

        // One worker per chunk of shards; each worker steps its shards'
        // programs in shard order, nodes in ascending order within a shard.
        let chunks = crate::executor::Chunks::new(shards, threads);
        let mut shard_work: Vec<Vec<ShardWork<'_, P, P::Output>>> =
            Vec::with_capacity(chunks.count());
        shard_work.resize_with(chunks.count(), Vec::new);
        for (s, (progs, outs)) in prog_slices.into_iter().zip(out_slices).enumerate() {
            shard_work[chunks.chunk_of(s)].push((s, progs, outs));
        }

        let crash_mask_ref = crash_mask.as_deref();
        let run_shard = |s: usize,
                         progs: &mut [P],
                         outs: &mut [Option<P::Output>],
                         inboxes: &[Vec<Incoming<P::Msg>>]|
         -> ShardRoundOut<P::Msg> {
            let mut chunk_metrics = Metrics::new();
            let mut local = Vec::new();
            let mut cross = Vec::new();
            for ((&v, program), output) in sharded
                .nodes(s)
                .iter()
                .zip(progs.iter_mut())
                .zip(outs.iter_mut())
            {
                if output.is_some() {
                    continue;
                }
                if crash_mask_ref.is_some_and(|mask| mask[v.index()]) {
                    continue;
                }
                match program.round(&contexts[v.index()], &inboxes[v.index()]) {
                    Step::Halt(out) => *output = Some(out),
                    Step::Send(sends) => {
                        for (edge, msg) in sends {
                            assert!(
                                graph.is_endpoint(edge, v),
                                "{v} sent over non-incident edge {edge}"
                            );
                            let bits = msg.encoded_bits() as u64;
                            chunk_metrics.record_message(bits, limit);
                            let target = graph.other_endpoint(edge, v);
                            let dst = sharded.partition().shard_of(target);
                            let item = (target.index(), Incoming { from: v, edge, msg });
                            if dst == s {
                                local.push(item);
                            } else {
                                cross.push((dst, bits, item));
                            }
                        }
                    }
                }
            }
            ShardRoundOut {
                local,
                cross,
                metrics: chunk_metrics,
            }
        };

        let outs: Vec<ShardRoundOut<P::Msg>> = if threads <= 1 {
            let inboxes = &inboxes;
            shard_work
                .into_iter()
                .flatten()
                .map(|(s, progs, outs)| run_shard(s, progs, outs, inboxes))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let run_shard = &run_shard;
                let inboxes = &inboxes;
                let handles: Vec<_> = shard_work
                    .into_iter()
                    .map(|work| {
                        scope.spawn(move || {
                            work.into_iter()
                                .map(|(s, progs, outs)| run_shard(s, progs, outs, inboxes))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| match h.join() {
                        Ok(out) => out,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
        };

        // Merge metrics in shard order (order-independent, see
        // `Metrics::fold_costs`; the round itself was charged above).
        for out in &outs {
            metrics.fold_costs(&out.metrics);
        }

        // Deliver: local messages directly, boundary messages through the
        // pooled router's coalesced per-pair buffers (drained in place);
        // then normalize every inbox to global sender order.
        for (src, out) in outs.into_iter().enumerate() {
            for (target, incoming) in out.local {
                pending[target].push(incoming);
            }
            for (dst, bits, item) in out.cross {
                router.push(src, dst, item, bits);
            }
        }
        let round_stats = router.drain_round_with(|_dst, _src, buffer| {
            for (target, incoming) in buffer.drain(..) {
                pending[target].push(incoming);
            }
        });
        router_stats.absorb(&round_stats);
        // Stable sort: unlike `Network::exchange_sync`, the strict layer
        // does not reject a program that sends twice over the same edge in
        // one round, so a target may hold several entries from one sender.
        // Same-sender entries arrive in send order (they share a
        // local/router bucket), and a stable sort preserves exactly that —
        // the sequential delivery order.
        for inbox in &mut pending {
            inbox.sort_by_key(|incoming| incoming.from);
        }
        // Crashed-step accounting against the shard-major output layout.
        if let (Some(state), Some(mask)) = (faults.as_deref_mut(), &crash_mask) {
            let suppressed = order
                .iter()
                .zip(&outputs_sm)
                .filter(|(v, output)| mask[v.index()] && output.is_none())
                .count() as u64;
            state.note_crashed_steps(suppressed);
        }
    }

    // Un-permute the shard-major outputs back into node order.
    let mut outputs: Vec<Option<P::Output>> = Vec::with_capacity(n);
    outputs.resize_with(n, || None);
    for (i, &v) in order.iter().enumerate() {
        outputs[v.index()] = outputs_sm[i].take();
    }

    ProgramRun {
        outputs,
        metrics,
        shard: Some(ShardRunStats {
            report,
            router: router_stats,
        }),
        faults: None,
        ledger: program_ledger(graph, &metrics),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;

    /// Flooding: every node learns the maximum identifier in the graph after
    /// `diameter` rounds of re-broadcasting the largest value seen.
    struct MaxIdFlood {
        best: u64,
        rounds_left: u32,
    }

    impl NodeProgram for MaxIdFlood {
        type Msg = u64;
        type Output = u64;

        fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u64)> {
            self.best = ctx.id;
            ctx.ports.iter().map(|p| (p.edge, self.best)).collect()
        }

        fn round(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Step<u64, u64> {
            for m in inbox {
                self.best = self.best.max(m.msg);
            }
            if self.rounds_left == 0 {
                return Step::Halt(self.best);
            }
            self.rounds_left -= 1;
            Step::Send(ctx.ports.iter().map(|p| (p.edge, self.best)).collect())
        }
    }

    #[test]
    fn flooding_finds_global_maximum() {
        let g = generators::cycle(12);
        let ids = IdAssignment::scattered(12, 3);
        let expected = (0..12).map(|v| ids.id(NodeId::new(v))).max().unwrap();
        let run = run_program(&g, &ids, Model::Local, 64, |_| MaxIdFlood {
            best: 0,
            rounds_left: 12,
        });
        assert!(run.all_halted());
        for out in run.expect_outputs() {
            assert_eq!(out, expected);
        }
    }

    /// BFS layer computation from the node with identifier 1.
    struct Bfs {
        dist: Option<u64>,
        announced: bool,
    }

    impl NodeProgram for Bfs {
        type Msg = u64;
        type Output = u64;

        fn init(&mut self, ctx: &NodeCtx) -> Vec<(EdgeId, u64)> {
            if ctx.id == 1 {
                self.dist = Some(0);
                self.announced = true;
                ctx.ports.iter().map(|p| (p.edge, 0u64)).collect()
            } else {
                vec![]
            }
        }

        fn round(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Step<u64, u64> {
            if let Some(d) = self.dist {
                // Already has a distance; wait one round after announcing so
                // neighbors receive it, then halt.
                if self.announced {
                    return Step::Halt(d);
                }
            }
            if self.dist.is_none() {
                if let Some(min_in) = inbox.iter().map(|m| m.msg).min() {
                    self.dist = Some(min_in + 1);
                    self.announced = true;
                    return Step::Send(ctx.ports.iter().map(|p| (p.edge, min_in + 1)).collect());
                }
            }
            Step::Send(vec![])
        }
    }

    #[test]
    fn bfs_computes_distances_on_a_path() {
        let g = generators::path(6);
        let ids = IdAssignment::contiguous(6); // node 0 has id 1
        let run = run_program(&g, &ids, Model::Local, 32, |_| Bfs {
            dist: None,
            announced: false,
        });
        assert!(run.all_halted());
        let outs = run.expect_outputs();
        for (v, d) in outs.iter().enumerate() {
            assert_eq!(*d, v as u64);
        }
    }

    #[test]
    fn round_limit_leaves_nodes_unhalted() {
        let g = generators::path(50);
        let ids = IdAssignment::contiguous(50);
        let run = run_program(&g, &ids, Model::Local, 3, |_| Bfs {
            dist: None,
            announced: false,
        });
        assert!(!run.all_halted());
        assert_eq!(run.metrics.rounds, 3);
    }

    #[test]
    fn parallel_program_run_matches_sequential_bit_for_bit() {
        let g = generators::random_regular(64, 6, 9).unwrap();
        let ids = IdAssignment::scattered(64, 5);
        let reference = run_program(&g, &ids, Model::Local, 48, |_| MaxIdFlood {
            best: 0,
            rounds_left: 20,
        });
        for threads in [2usize, 3, 8] {
            let run = run_program_with(
                &g,
                &ids,
                Model::Local,
                ExecutionPolicy::parallel(threads),
                48,
                |_| MaxIdFlood {
                    best: 0,
                    rounds_left: 20,
                },
            );
            assert_eq!(run.outputs, reference.outputs, "{threads} threads");
            assert_eq!(run.metrics, reference.metrics, "{threads} threads");
        }
    }

    #[test]
    fn parallel_bfs_matches_sequential_with_halting() {
        // BFS halts nodes at different rounds, exercising the halted-node
        // skip logic of the parallel round loop.
        let g = generators::path(37);
        let ids = IdAssignment::contiguous(37);
        let reference = run_program(&g, &ids, Model::Local, 64, |_| Bfs {
            dist: None,
            announced: false,
        });
        let run = run_program_with(
            &g,
            &ids,
            Model::Local,
            ExecutionPolicy::parallel(4),
            64,
            |_| Bfs {
                dist: None,
                announced: false,
            },
        );
        assert_eq!(run.outputs, reference.outputs);
        assert_eq!(run.metrics, reference.metrics);
    }

    #[test]
    fn run_program_with_sequential_policy_is_run_program() {
        let g = generators::cycle(10);
        let ids = IdAssignment::contiguous(10);
        let a = run_program(&g, &ids, Model::Local, 16, |_| MaxIdFlood {
            best: 0,
            rounds_left: 10,
        });
        let b = run_program_with(
            &g,
            &ids,
            Model::Local,
            ExecutionPolicy::Sequential,
            16,
            |_| MaxIdFlood {
                best: 0,
                rounds_left: 10,
            },
        );
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn congest_accounting_in_program_runner() {
        let g = generators::cycle(8);
        let ids = IdAssignment::contiguous(8);
        let run = run_program(&g, &ids, Model::Congest { bandwidth_bits: 2 }, 16, |_| {
            MaxIdFlood {
                best: 0,
                rounds_left: 8,
            }
        });
        // identifiers up to 8 need 4 bits > 2, so violations must be flagged
        assert!(run.metrics.congest_violations > 0);
        assert!(run.metrics.messages > 0);
        assert!(run.metrics.max_message_bits >= 4);
    }
}
