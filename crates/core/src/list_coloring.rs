//! `(degree+1)`-list edge coloring in the LOCAL model
//! (Section 7 / Appendix D, Theorem D.4 — the paper's Theorem 1.1).
//!
//! The driver follows Appendix D:
//!
//! 1. compute an `O(Δ²)`-vertex coloring (Linial, `O(log* n)` rounds);
//! 2. repeat `O(log Δ)` times: compute a constant-class defective coloring of
//!    the nodes with respect to the uncolored edges, and for every pair of
//!    classes partially color the induced bipartite graph via slack
//!    amplification (Lemma D.3) on top of the slack-`S` solver (Lemma D.2),
//!    reducing the uncolored degree by a constant factor;
//! 3. finish the remaining low-degree graph greedily.
//!
//! The slack-`S` solver recursively halves the global color space, using the
//! generalized defective 2-edge coloring of Corollary 5.7 with `λ_e` equal to
//! the fraction of the edge's list falling in the lower half (Lemma D.1), and
//! parks edges whose degree has become small ("passive") to be colored
//! greedily at the end in reverse order (Lemma D.2).
//!
//! Every single color assignment double-checks the colors already used by
//! adjacent edges, so the produced coloring is proper and list-compliant by
//! construction; the slack bookkeeping determines the round complexity and is
//! reported in the outcome for the experiments.

use crate::defective_edge::{defective_two_edge_coloring, lambda_from_lists};
use crate::defective_vertex::defective_four_coloring;
use crate::error::ColoringError;
use crate::greedy_finish::port_pair_edge_coloring;
use crate::linial::{linial_coloring, linial_edge_coloring};
use crate::params::ColoringParams;
use distgraph::{
    BipartiteGraph, Color, EdgeColoring, EdgeId, Graph, ListAssignment, Side, VertexColoring,
};
use distsim::{IdAssignment, LedgerEntry, Metrics, Model, Network, RoundLedger};

/// Statistics and output of a (degree+1)-list edge coloring run.
#[derive(Debug, Clone)]
pub struct ListColoringOutcome {
    /// The complete, proper, list-compliant edge coloring.
    pub coloring: EdgeColoring,
    /// Number of distinct colors used.
    pub colors_used: usize,
    /// Execution cost.
    pub metrics: Metrics,
    /// Outer degree-reduction iterations executed (the `O(log Δ)` loop).
    pub outer_iterations: u32,
    /// Number of slack-`S` solver invocations (Lemma D.2 calls).
    pub solver_calls: u64,
    /// Rounds spent in the greedy fallback that enforces the Lemma D.3
    /// degree-reduction contract when the iterative amplification hits its
    /// cap (0 means the contract was met without any fallback).
    pub fallback_rounds: u64,
    /// Rounds spent in the initial Linial coloring (the `O(log* n)` term).
    pub initial_coloring_rounds: u64,
    /// Per-level round ledger: which stage of the recursion charged which
    /// rounds at which residual degree (the polylog(Δ) regression witness).
    pub ledger: RoundLedger,
}

/// The slack constant `S = e²` used by Theorem D.4.
pub const SLACK_S: f64 = std::f64::consts::E * std::f64::consts::E;

/// The degree-reduction factor `k` used when invoking Lemma D.3
/// (the paper uses `k = 16c` for the `c`-class defective coloring; we use
/// 4 classes).
pub const AMPLIFY_K: usize = 32;

/// Computes the colors currently unavailable to edge `e`: the colors of its
/// already-colored adjacent edges in `graph`.
fn used_colors(
    graph: &Graph,
    coloring: &EdgeColoring,
    e: EdgeId,
) -> std::collections::HashSet<Color> {
    coloring.colors_around(graph, e)
}

/// The available list of `e`: its original list minus the used colors.
fn avail_list(
    graph: &Graph,
    lists: &ListAssignment,
    coloring: &EdgeColoring,
    e: EdgeId,
) -> Vec<Color> {
    let used = used_colors(graph, coloring, e);
    lists
        .list(e)
        .iter()
        .copied()
        .filter(|c| !used.contains(c))
        .collect()
}

/// Solves a slack-`S` list edge coloring instance `P(Δ̄, S, C)` on a 2-colored
/// bipartite graph (Lemma D.2): every edge of `bg` gets a color from its list
/// in `lists`, written into `coloring` (which refers to the *host* graph via
/// `edge_map`). Adjacency conflicts are checked against the host graph so the
/// global coloring stays proper.
#[allow(clippy::too_many_arguments)]
fn solve_slack_instance(
    host: &Graph,
    host_lists: &ListAssignment,
    coloring: &mut EdgeColoring,
    bg: &BipartiteGraph,
    edge_map: &[EdgeId],
    params: &ColoringParams,
    net: &mut Network<'_>,
    depth: u32,
) -> u64 {
    let piece = bg.graph();
    let m = piece.m();
    if m == 0 {
        return 0;
    }
    let space = host_lists.space_size().max(2);
    let levels = (space as f64).log2().floor() as u32;
    let eps_level = (1.0 / (space as f64).log2().max(1.0)).clamp(1e-3, 1.0);
    let passive_threshold = params.split_cutoff(piece.max_edge_degree().max(1), eps_level);

    // Per-edge color interval [lo, hi) over the global color space, and the
    // phase at which the edge became passive (None = still active).
    let mut interval: Vec<(Color, Color)> = vec![(0, space); m];
    let mut passive_at: Vec<Option<u32>> = vec![None; m];
    let rounds_before = net.rounds();

    for phase in 1..=levels {
        let phase_rounds_before = net.rounds();
        // Degree of each edge among still-active, same-interval edges.
        let active_edges: Vec<EdgeId> = piece
            .edges()
            .filter(|&e| {
                passive_at[e.index()].is_none() && !coloring.is_colored(edge_map[e.index()])
            })
            .collect();
        if active_edges.is_empty() {
            break;
        }
        let mut active_degree = vec![0usize; m];
        for &e in &active_edges {
            active_degree[e.index()] = piece
                .adjacent_edges(e)
                .into_iter()
                .filter(|f| {
                    passive_at[f.index()].is_none()
                        && interval[f.index()] == interval[e.index()]
                        && !coloring.is_colored(edge_map[f.index()])
                })
                .count();
        }
        // Edges whose active degree fell below the threshold become passive.
        for &e in &active_edges {
            if active_degree[e.index()] < passive_threshold {
                passive_at[e.index()] = Some(phase);
            }
        }
        // Group the remaining active edges by interval and split each group.
        let mut groups: std::collections::HashMap<(Color, Color), Vec<EdgeId>> =
            std::collections::HashMap::new();
        for &e in &active_edges {
            if passive_at[e.index()].is_none() {
                groups.entry(interval[e.index()]).or_default().push(e);
            }
        }
        let mut group_metrics: Vec<Metrics> = Vec::new();
        for ((lo, hi), edges) in groups {
            if hi - lo <= 1 || edges.is_empty() {
                continue;
            }
            let mid = lo + (hi - lo) / 2;
            let in_group: Vec<bool> = {
                let mut flags = vec![false; m];
                for &e in &edges {
                    flags[e.index()] = true;
                }
                flags
            };
            let (sub, sub_map) = bg.edge_subgraph(|e| in_group[e.index()]);
            if sub.graph().m() == 0 {
                continue;
            }
            // λ_e: fraction of the edge's *available* list in the lower half.
            let sub_lists = ListAssignment::new(
                space,
                sub.graph()
                    .edges()
                    .map(|e| {
                        let piece_edge = sub_map[e.index()];
                        avail_list(host, host_lists, coloring, edge_map[piece_edge.index()])
                            .into_iter()
                            .filter(|c| *c >= lo && *c < hi)
                            .collect()
                    })
                    .collect(),
            );
            let lambda = lambda_from_lists(sub.graph(), &sub_lists, lo, mid, hi);
            let orientation_params = params.orientation(eps_level);
            let mut child_net = net.child(sub.graph());
            let split =
                defective_two_edge_coloring(&sub, &lambda, &orientation_params, &mut child_net);
            group_metrics.push(child_net.metrics());
            net.absorb_ledger(child_net.take_ledger(), depth);
            for e in sub.graph().edges() {
                let piece_edge = sub_map[e.index()];
                interval[piece_edge.index()] = if split.is_red(e) {
                    (lo, mid)
                } else {
                    (mid, hi)
                };
            }
        }
        net.absorb_parallel(&group_metrics);
        net.record_ledger(LedgerEntry {
            depth,
            stage: "solve-split",
            delta_level: active_degree.iter().copied().max().unwrap_or(0),
            edges: active_edges.len(),
            rounds: net.rounds() - phase_rounds_before,
            defect_ratio: f64::NAN,
            fallback: false,
        });
    }

    let finish_rounds_before = net.rounds();
    // Greedy finishing, scheduled by the one-round port-pair coloring of the
    // piece: first the edges that stayed active to the end, then the passive
    // edges in reverse order of passivation (Lemma D.2's ordering). Colors
    // are preferentially taken from the edge's final interval; correctness is
    // guaranteed by always checking the host graph's adjacent colors.
    let schedule = port_pair_edge_coloring(bg, net);
    let mut order: Vec<(u32, EdgeId)> = piece
        .edges()
        .map(|e| {
            (
                levels + 1 - passive_at[e.index()].unwrap_or(levels + 1).min(levels + 1),
                e,
            )
        })
        .collect();
    // Sort: active edges (key 0) first, then passive in reverse phase order.
    order.sort_by_key(|&(key, e)| (key, e));
    for class in 0..schedule.palette_size() {
        let mut any = false;
        for &(_, e) in &order {
            if schedule.color(e) != Some(class) {
                continue;
            }
            let host_edge = edge_map[e.index()];
            if coloring.is_colored(host_edge) {
                continue;
            }
            let avail = avail_list(host, host_lists, coloring, host_edge);
            if avail.is_empty() {
                continue; // left for the outer fallback; cannot happen when the slack invariant holds
            }
            let (lo, hi) = interval[e.index()];
            let chosen = avail
                .iter()
                .copied()
                .find(|c| *c >= lo && *c < hi)
                .unwrap_or(avail[0]);
            coloring.set(host_edge, chosen);
            any = true;
        }
        if any {
            net.charge_rounds(1);
        }
    }
    net.record_ledger(LedgerEntry {
        depth,
        stage: "solve-finish",
        delta_level: piece.max_edge_degree(),
        edges: m,
        rounds: net.rounds() - finish_rounds_before,
        defect_ratio: f64::NAN,
        fallback: false,
    });
    net.rounds() - rounds_before
}

/// Outcome of one slack-amplification pass (our Lemma D.3 substitute).
struct AmplifyOutcome {
    solver_calls: u64,
    fallback_rounds: u64,
}

/// Partially colors the bipartite piece `bg` so that the edge degree of the
/// graph induced by its uncolored edges drops to at most
/// `Δ̄(piece)/AMPLIFY_K` (Lemma D.3).
///
/// The amplification splits the piece's *edges* into `2^t` groups by `t`
/// levels of the generalized defective 2-edge coloring with `λ_e = 1/2`
/// (Corollary 5.7), so that an edge's degree *within its own group* is about
/// a `2^{-t}` fraction of its degree while its list is untouched — i.e. each
/// group is a slack-`S` instance. The groups are then handed to the slack-`S`
/// solver one after the other (their colored edges shrink the lists of later
/// groups by at most as much as they shrink the degrees, preserving slack).
/// A greedy pass enforces the degree-reduction contract if some edges did not
/// qualify (this is recorded as `fallback_rounds`).
#[allow(clippy::too_many_arguments)] // internal pipeline stage; the args are the pipeline state
fn amplify_slack(
    host: &Graph,
    host_lists: &ListAssignment,
    coloring: &mut EdgeColoring,
    bg: &BipartiteGraph,
    edge_map: &[EdgeId],
    params: &ColoringParams,
    net: &mut Network<'_>,
    depth: u32,
) -> AmplifyOutcome {
    let piece = bg.graph();
    let mut solver_calls = 0u64;
    let mut fallback_rounds = 0u64;
    if piece.m() == 0 {
        return AmplifyOutcome {
            solver_calls,
            fallback_rounds,
        };
    }
    let target_degree = (piece.max_edge_degree() / AMPLIFY_K).max(2);

    let uncolored_degree = |coloring: &EdgeColoring, e: EdgeId| -> usize {
        piece
            .adjacent_edges(e)
            .into_iter()
            .filter(|f| !coloring.is_colored(edge_map[f.index()]))
            .count()
    };

    // Number of edge-splitting levels: enough that an edge's in-group degree
    // drops below |L_e| / S ≈ deg(e) / S. Three levels (8 groups) suffice:
    // an edge with in-group degree ≈ deg(e)/8 qualifies as slack-S since
    // deg(e) + 1 > S·deg(e)/8 ≈ 0.92·deg(e); each extra level would double
    // the number of per-level orientation calls charged to the round count
    // without being needed for qualification.
    let levels = (SLACK_S.log2().ceil() as usize).max(3);
    // The uniform λ = 1/2 split only feeds the *measured* slack-S
    // qualification below, so a loose multiplicative guarantee is fine; a
    // large ε makes the orientation's per-phase threshold decay (1−ε/8)^φ
    // geometric instead of near-flat, which batches the degree range into
    // O(log Δ̄) productive phases rather than Θ(Δ̄) of them.
    let split_eps = (2.0 * params.eps).clamp(1e-3, 1.0);

    // Level-by-level defective splitting of the still-uncolored piece edges.
    // Splitting stops early once every uncolored edge already qualifies as
    // slack-S in its current group (its available list is S times larger
    // than its in-group degree): further levels would charge orientation
    // rounds without changing which edges the solver accepts. With full
    // `2Δ−1` palettes this typically takes 2 levels instead of the
    // worst-case 3.
    let mut group: Vec<usize> = vec![0; piece.m()];
    for _level in 0..levels {
        let level_rounds_before = net.rounds();
        let uncolored_edges: Vec<EdgeId> = piece
            .edges()
            .filter(|&e| !coloring.is_colored(edge_map[e.index()]))
            .collect();
        let all_qualify = uncolored_edges.iter().all(|&e| {
            let in_group_degree = piece
                .adjacent_edges(e)
                .into_iter()
                .filter(|f| {
                    group[f.index()] == group[e.index()]
                        && !coloring.is_colored(edge_map[f.index()])
                })
                .count();
            let avail = avail_list(host, host_lists, coloring, edge_map[e.index()]);
            avail.len() as f64 > SLACK_S * in_group_degree as f64
        });
        if all_qualify {
            break;
        }
        let groups_present: std::collections::BTreeSet<usize> =
            uncolored_edges.iter().map(|e| group[e.index()]).collect();
        let mut level_metrics: Vec<Metrics> = Vec::new();
        for g in groups_present {
            let (sub, sub_map) = bg.edge_subgraph(|e| {
                group[e.index()] == g && !coloring.is_colored(edge_map[e.index()])
            });
            if sub.graph().m() == 0 {
                continue;
            }
            let lambda = vec![0.5; sub.graph().m()];
            let orientation_params = params.orientation(split_eps);
            let mut child_net = net.child(sub.graph());
            let split =
                defective_two_edge_coloring(&sub, &lambda, &orientation_params, &mut child_net);
            level_metrics.push(child_net.metrics());
            net.absorb_ledger(child_net.take_ledger(), depth);
            for e in sub.graph().edges() {
                let piece_edge = sub_map[e.index()];
                group[piece_edge.index()] = 2 * g + if split.is_red(e) { 0 } else { 1 };
            }
        }
        net.absorb_parallel(&level_metrics);
        net.record_ledger(LedgerEntry {
            depth,
            stage: "amplify-split",
            delta_level: piece.max_edge_degree(),
            edges: uncolored_edges.len(),
            rounds: net.rounds() - level_rounds_before,
            defect_ratio: f64::NAN,
            fallback: false,
        });
    }

    // Process the groups sequentially; within each group, the edges whose
    // available list is S times larger than their in-group uncolored degree
    // form a slack-S instance for Lemma D.2.
    let groups_present: std::collections::BTreeSet<usize> = piece
        .edges()
        .filter(|&e| !coloring.is_colored(edge_map[e.index()]))
        .map(|e| group[e.index()])
        .collect();
    for g in groups_present {
        let qualifies = |e: EdgeId, coloring: &EdgeColoring| -> bool {
            if group[e.index()] != g || coloring.is_colored(edge_map[e.index()]) {
                return false;
            }
            let avail = avail_list(host, host_lists, coloring, edge_map[e.index()]);
            let in_group_degree = piece
                .adjacent_edges(e)
                .into_iter()
                .filter(|f| group[f.index()] == g && !coloring.is_colored(edge_map[f.index()]))
                .count();
            avail.len() as f64 > SLACK_S * in_group_degree as f64
        };
        let selected: Vec<EdgeId> = piece.edges().filter(|&e| qualifies(e, coloring)).collect();
        if selected.is_empty() {
            continue;
        }
        let mut flags = vec![false; piece.m()];
        for &e in &selected {
            flags[e.index()] = true;
        }
        let (sub, sub_map) = bg.edge_subgraph(|e| flags[e.index()]);
        let sub_to_host: Vec<EdgeId> = sub_map.iter().map(|pe| edge_map[pe.index()]).collect();
        let sub_lists = ListAssignment::new(
            host_lists.space_size(),
            sub.graph()
                .edges()
                .map(|e| avail_list(host, host_lists, coloring, sub_to_host[e.index()]))
                .collect(),
        );
        let mut child_net = net.child(sub.graph());
        solve_slack_instance(
            host,
            &sub_lists_as_host_view(host, &sub_lists, &sub_to_host),
            coloring,
            &sub,
            &sub_to_host,
            params,
            &mut child_net,
            depth,
        );
        solver_calls += 1;
        net.record_ledger(LedgerEntry {
            depth,
            stage: "slack-solve",
            delta_level: sub.graph().max_edge_degree(),
            edges: sub.graph().m(),
            rounds: child_net.metrics().rounds,
            defect_ratio: f64::NAN,
            fallback: false,
        });
        net.absorb_ledger(child_net.take_ledger(), 0);
        net.absorb_sequential(&child_net.metrics());
    }

    // Fallback: if the degree target is still not met, greedily color every
    // edge whose uncolored degree exceeds the target (their lists always have
    // a free color thanks to the degree+1 invariant).
    let heavy: Vec<EdgeId> = piece
        .edges()
        .filter(|&e| {
            !coloring.is_colored(edge_map[e.index()])
                && uncolored_degree(coloring, e) > target_degree
        })
        .collect();
    if !heavy.is_empty() {
        let rounds_before = net.rounds();
        let schedule = port_pair_edge_coloring(bg, net);
        for class in 0..schedule.palette_size() {
            let mut any = false;
            for &e in &heavy {
                if schedule.color(e) != Some(class) || coloring.is_colored(edge_map[e.index()]) {
                    continue;
                }
                let avail = avail_list(host, host_lists, coloring, edge_map[e.index()]);
                if let Some(&c) = avail.first() {
                    coloring.set(edge_map[e.index()], c);
                    any = true;
                }
            }
            if any {
                net.charge_rounds(1);
            }
        }
        fallback_rounds = net.rounds() - rounds_before;
        net.record_ledger(LedgerEntry {
            depth,
            stage: "amplify-fallback",
            delta_level: piece.max_edge_degree(),
            edges: heavy.len(),
            rounds: fallback_rounds,
            defect_ratio: f64::NAN,
            fallback: true,
        });
    }

    AmplifyOutcome {
        solver_calls,
        fallback_rounds,
    }
}

/// Builds a host-indexed view of piece-local lists so that
/// [`solve_slack_instance`] can read `lists.list(host_edge)` uniformly.
fn sub_lists_as_host_view(
    host: &Graph,
    sub_lists: &ListAssignment,
    sub_to_host: &[EdgeId],
) -> ListAssignment {
    let mut lists = vec![Vec::new(); host.m()];
    for (sub_idx, host_edge) in sub_to_host.iter().enumerate() {
        lists[host_edge.index()] = sub_lists.list(EdgeId::new(sub_idx)).to_vec();
    }
    ListAssignment::new(sub_lists.space_size(), lists)
}

/// Computes a `(degree+1)`-list edge coloring of `graph` in the LOCAL model
/// (Theorem 1.1 / Theorem D.4).
///
/// # Errors
///
/// Returns an error if some list is smaller than `deg_G(e) + 1` or the color
/// space is larger than `poly(Δ)` (the theorem's assumption).
pub fn list_edge_coloring(
    graph: &Graph,
    lists: &ListAssignment,
    ids: &IdAssignment,
    params: &ColoringParams,
) -> Result<ListColoringOutcome, ColoringError> {
    // Validate the (degree+1) requirement.
    for e in graph.edges() {
        let need = graph.edge_degree(e) + 1;
        if lists.list_size(e) < need {
            return Err(ColoringError::ListTooSmall {
                edge: e.index(),
                list_size: lists.list_size(e),
                degree: graph.edge_degree(e),
            });
        }
    }
    let dbar = graph.max_edge_degree().max(1);
    let allowed_space = (dbar * dbar * dbar * dbar).max(4096);
    if lists.space_size() > allowed_space {
        return Err(ColoringError::ColorSpaceTooLarge {
            space: lists.space_size(),
            allowed: allowed_space,
        });
    }

    let mut net = Network::with_policy(graph, Model::Local, params.policy);
    let mut coloring = EdgeColoring::empty(graph.m());
    let mut solver_calls = 0u64;
    let mut fallback_rounds = 0u64;
    let mut outer_iterations = 0u32;

    if graph.m() == 0 {
        return Ok(ListColoringOutcome {
            coloring,
            colors_used: 0,
            metrics: net.metrics(),
            outer_iterations,
            solver_calls,
            fallback_rounds,
            initial_coloring_rounds: 0,
            ledger: RoundLedger::new(),
        });
    }

    // Step 1: O(Δ²)-vertex coloring in O(log* n) rounds.
    let linial = linial_coloring(graph, ids, &mut net);
    let initial_coloring_rounds = net.rounds();
    net.record_ledger(LedgerEntry {
        depth: 0,
        stage: "linial",
        delta_level: dbar,
        edges: graph.m(),
        rounds: initial_coloring_rounds,
        defect_ratio: f64::NAN,
        fallback: false,
    });
    let finish_cutoff = params.low_degree_cutoff.max(4);

    // Step 2: O(log Δ) degree-reduction iterations.
    for _ in 0..params.max_outer_iterations {
        let (uncolored, edge_map) = graph.edge_subgraph(|e| !coloring.is_colored(e));
        if uncolored.m() == 0 || uncolored.max_edge_degree() <= finish_cutoff {
            break;
        }
        outer_iterations += 1;
        let depth = outer_iterations;
        let degree_before = uncolored.max_edge_degree();
        let iter_rounds_before = net.rounds();

        // Constant-class defective coloring of the uncolored graph
        // (4 classes, monochromatic degree ≈ Δ/2; see DESIGN.md).
        let base = VertexColoring::from_vec(linial.coloring.as_slice().to_vec());
        let d4_rounds_before = net.rounds();
        let classes = defective_four_coloring(&uncolored, &base, linial.palette, 0.25, &mut net);
        net.record_ledger(LedgerEntry {
            depth,
            stage: "defective4",
            delta_level: degree_before,
            edges: uncolored.m(),
            rounds: net.rounds() - d4_rounds_before,
            defect_ratio: f64::NAN,
            fallback: false,
        });

        // For every unordered pair of distinct classes, color the bipartite
        // graph of uncolored edges crossing that pair. The 6 pairs of K₄
        // decompose into 3 perfect matchings; the two pairs of a matching
        // touch disjoint class sets, so their pieces are vertex-disjoint and
        // can be processed as one union bipartite piece in a single pass —
        // simultaneous color choices cannot conflict across disjoint nodes.
        // This makes each outer iteration cost 3 amplification passes
        // instead of 6 without weakening the Lemma D.3 contract.
        const PAIR_MATCHINGS: [[(usize, usize); 2]; 3] =
            [[(0, 1), (2, 3)], [(0, 2), (1, 3)], [(0, 3), (1, 2)]];
        for matching in PAIR_MATCHINGS {
            let crosses = |e: EdgeId| {
                let (x, y) = uncolored.endpoints(e);
                let (cx, cy) = (classes.color(x), classes.color(y));
                matching
                    .iter()
                    .any(|&(a, b)| (cx == a && cy == b) || (cx == b && cy == a))
            };
            {
                let (piece, piece_map) = uncolored
                    .edge_subgraph(|e| !coloring.is_colored(edge_map[e.index()]) && crosses(e));
                if piece.m() == 0 {
                    continue;
                }
                // U = the first class of each matched pair, V = the second.
                let sides: Vec<Side> = piece
                    .nodes()
                    .map(|v| {
                        let c = classes.color(v);
                        if matching.iter().any(|&(a, _)| c == a) {
                            Side::U
                        } else {
                            Side::V
                        }
                    })
                    .collect();
                let bipartite = BipartiteGraph::new(piece, sides)
                    .expect("piece edges cross the (a, b) class pair");
                // Map piece edges to host edges.
                let to_host: Vec<EdgeId> =
                    piece_map.iter().map(|ue| edge_map[ue.index()]).collect();
                let outcome = amplify_slack(
                    graph,
                    lists,
                    &mut coloring,
                    &bipartite,
                    &to_host,
                    params,
                    &mut net,
                    depth,
                );
                solver_calls += outcome.solver_calls;
                fallback_rounds += outcome.fallback_rounds;
            }
        }

        // Record the iteration's degree-reduction contract: the residual
        // uncolored degree must shrink by a constant factor per level for the
        // outer loop to stay O(log Δ).
        let (residual, _) = graph.edge_subgraph(|e| !coloring.is_colored(e));
        let degree_after = residual.max_edge_degree();
        // Stall guard: the pipeline is deterministic, so an iteration that
        // colors no edge would recompute the identical defective coloring on
        // the identical residual forever, burning max_outer_iterations ×
        // (defective-coloring cost) rounds for nothing. Break to the greedy
        // finisher instead and mark the iteration as a fallback in the
        // ledger.
        let stalled = residual.m() == uncolored.m();
        net.record_ledger(LedgerEntry {
            depth,
            stage: "outer-iter",
            delta_level: degree_before,
            edges: residual.m(),
            rounds: net.rounds() - iter_rounds_before,
            defect_ratio: degree_after as f64 / degree_before.max(1) as f64,
            fallback: stalled,
        });
        if stalled {
            break;
        }
    }

    // Step 3: finish the low-degree remainder greedily from the lists.
    let (rest, rest_map) = graph.edge_subgraph(|e| !coloring.is_colored(e));
    let finish_rounds_before = net.rounds();
    if rest.m() > 0 {
        let rest_ids = IdAssignment::from_vec(rest.nodes().map(|v| ids.id(v)).collect());
        let schedule = linial_edge_coloring(&rest, &rest_ids, &mut net);
        // Schedule classes on the remainder, choosing from the available lists.
        for class in 0..schedule.palette_size() {
            let mut any = false;
            for e in rest.edges() {
                if schedule.color(e) != Some(class) {
                    continue;
                }
                let host_edge = rest_map[e.index()];
                if coloring.is_colored(host_edge) {
                    continue;
                }
                let avail = avail_list(graph, lists, &coloring, host_edge);
                let c = *avail
                    .first()
                    .expect("the degree+1 invariant guarantees a free color");
                coloring.set(host_edge, c);
                any = true;
            }
            if any {
                net.charge_rounds(1);
            }
        }
        net.record_ledger(LedgerEntry {
            depth: 0,
            stage: "greedy-finish",
            delta_level: rest.max_edge_degree(),
            edges: rest.m(),
            rounds: net.rounds() - finish_rounds_before,
            defect_ratio: f64::NAN,
            fallback: false,
        });
    }

    Ok(ListColoringOutcome {
        colors_used: coloring.colors_used(),
        coloring,
        metrics: net.metrics(),
        outer_iterations,
        solver_calls,
        fallback_rounds,
        initial_coloring_rounds,
        ledger: net.take_ledger(),
    })
}

/// The default palette budget for a graph of maximum degree `delta`:
/// `max(2Δ − 1, 1)`, the classical bound of Theorem 1.1's special case.
///
/// [`color_edges_local`] and every layer of the dynamic recoloring subsystem
/// (repair, benches, differential tests) derive their budgets from this one
/// function so they cannot drift apart.
pub fn default_palette(delta: usize) -> usize {
    (2 * delta).saturating_sub(1).max(1)
}

/// Computes a `(2Δ−1)`-edge coloring of `graph` in the LOCAL model
/// (the classical special case of Theorem 1.1: every edge's list is the full
/// palette `{0, ..., 2Δ−2}`).
///
/// # Examples
///
/// ```
/// use distgraph::generators;
/// use distsim::IdAssignment;
/// use edgecolor::{color_edges_local, ColoringParams, ExecutionPolicy};
///
/// let graph = generators::grid_torus(8, 8); // Δ = 4
/// let ids = IdAssignment::scattered(graph.n(), 1);
/// let outcome = color_edges_local(&graph, &ids, &ColoringParams::new(0.5))?;
/// assert!(outcome.coloring.is_complete());
/// assert!(outcome.coloring.palette_size() <= 2 * graph.max_degree() - 1);
///
/// // Execution policies never change the result, only how rounds execute:
/// let sharded = ColoringParams::new(0.5).with_policy(ExecutionPolicy::sharded(4, 2));
/// assert_eq!(color_edges_local(&graph, &ids, &sharded)?.coloring, outcome.coloring);
/// # Ok::<(), edgecolor::ColoringError>(())
/// ```
pub fn color_edges_local(
    graph: &Graph,
    ids: &IdAssignment,
    params: &ColoringParams,
) -> Result<ListColoringOutcome, ColoringError> {
    let palette = default_palette(graph.max_degree());
    let lists = ListAssignment::full_palette(graph, palette);
    list_edge_coloring(graph, &lists, ids, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;
    use edgecolor_verify::{
        check_complete, check_list_compliance, check_palette_size, check_proper_edge_coloring,
    };
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_outcome(graph: &Graph, lists: &ListAssignment, outcome: &ListColoringOutcome) {
        check_proper_edge_coloring(graph, &outcome.coloring).assert_ok();
        check_complete(graph, &outcome.coloring).assert_ok();
        check_list_compliance(graph, lists, &outcome.coloring).assert_ok();
    }

    #[test]
    fn two_delta_minus_one_coloring_on_regular_graph() {
        let g = generators::random_regular(60, 6, 1).unwrap();
        let ids = IdAssignment::scattered(g.n(), 3);
        let params = ColoringParams::new(0.5);
        let outcome = color_edges_local(&g, &ids, &params).unwrap();
        let lists = ListAssignment::full_palette(&g, 2 * g.max_degree() - 1);
        check_outcome(&g, &lists, &outcome);
        check_palette_size(&outcome.coloring, 2 * g.max_degree() - 1).assert_ok();
    }

    #[test]
    fn degree_plus_one_lists_are_respected() {
        let g = generators::random_regular(50, 5, 9).unwrap();
        let lists = ListAssignment::degree_plus_one(&g);
        let ids = IdAssignment::contiguous(g.n());
        let params = ColoringParams::new(0.5);
        let outcome = list_edge_coloring(&g, &lists, &ids, &params).unwrap();
        check_outcome(&g, &lists, &outcome);
        check_palette_size(&outcome.coloring, g.max_edge_degree() + 1).assert_ok();
    }

    #[test]
    fn adversarial_random_lists() {
        // Random lists of size deg(e)+1 drawn from a larger color space:
        // list coloring proper, every color from the list.
        let g = generators::random_regular(40, 6, 4).unwrap();
        let space = 4 * g.max_degree();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let lists = ListAssignment::new(
            space,
            g.edges()
                .map(|e| {
                    let need = g.edge_degree(e) + 1;
                    let mut list = std::collections::HashSet::new();
                    while list.len() < need {
                        list.insert(rng.gen_range(0..space));
                    }
                    list.into_iter().collect()
                })
                .collect(),
        );
        let ids = IdAssignment::scattered(g.n(), 11);
        let params = ColoringParams::new(0.5);
        let outcome = list_edge_coloring(&g, &lists, &ids, &params).unwrap();
        check_outcome(&g, &lists, &outcome);
    }

    #[test]
    fn larger_degree_graph_exercises_the_outer_loop() {
        let bg = generators::regular_bipartite(40, 24, 5).unwrap();
        let g = bg.graph().clone();
        let ids = IdAssignment::contiguous(g.n());
        let params = ColoringParams::new(0.5);
        let outcome = color_edges_local(&g, &ids, &params).unwrap();
        let lists = ListAssignment::full_palette(&g, 2 * g.max_degree() - 1);
        check_outcome(&g, &lists, &outcome);
        assert!(
            outcome.outer_iterations >= 1,
            "expected the degree-reduction loop to run"
        );
        assert!(
            outcome.solver_calls >= 1,
            "expected at least one Lemma D.2 call"
        );
    }

    #[test]
    fn rejects_too_small_lists() {
        let g = generators::star(4);
        let lists = ListAssignment::new(2, vec![vec![0, 1]; g.m()]);
        let ids = IdAssignment::contiguous(g.n());
        let params = ColoringParams::new(0.5);
        let err = list_edge_coloring(&g, &lists, &ids, &params).unwrap_err();
        assert!(matches!(err, ColoringError::ListTooSmall { .. }));
    }

    #[test]
    fn rejects_oversized_color_space() {
        let g = generators::path(4);
        let lists = ListAssignment::new(1 << 20, vec![(0..10).collect(); g.m()]);
        let ids = IdAssignment::contiguous(g.n());
        let params = ColoringParams::new(0.5);
        let err = list_edge_coloring(&g, &lists, &ids, &params).unwrap_err();
        assert!(matches!(err, ColoringError::ColorSpaceTooLarge { .. }));
    }

    #[test]
    fn handles_paths_trees_and_empty_graphs() {
        let params = ColoringParams::new(0.5);
        for g in [
            generators::path(10),
            generators::random_tree(30, 2),
            Graph::from_edges(5, &[]).unwrap(),
        ] {
            let ids = IdAssignment::contiguous(g.n());
            let outcome = color_edges_local(&g, &ids, &params).unwrap();
            if g.m() > 0 {
                let lists = ListAssignment::full_palette(&g, (2 * g.max_degree()).max(1) - 1);
                check_outcome(&g, &lists, &outcome);
            } else {
                assert_eq!(outcome.colors_used, 0);
            }
        }
    }

    #[test]
    fn paper_profile_still_produces_valid_colorings() {
        let g = generators::random_regular(40, 8, 2).unwrap();
        let ids = IdAssignment::contiguous(g.n());
        let params = ColoringParams::paper(0.5);
        let outcome = color_edges_local(&g, &ids, &params).unwrap();
        let lists = ListAssignment::full_palette(&g, 2 * g.max_degree() - 1);
        check_outcome(&g, &lists, &outcome);
    }
}
