//! `serve-loadgen`: replay a seeded read/write mix against a daemon.
//!
//! ```text
//! serve-loadgen --smoke
//!     Spawn an in-process daemon on a small torus, drive it, and fail
//!     unless qps is nonzero, no protocol errors occurred and the final
//!     coloring passes the checkers (the `make serve-smoke` CI gate).
//!
//! serve-loadgen --pipeline-smoke
//!     Spawn an in-process daemon serving TWO toruses, drive it with
//!     pipelined connections spread across both graphs, and fail unless
//!     every tenant's admission counts match the deterministic expectation
//!     exactly and both final colorings pass the checkers (the
//!     `make serve-pipeline-smoke` CI gate).
//!
//! serve-loadgen --addr HOST:PORT --rows R --cols C
//!               [--clients N] [--ops K] [--read-permille P] [--seed S]
//!               [--graphs G] [--inflight W]
//!     Replay against an externally started daemon whose graphs 0..G are
//!     all RxC toruses (e.g. `serve-daemon --torus RxC --torus RxC`).
//! ```

use distgraph::generators;
use distserve::loadgen::{expected_counts, run_against, summary, LoadgenConfig};
use distserve::{Client, DaemonHandle, ServeConfig, ServerCore, Tenant};
use edgecolor_verify::{check_complete, check_proper_edge_coloring};
use std::net::SocketAddr;
use std::process::ExitCode;

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        return smoke();
    }
    if args.iter().any(|a| a == "--pipeline-smoke") {
        return pipeline_smoke();
    }
    let Some(addr) = parse_flag(&args, "--addr").and_then(|a| a.parse::<SocketAddr>().ok()) else {
        eprintln!(
            "usage: serve-loadgen --smoke | --pipeline-smoke | --addr HOST:PORT --rows R --cols C \
             [--clients N] [--ops K] [--read-permille P] [--seed S] [--graphs G] [--inflight W]"
        );
        return ExitCode::FAILURE;
    };
    let dim = |flag: &str| parse_flag(&args, flag).and_then(|v| v.parse::<usize>().ok());
    let (Some(rows), Some(cols)) = (dim("--rows"), dim("--cols")) else {
        eprintln!("serve-loadgen: --rows and --cols are required (the daemon's torus dimensions)");
        return ExitCode::FAILURE;
    };
    let cfg = LoadgenConfig {
        rows,
        cols,
        clients: dim("--clients").unwrap_or(4),
        ops_per_client: dim("--ops").unwrap_or(500),
        read_permille: dim("--read-permille").unwrap_or(700) as u32,
        seed: parse_flag(&args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(42),
        graphs: dim("--graphs").unwrap_or(1),
        inflight: dim("--inflight").unwrap_or(1),
    };
    match run_against(addr, &cfg) {
        Ok(report) => {
            let metrics = Client::connect(addr)
                .ok()
                .and_then(|mut c| c.metrics().ok())
                .unwrap_or_default();
            println!("{}", summary(&report, &metrics));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `make serve-smoke` gate: in-process daemon + loadgen on a small
/// torus, with hard assertions on the things that must never regress.
fn smoke() -> ExitCode {
    let (rows, cols) = (30, 30);
    let config = ServeConfig::default();
    let core = match ServerCore::new(generators::grid_torus(rows, cols), config) {
        Ok(core) => core,
        Err(e) => {
            eprintln!("serve-smoke: boot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = match DaemonHandle::spawn(core) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve-smoke: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = LoadgenConfig {
        rows,
        cols,
        clients: 4,
        ops_per_client: 300,
        ..LoadgenConfig::default()
    };
    let report = match run_against(daemon.addr(), &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-smoke: loadgen failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(daemon.addr()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve-smoke: connect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if client.flush().is_err() {
        eprintln!("serve-smoke: flush failed");
        return ExitCode::FAILURE;
    }
    let metrics = match client.metrics() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("serve-smoke: metrics failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", summary(&report, &metrics));

    let core = daemon.core().clone();
    let state = core.state_snapshot();
    let mut failures = Vec::new();
    if report.qps <= 0.0 {
        failures.push("qps is zero".to_string());
    }
    if metrics.protocol_errors != 0 {
        failures.push(format!("{} protocol errors", metrics.protocol_errors));
    }
    if report.errors != 0 {
        failures.push(format!("{} unexpected responses", report.errors));
    }
    if core.internal_errors() != 0 {
        failures.push(format!("{} internal errors", core.internal_errors()));
    }
    if report.rejected != cfg.clients as u64 {
        failures.push(format!(
            "expected {} deliberate duplicate rejects, saw {}",
            cfg.clients, report.rejected
        ));
    }
    let graph = state.dynamic().graph();
    if !check_proper_edge_coloring(graph, state.coloring()).is_ok()
        || !check_complete(graph, state.coloring()).is_ok()
    {
        failures.push("final coloring fails the checkers".to_string());
    }
    daemon.shutdown();
    finish("serve-smoke", failures)
}

/// The `make serve-pipeline-smoke` gate: one daemon, two torus tenants,
/// pipelined connections spread across both — every tenant's admission
/// counters must match the deterministic expectation *exactly*, and both
/// final colorings must pass the checkers.
fn pipeline_smoke() -> ExitCode {
    let (rows, cols) = (24, 24);
    let config = ServeConfig::default();
    let tenant = |k: usize| {
        Tenant::new(
            format!("t{k}"),
            generators::grid_torus(rows, cols),
            config.clone(),
        )
    };
    let core = match tenant(0).and_then(|a| Ok(ServerCore::from_tenants(vec![a, tenant(1)?]))) {
        Ok(core) => core,
        Err(e) => {
            eprintln!("serve-pipeline-smoke: boot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = match DaemonHandle::spawn(core) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve-pipeline-smoke: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = LoadgenConfig {
        rows,
        cols,
        clients: 6,
        ops_per_client: 250,
        graphs: 2,
        inflight: 8,
        ..LoadgenConfig::default()
    };
    let report = match run_against(daemon.addr(), &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-pipeline-smoke: loadgen failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = Vec::new();
    let mut client = match Client::connect(daemon.addr()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve-pipeline-smoke: connect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let expected = expected_counts(&cfg);
    for (gid, &(accepted, dup_rejects, inserts)) in expected.iter().enumerate() {
        client.set_graph(gid as u32);
        if client.flush().is_err() {
            failures.push(format!("graph {gid}: flush failed"));
            continue;
        }
        let metrics = match client.metrics() {
            Ok(m) => m,
            Err(e) => {
                failures.push(format!("graph {gid}: metrics failed: {e}"));
                continue;
            }
        };
        println!("graph {gid}: {}", summary(&report, &metrics));
        if metrics.accepted != accepted {
            failures.push(format!(
                "graph {gid}: expected exactly {accepted} admissions, saw {}",
                metrics.accepted
            ));
        }
        // Server-side `rejected` also counts host-dependent backpressure
        // rejects, so only its floor is deterministic; the exact duplicate
        // total is asserted client-side below.
        if metrics.rejected < dup_rejects {
            failures.push(format!(
                "graph {gid}: expected at least {dup_rejects} duplicate rejects, saw {}",
                metrics.rejected
            ));
        }
        if metrics.repaired_edges != inserts {
            failures.push(format!(
                "graph {gid}: expected exactly {inserts} repaired edges, saw {}",
                metrics.repaired_edges
            ));
        }
        if metrics.full_recolors != 0 {
            failures.push(format!(
                "graph {gid}: {} unexpected full recolors",
                metrics.full_recolors
            ));
        }
        let tenant = &daemon.core().tenants()[gid];
        let state = tenant.state_snapshot();
        let graph = state.dynamic().graph();
        if !check_proper_edge_coloring(graph, state.coloring()).is_ok()
            || !check_complete(graph, state.coloring()).is_ok()
        {
            failures.push(format!("graph {gid}: final coloring fails the checkers"));
        }
    }
    if report.errors != 0 {
        failures.push(format!("{} unexpected responses", report.errors));
    }
    if daemon.core().internal_errors() != 0 {
        failures.push(format!(
            "{} internal errors",
            daemon.core().internal_errors()
        ));
    }
    let expected_rejects: u64 = expected.iter().map(|e| e.1).sum();
    if report.rejected != expected_rejects {
        failures.push(format!(
            "client side: expected {expected_rejects} duplicate rejects, saw {}",
            report.rejected
        ));
    }
    daemon.shutdown();
    finish("serve-pipeline-smoke", failures)
}

fn finish(gate: &str, failures: Vec<String>) -> ExitCode {
    if failures.is_empty() {
        println!("{gate}: OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("{gate}: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
