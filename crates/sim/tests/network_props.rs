//! Property-based tests for the round simulator's accounting: message
//! conservation, round charging, and the CONGEST bandwidth cap driven by
//! `Payload` size accounting.

use distgraph::{Graph, NodeId};
use distsim::{bits_for, Model, Network, Payload};
use proptest::prelude::*;

/// A random simple graph as `(n, sanitized edge list)`.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v) in pairs {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(key);
                }
            }
            Graph::from_edges(n, &edges).expect("sanitized edges are valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every message handed to `exchange` is delivered exactly once, to the
    /// other endpoint of the edge it was sent over, and the metrics count
    /// exactly the sent messages.
    #[test]
    fn exchange_conserves_messages((g, mask) in arb_graph().prop_flat_map(|g| {
        let m = g.m();
        proptest::collection::vec(0u8..=1, m.max(1)).prop_map(move |mask| (g.clone(), mask))
    })) {
        let mut net = Network::new(&g, Model::Local);
        // Each node sends over each incident edge whose mask bit is set,
        // tagging the message with (sender, edge) so delivery can be audited.
        let mut sent = 0u64;
        for e in g.edges() {
            if mask[e.index()] == 1 {
                sent += 2; // both endpoints send over the edge
            }
        }
        let mail = net.exchange(|v| {
            g.neighbors(v)
                .iter()
                .filter(|nb| mask[nb.edge.index()] == 1)
                .map(|nb| (nb.edge, (v.index() as u64, nb.edge.index() as u64)))
                .collect()
        });
        prop_assert_eq!(mail.total() as u64, sent);
        prop_assert_eq!(net.metrics().messages, sent);
        // Every delivery is addressed correctly: the message's sender tag is
        // a neighbor, the edge tag matches, and it crossed its own edge.
        for v in g.nodes() {
            for incoming in mail.inbox(v) {
                let (from_tag, edge_tag) = incoming.msg;
                prop_assert_eq!(from_tag as usize, incoming.from.index());
                prop_assert_eq!(edge_tag as usize, incoming.edge.index());
                prop_assert_eq!(g.other_endpoint(incoming.edge, incoming.from), v);
            }
        }
    }

    /// `broadcast` delivers one message per edge direction: 2m in total, and
    /// `deg(v)` into each node `v`.
    #[test]
    fn broadcast_conserves_messages(g in arb_graph()) {
        let mut net = Network::new(&g, Model::Local);
        let mail = net.broadcast(|v| v.index() as u64);
        prop_assert_eq!(mail.total(), 2 * g.m());
        prop_assert_eq!(net.metrics().messages, 2 * g.m() as u64);
        for v in g.nodes() {
            prop_assert_eq!(mail.inbox(v).len(), g.degree(v));
        }
    }

    /// Every `exchange`/`broadcast` call charges exactly one round, no matter
    /// how many (or few) messages move.
    #[test]
    fn one_round_per_call(g in arb_graph(), exchanges in 0usize..6, broadcasts in 0usize..6) {
        let mut net = Network::new(&g, Model::Local);
        for _ in 0..exchanges {
            net.exchange(|_| Vec::<(distgraph::EdgeId, u64)>::new());
        }
        for _ in 0..broadcasts {
            net.broadcast(|_| 1u8);
        }
        prop_assert_eq!(net.rounds(), (exchanges + broadcasts) as u64);
    }

    /// The CONGEST cap is enforced via `Payload::encoded_bits`: a broadcast
    /// of per-node values flags exactly the messages whose encoded size
    /// exceeds the bandwidth, and total bits equal the sum of encoded sizes.
    #[test]
    fn congest_cap_counts_oversized_payloads(
        (g, values) in arb_graph().prop_flat_map(|g| {
            let n = g.n();
            proptest::collection::vec(0u64..(1 << 20), n).prop_map(move |values| (g.clone(), values))
        }),
        bandwidth in 1u64..24,
    ) {
        let mut net = Network::new(&g, Model::Congest { bandwidth_bits: bandwidth });
        net.broadcast(|v: NodeId| values[v.index()]);
        let mut expected_violations = 0u64;
        let mut expected_bits = 0u64;
        let mut max_bits = 0u64;
        for v in g.nodes() {
            let bits = values[v.index()].encoded_bits() as u64;
            prop_assert_eq!(bits, bits_for(values[v.index()]) as u64);
            let degree = g.degree(v) as u64;
            expected_bits += bits * degree;
            if degree > 0 {
                max_bits = max_bits.max(bits);
            }
            if bits > bandwidth {
                expected_violations += degree;
            }
        }
        let metrics = net.metrics();
        prop_assert_eq!(metrics.congest_violations, expected_violations);
        prop_assert_eq!(metrics.total_bits, expected_bits);
        prop_assert_eq!(metrics.max_message_bits, max_bits);
    }

    /// The same payloads under LOCAL never flag violations: the cap is a
    /// property of the model, not of the payload.
    #[test]
    fn local_model_never_flags(g in arb_graph(), value in 0u64..u64::MAX) {
        let mut net = Network::new(&g, Model::Local);
        net.broadcast(|_| value);
        prop_assert_eq!(net.metrics().congest_violations, 0);
    }
}
