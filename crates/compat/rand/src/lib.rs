//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` API used by this workspace:
//! [`RngCore`], [`Rng`] (`gen_range`, `gen_bool`, `gen`), [`SeedableRng`]
//! and [`seq::SliceRandom`] (`shuffle`, `choose`). See
//! `crates/compat/README.md` for scope and caveats.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u32`/`u64`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from `Rng::gen`.
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
