//! Linial-style `O(Δ²)`-coloring in `O(log* n)` rounds.
//!
//! Every algorithm in the paper starts from a proper vertex coloring with
//! `poly(Δ)` colors computed in `O(log* n)` rounds from the unique
//! identifiers — this is the only place the `O(log* n)` term comes from.
//!
//! The color-reduction step is the classical polynomial construction: a
//! proper `m`-coloring is interpreted per node as a polynomial of degree at
//! most `t` over a prime field `F_q` with `q ≥ tΔ + 1` and `q^{t+1} ≥ m`; a
//! node picks an evaluation point on which it differs from all neighbors
//! (possible because two distinct degree-`t` polynomials agree on at most `t`
//! points, so at most `tΔ < q` points are blocked) and its new color is the
//! pair (point, value) from a palette of `q²` colors. Iterating `O(log* n)`
//! times brings the palette from `poly(n)` down to `O(Δ²)`.

use distgraph::{Graph, NodeId, VertexColoring};
use distsim::{IdAssignment, Network};

/// Result of the Linial coloring procedure.
#[derive(Debug, Clone)]
pub struct LinialResult {
    /// The proper vertex coloring produced.
    pub coloring: VertexColoring,
    /// The size of the final palette (`O(Δ²)`).
    pub palette: usize,
    /// Number of color-reduction iterations (each costs one round).
    pub iterations: u32,
}

/// Returns the smallest prime `≥ value`.
pub(crate) fn next_prime(value: u64) -> u64 {
    let mut candidate = value.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate += 1;
    }
}

pub(crate) fn is_prime(value: u64) -> bool {
    if value < 2 {
        return false;
    }
    if value.is_multiple_of(2) {
        return value == 2;
    }
    let mut d = 3u64;
    while d * d <= value {
        if value.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Chooses the polynomial degree `t` and field size `q` for reducing an
/// `m`-coloring on a graph of maximum degree `max_degree`:
/// the smallest `t ≥ 1` such that `q = nextprime(t·Δ + 1)` satisfies
/// `q^{t+1} ≥ m`.
fn choose_parameters(m: u64, max_degree: usize) -> (u32, u64) {
    let delta = max_degree.max(1) as u64;
    for t in 1..=64u32 {
        let q = next_prime(t as u64 * delta + 1);
        // q^{t+1} ≥ m, computed carefully to avoid overflow.
        let mut power: u128 = 1;
        let mut enough = false;
        for _ in 0..=t {
            power = power.saturating_mul(q as u128);
            if power >= m as u128 {
                enough = true;
                break;
            }
        }
        if enough {
            return (t, q);
        }
    }
    // Unreachable for any realistic m, but keep a safe fallback.
    (64, next_prime(64 * delta + 1))
}

/// Evaluates the polynomial whose coefficients are the base-`q` digits of
/// `color` (degree ≤ `t`) at the point `a`, modulo `q`.
fn eval_poly(color: u64, t: u32, q: u64, a: u64) -> u64 {
    let mut digits = Vec::with_capacity(t as usize + 1);
    let mut rest = color;
    for _ in 0..=t {
        digits.push(rest % q);
        rest /= q;
    }
    // Horner evaluation from the highest digit.
    let mut acc = 0u64;
    for &d in digits.iter().rev() {
        acc = (acc * a + d) % q;
    }
    acc
}

/// One Linial color-reduction step: from a proper coloring with palette `m`
/// to a proper coloring with palette `q²` where `q = nextprime(tΔ + 1)`.
/// Costs one communication round (each node broadcasts its current color).
pub fn reduction_step(
    graph: &Graph,
    colors: &[u64],
    palette: u64,
    net: &mut Network<'_>,
) -> (Vec<u64>, u64) {
    let max_degree = graph.max_degree();
    let (t, q) = choose_parameters(palette, max_degree);
    let new_palette = q * q;
    if new_palette >= palette {
        return (colors.to_vec(), palette);
    }
    // One round: everyone announces its current color.
    let mail = net.broadcast(|v| colors[v.index()]);
    let mut next = vec![0u64; graph.n()];
    for v in graph.nodes() {
        let my_color = colors[v.index()];
        let neighbor_colors: Vec<u64> = mail.inbox(v).iter().map(|m| m.msg).collect();
        // Find an evaluation point where v differs from every neighbor.
        let mut chosen = None;
        for a in 0..q {
            let mine = eval_poly(my_color, t, q, a);
            let clash = neighbor_colors
                .iter()
                .any(|&c| c != my_color && eval_poly(c, t, q, a) == mine);
            if !clash {
                chosen = Some((a, mine));
                break;
            }
        }
        let (a, value) = chosen.expect("a collision-free evaluation point exists because tΔ < q");
        next[v.index()] = a * q + value;
    }
    (next, new_palette)
}

/// Computes a proper `O(Δ²)`-coloring from the unique identifiers in
/// `O(log* n)` rounds (one round per reduction step).
pub fn linial_coloring(graph: &Graph, ids: &IdAssignment, net: &mut Network<'_>) -> LinialResult {
    let n = graph.n();
    if n == 0 {
        return LinialResult {
            coloring: VertexColoring::from_vec(vec![]),
            palette: 0,
            iterations: 0,
        };
    }
    let mut colors: Vec<u64> = graph.nodes().map(|v| ids.id(v) - 1).collect();
    let mut palette: u64 = ids.space().max(n as u64);
    if graph.max_degree() == 0 {
        // No edges: a single color suffices.
        return LinialResult {
            coloring: VertexColoring::from_vec(vec![0; n]),
            palette: 1,
            iterations: 0,
        };
    }
    let mut iterations = 0u32;
    for _ in 0..64 {
        let (next, next_palette) = reduction_step(graph, &colors, palette, net);
        if next_palette >= palette {
            break;
        }
        colors = next;
        palette = next_palette;
        iterations += 1;
    }
    let coloring = VertexColoring::from_vec(colors.iter().map(|&c| c as usize).collect());
    LinialResult {
        coloring,
        palette: palette as usize,
        iterations,
    }
}

/// Computes a proper edge coloring with `O(Δ̄²)` colors in `O(log* n)` rounds
/// by running the Linial procedure on the line graph.
///
/// Each line-graph round is simulated with two rounds of the original graph
/// (an edge's color is held by its endpoints, which relay adjacent edges'
/// colors); the relayed messages carry up to `deg` colors, which is fine in
/// the LOCAL model (and accounted, so CONGEST runs expose the violation
/// rather than hiding it).
pub fn linial_edge_coloring(
    graph: &Graph,
    ids: &IdAssignment,
    net: &mut Network<'_>,
) -> distgraph::EdgeColoring {
    if graph.m() == 0 {
        return distgraph::EdgeColoring::empty(0);
    }
    let line = graph.line_graph();
    // Unique edge identifiers from the endpoint identifiers.
    let space = ids.space();
    let edge_ids: Vec<u64> = graph
        .edges()
        .map(|e| {
            let (u, v) = graph.endpoints(e);
            let (a, b) = (ids.id(u).min(ids.id(v)), ids.id(u).max(ids.id(v)));
            (a - 1) * space + (b - 1) + 1
        })
        .collect();
    let line_ids = IdAssignment::from_vec(edge_ids);
    let mut line_net = net.child(&line);
    let result = linial_coloring(&line, &line_ids, &mut line_net);
    // Each line-graph round costs two rounds on the host graph; message sizes
    // are whatever the line-graph nodes sent (relayed by the endpoints).
    let line_metrics = line_net.metrics();
    net.charge_rounds(line_metrics.rounds);
    net.absorb_sequential(&distsim::Metrics {
        rounds: line_metrics.rounds,
        ..line_metrics
    });
    let mut coloring = distgraph::EdgeColoring::empty(graph.m());
    for e in graph.edges() {
        coloring.set(e, result.coloring.color(NodeId::new(e.index())));
    }
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;
    use distgraph::generators;
    use distsim::{IdAssignment, Model};
    use edgecolor_verify::{check_proper_edge_coloring, check_proper_vertex_coloring};

    #[test]
    fn prime_helper() {
        assert_eq!(next_prime(10), 11);
        assert_eq!(next_prime(11), 11);
        assert!(is_prime(101));
        assert!(!is_prime(100));
    }

    #[test]
    fn parameters_satisfy_constraints() {
        let (t, q) = choose_parameters(1_000_000, 10);
        assert!(q > t as u64 * 10);
        assert!((q as u128).pow(t + 1) >= 1_000_000);
        // Small palettes use t = 1.
        let (t1, q1) = choose_parameters(100, 10);
        assert_eq!(t1, 1);
        assert!(q1 * q1 >= 100);
    }

    #[test]
    fn eval_poly_is_consistent() {
        // color 5 with q = 3, t = 1: digits [2, 1] => polynomial 1·a + 2
        assert_eq!(eval_poly(5, 1, 3, 0), 2);
        assert_eq!(eval_poly(5, 1, 3, 1), 0);
        assert_eq!(eval_poly(5, 1, 3, 2), 1);
    }

    #[test]
    fn linial_produces_proper_coloring_with_small_palette() {
        let g = generators::random_regular(200, 6, 3).unwrap();
        let ids = IdAssignment::scattered(g.n(), 9);
        let mut net = Network::new(&g, Model::Local);
        let result = linial_coloring(&g, &ids, &mut net);
        check_proper_vertex_coloring(&g, &result.coloring).assert_ok();
        let delta = g.max_degree();
        assert!(
            result.palette <= 16 * delta * delta + 64,
            "palette {} too large for Δ = {delta}",
            result.palette
        );
        assert!(result.iterations >= 1);
        assert_eq!(net.rounds(), result.iterations as u64);
    }

    #[test]
    fn linial_on_large_id_space_still_terminates_quickly() {
        let g = generators::cycle(64);
        let ids = IdAssignment::scattered(64, 123);
        let mut net = Network::new(&g, Model::Local);
        let result = linial_coloring(&g, &ids, &mut net);
        check_proper_vertex_coloring(&g, &result.coloring).assert_ok();
        // Degree 2: palette should come down to O(1)-ish (≤ 49 with q ≤ 7).
        assert!(result.palette <= 64);
        // log* of n³ is tiny.
        assert!(result.iterations <= 8);
    }

    #[test]
    fn linial_handles_edgeless_and_empty_graphs() {
        let g = distgraph::Graph::from_edges(5, &[]).unwrap();
        let ids = IdAssignment::contiguous(5);
        let mut net = Network::new(&g, Model::Local);
        let result = linial_coloring(&g, &ids, &mut net);
        assert_eq!(result.palette, 1);
        assert_eq!(net.rounds(), 0);

        let empty = distgraph::Graph::from_edges(0, &[]).unwrap();
        let ids = IdAssignment::contiguous(0);
        let mut net = Network::new(&empty, Model::Local);
        let result = linial_coloring(&empty, &ids, &mut net);
        assert_eq!(result.palette, 0);
    }

    #[test]
    fn linial_in_congest_respects_bandwidth() {
        // Colors shrink towards O(Δ²), so messages stay small; the initial
        // identifier broadcast is within O(log n) bits as well.
        let g = generators::random_regular(128, 4, 1).unwrap();
        let ids = IdAssignment::scattered(g.n(), 2);
        let mut net = Network::new(&g, Model::congest_for(g.n()));
        let result = linial_coloring(&g, &ids, &mut net);
        check_proper_vertex_coloring(&g, &result.coloring).assert_ok();
        assert_eq!(net.metrics().congest_violations, 0);
    }

    #[test]
    fn linial_edge_coloring_is_proper_with_polynomial_palette() {
        let g = generators::random_regular(60, 5, 7).unwrap();
        let ids = IdAssignment::scattered(g.n(), 5);
        let mut net = Network::new(&g, Model::Local);
        let coloring = linial_edge_coloring(&g, &ids, &mut net);
        check_proper_edge_coloring(&g, &coloring).assert_ok();
        assert!(coloring.is_complete());
        let dbar = g.max_edge_degree();
        assert!(coloring.palette_size() <= 16 * dbar * dbar + 64);
        assert!(net.rounds() > 0);
    }
}
