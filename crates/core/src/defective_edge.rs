//! Generalized defective 2-edge coloring (Definition 5.1, Corollary 5.7).
//!
//! The divide-and-conquer workhorse of the paper: every edge is colored *red*
//! or *blue* so that, for the per-edge split parameters `λ_e ∈ [0, 1]`,
//!
//! * a red edge has at most `(1+ε)·λ_e·deg(e) + λ_e·β` red neighbors, and
//! * a blue edge has at most `(1+ε)·(1−λ_e)·deg(e) + (1−λ_e)·β` blue
//!   neighbors.
//!
//! The coloring is obtained from a generalized balanced edge orientation
//! (Definition 5.2, computed by [`compute_balanced_orientation`])
//! via Lemma 5.3: edges oriented from `U` to `V` become red, the others blue.

use crate::balanced_orientation::{compute_balanced_orientation, eta_for_lambda};
use crate::params::OrientationParams;
use distgraph::{BipartiteGraph, EdgeId, NodeId};
use distsim::Network;

/// The result of a generalized defective 2-edge coloring.
#[derive(Debug, Clone)]
pub struct DefectiveTwoColoring {
    /// `red[e] == true` if edge `e` is red (oriented from `U` to `V`).
    pub red: Vec<bool>,
    /// The multiplicative relaxation `1 + ε` is guaranteed with this `ε`.
    pub eps: f64,
    /// The additive relaxation: the red/blue defect bound uses `λ_e·β` and
    /// `(1−λ_e)·β` respectively, with this `β` (which equals **twice** the `β`
    /// of the underlying orientation, as in Lemma 5.3).
    pub beta: f64,
    /// Rounds charged for the computation.
    pub rounds: u64,
    /// Number of phases used by the underlying orientation algorithm.
    pub phases: u32,
}

impl DefectiveTwoColoring {
    /// Returns `true` if edge `e` is red.
    pub fn is_red(&self, e: EdgeId) -> bool {
        self.red[e.index()]
    }

    /// Number of red edges.
    pub fn red_count(&self) -> usize {
        self.red.iter().filter(|r| **r).count()
    }

    /// Number of blue edges.
    pub fn blue_count(&self) -> usize {
        self.red.len() - self.red_count()
    }
}

/// Computes a generalized `(1+ε, β)`-relaxed defective 2-edge coloring of the
/// 2-colored bipartite graph `bg` with per-edge parameters `lambda`
/// (Corollary 5.7).
///
/// The returned `β` is `2·β_orientation` as dictated by Lemma 5.3, where
/// `β_orientation` is the slack guaranteed by Theorem 5.6 for the chosen
/// parameter profile.
///
/// # Panics
///
/// Panics if `lambda.len()` differs from the number of edges or a `λ_e` is
/// outside `[0, 1]`.
pub fn defective_two_edge_coloring(
    bg: &BipartiteGraph,
    lambda: &[f64],
    params: &OrientationParams,
    net: &mut Network<'_>,
) -> DefectiveTwoColoring {
    let graph = bg.graph();
    assert_eq!(lambda.len(), graph.m(), "one lambda per edge");
    assert!(
        lambda.iter().all(|l| (0.0..=1.0).contains(l)),
        "lambda values must lie in [0, 1]"
    );

    let dbar = graph.max_edge_degree().max(1);
    let beta_orientation = params.beta_bound(dbar);
    let eps = params.eps;

    // Lemma 5.3 / Equation (3): the orientation threshold η_e induced by λ_e.
    let eta: Vec<f64> = graph
        .edges()
        .map(|e| {
            let (u, v) = bg.endpoints_uv(e);
            eta_for_lambda(
                graph.degree(u),
                graph.degree(v),
                graph.edge_degree(e),
                lambda[e.index()],
                eps,
                beta_orientation,
            )
        })
        .collect();

    let result = compute_balanced_orientation(bg, &eta, params, net);

    // Red = oriented from U to V, i.e. the head lies in V.
    let red: Vec<bool> = graph
        .edges()
        .map(|e| {
            let (_, v) = bg.endpoints_uv(e);
            result.orientation.head(e) == Some(v)
        })
        .collect();

    DefectiveTwoColoring {
        red,
        eps,
        beta: 2.0 * beta_orientation,
        rounds: result.rounds,
        phases: result.phases,
    }
}

/// Measures the actual defect of a red/blue edge 2-coloring relative to the
/// Definition 5.1 target: returns, over all edges, the maximum of
/// `defect(e) / ((1+ε)·λ'_e·deg(e) + λ'_e·β)` where `λ'_e` is `λ_e` for red
/// edges and `1 − λ_e` for blue ones (values `≤ 1` mean the bound holds).
pub fn measure_defect_ratio(
    bg: &BipartiteGraph,
    coloring: &DefectiveTwoColoring,
    lambda: &[f64],
) -> f64 {
    let graph = bg.graph();
    let mut worst: f64 = 0.0;
    for e in graph.edges() {
        let lam = if coloring.is_red(e) {
            lambda[e.index()]
        } else {
            1.0 - lambda[e.index()]
        };
        let same = graph
            .adjacent_edges(e)
            .into_iter()
            .filter(|&f| coloring.is_red(f) == coloring.is_red(e))
            .count() as f64;
        let allowed =
            (1.0 + coloring.eps) * lam * graph.edge_degree(e) as f64 + lam * coloring.beta;
        if allowed > 0.0 {
            worst = worst.max(same / allowed);
        } else if same > 0.0 {
            worst = worst.max(f64::INFINITY);
        }
    }
    worst
}

/// Convenience helper: the uniform split `λ_e = 1/2` used by the `O(Δ)`-edge
/// coloring algorithms of Section 6.
pub fn uniform_lambda(m: usize) -> Vec<f64> {
    vec![0.5; m]
}

/// Convenience helper: per-edge `λ_e` equal to the fraction of each edge's
/// list lying in the lower half of the color range `[lo, hi)`, as used by the
/// list coloring algorithm of Section 7.
pub fn lambda_from_lists(
    graph: &distgraph::Graph,
    lists: &distgraph::ListAssignment,
    lo: usize,
    mid: usize,
    hi: usize,
) -> Vec<f64> {
    graph
        .edges()
        .map(|e| lists.red_fraction(e, lo, mid, hi))
        .collect()
}

/// The defect of edge `e` under a red/blue split (number of same-colored
/// adjacent edges).
pub fn split_defect(graph: &distgraph::Graph, red: &[bool], e: EdgeId) -> usize {
    graph
        .adjacent_edges(e)
        .into_iter()
        .filter(|&f| red[f.index()] == red[e.index()])
        .count()
}

/// The maximum degree of a node restricted to red (or blue) edges; used by
/// callers that recurse on the two halves.
pub fn side_degree(graph: &distgraph::Graph, red: &[bool], v: NodeId, want_red: bool) -> usize {
    graph
        .neighbors(v)
        .iter()
        .filter(|nb| red[nb.edge.index()] == want_red)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{OrientationParams, ParamProfile};
    use distgraph::generators;
    use distsim::Model;
    use edgecolor_verify::check_relaxed_defective_two_coloring;

    fn color(
        bg: &BipartiteGraph,
        lambda: &[f64],
        eps: f64,
        profile: ParamProfile,
    ) -> DefectiveTwoColoring {
        let params = OrientationParams::new(eps, profile);
        let mut net = Network::new(bg.graph(), Model::Local);
        defective_two_edge_coloring(bg, lambda, &params, &mut net)
    }

    #[test]
    fn uniform_split_on_regular_graph_satisfies_definition_5_1() {
        let bg = generators::regular_bipartite(32, 8, 11).unwrap();
        let lambda = uniform_lambda(bg.graph().m());
        let coloring = color(&bg, &lambda, 0.5, ParamProfile::Practical);
        let report = check_relaxed_defective_two_coloring(
            bg.graph(),
            |e| coloring.is_red(e),
            |e| lambda[e.index()],
            coloring.eps,
            coloring.beta,
        );
        report.assert_ok();
        // both halves must be non-trivial on a regular graph
        assert!(coloring.red_count() > 0);
        assert!(coloring.blue_count() > 0);
    }

    #[test]
    fn defect_ratio_is_at_most_one_for_uniform_split() {
        let bg = generators::regular_bipartite(48, 12, 3).unwrap();
        let lambda = uniform_lambda(bg.graph().m());
        let coloring = color(&bg, &lambda, 0.5, ParamProfile::Practical);
        let ratio = measure_defect_ratio(&bg, &coloring, &lambda);
        assert!(ratio <= 1.0 + 1e-9, "defect ratio {ratio} exceeds 1");
    }

    #[test]
    fn paper_profile_satisfies_its_own_bound() {
        let bg = generators::regular_bipartite(20, 5, 9).unwrap();
        let lambda = uniform_lambda(bg.graph().m());
        let coloring = color(&bg, &lambda, 1.0, ParamProfile::Paper);
        let report = check_relaxed_defective_two_coloring(
            bg.graph(),
            |e| coloring.is_red(e),
            |e| lambda[e.index()],
            coloring.eps,
            coloring.beta,
        );
        report.assert_ok();
    }

    #[test]
    fn skewed_lambda_pushes_edges_to_one_side() {
        // λ_e = 1 means the red bound is the full degree (easy) while the blue
        // bound is 0 up to the additive term: edges should mostly end up red.
        let bg = generators::regular_bipartite(16, 6, 5).unwrap();
        let lambda = vec![1.0; bg.graph().m()];
        let coloring = color(&bg, &lambda, 0.5, ParamProfile::Practical);
        let report = check_relaxed_defective_two_coloring(
            bg.graph(),
            |e| coloring.is_red(e),
            |e| lambda[e.index()],
            coloring.eps,
            coloring.beta,
        );
        report.assert_ok();
        assert!(coloring.red_count() >= coloring.blue_count());
    }

    #[test]
    fn irregular_graphs_are_supported() {
        let bg = generators::random_bipartite(40, 40, 0.25, 17);
        if bg.graph().m() == 0 {
            return;
        }
        let lambda = uniform_lambda(bg.graph().m());
        let coloring = color(&bg, &lambda, 0.5, ParamProfile::Practical);
        let report = check_relaxed_defective_two_coloring(
            bg.graph(),
            |e| coloring.is_red(e),
            |e| lambda[e.index()],
            coloring.eps,
            coloring.beta,
        );
        report.assert_ok();
    }

    #[test]
    fn lambda_from_lists_matches_red_fraction() {
        let bg = generators::complete_bipartite(3, 3);
        let graph = bg.graph();
        let lists = distgraph::ListAssignment::full_palette(graph, 10);
        let lambda = lambda_from_lists(graph, &lists, 0, 5, 10);
        assert!(lambda.iter().all(|l| (*l - 0.5).abs() < 1e-12));
    }

    #[test]
    fn side_degree_and_split_defect_helpers() {
        let bg = generators::complete_bipartite(2, 2);
        let graph = bg.graph();
        let red = vec![true, true, false, false];
        let e0 = EdgeId::new(0);
        assert_eq!(split_defect(graph, &red, e0), 1);
        let v0 = NodeId::new(0);
        assert_eq!(
            side_degree(graph, &red, v0, true) + side_degree(graph, &red, v0, false),
            graph.degree(v0)
        );
    }

    #[test]
    #[should_panic(expected = "lambda values must lie in")]
    fn out_of_range_lambda_panics() {
        let bg = generators::complete_bipartite(2, 2);
        let params = OrientationParams::new(0.5, ParamProfile::Practical);
        let mut net = Network::new(bg.graph(), Model::Local);
        defective_two_edge_coloring(&bg, &vec![1.5; bg.graph().m()], &params, &mut net);
    }
}
