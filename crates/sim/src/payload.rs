//! Message payloads and their encoded size.
//!
//! The CONGEST model restricts every message to `O(log n)` bits, so the
//! simulator needs to know how large a message would be on the wire. The
//! [`Payload`] trait reports a conservative encoded size in bits for each
//! message; the [`Network`](crate::Network) uses it to account bandwidth and
//! to flag CONGEST violations.

use std::fmt::Debug;

/// A message that can be sent over an edge in one round.
///
/// Payloads are `'static` owned data: the fault-injection layer
/// ([`crate::FaultPlan`]) may hold a message back for several rounds, so a
/// message cannot borrow from the round that produced it. (`'static` is
/// also what lets the delivery path pool its per-worker arena buffers by
/// `TypeId` — see the flat-arena notes on [`crate::Network`]'s module.)
///
/// `encoded_bits` sits on the per-message hot path of every round; keep
/// implementations cheap and `#[inline]`.
pub trait Payload: Clone + Debug + 'static {
    /// A conservative upper bound on the number of bits needed to encode the
    /// message.
    fn encoded_bits(&self) -> usize;
}

/// Number of bits needed to write a non-negative integer (at least 1).
#[inline]
pub fn bits_for(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).max(1)
}

impl Payload for () {
    fn encoded_bits(&self) -> usize {
        1
    }
}

impl Payload for bool {
    fn encoded_bits(&self) -> usize {
        1
    }
}

macro_rules! impl_payload_uint {
    ($($ty:ty),*) => {
        $(impl Payload for $ty {
            #[inline]
            fn encoded_bits(&self) -> usize {
                bits_for(*self as u64)
            }
        })*
    };
}

impl_payload_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_payload_int {
    ($($ty:ty),*) => {
        $(impl Payload for $ty {
            #[inline]
            fn encoded_bits(&self) -> usize {
                // one sign bit plus the magnitude
                1 + bits_for(self.unsigned_abs() as u64)
            }
        })*
    };
}

impl_payload_int!(i8, i16, i32, i64, isize);

impl Payload for f64 {
    fn encoded_bits(&self) -> usize {
        64
    }
}

impl<T: Payload> Payload for Option<T> {
    fn encoded_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, Payload::encoded_bits)
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn encoded_bits(&self) -> usize {
        self.0.encoded_bits() + self.1.encoded_bits()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn encoded_bits(&self) -> usize {
        self.0.encoded_bits() + self.1.encoded_bits() + self.2.encoded_bits()
    }
}

impl<A: Payload, B: Payload, C: Payload, D: Payload> Payload for (A, B, C, D) {
    fn encoded_bits(&self) -> usize {
        self.0.encoded_bits()
            + self.1.encoded_bits()
            + self.2.encoded_bits()
            + self.3.encoded_bits()
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn encoded_bits(&self) -> usize {
        // length prefix plus the elements
        bits_for(self.len() as u64) + self.iter().map(Payload::encoded_bits).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn unsigned_payload_sizes() {
        assert_eq!(5u32.encoded_bits(), 3);
        assert_eq!(0usize.encoded_bits(), 1);
        assert_eq!(u64::MAX.encoded_bits(), 64);
    }

    #[test]
    fn signed_payload_sizes() {
        assert_eq!((-5i32).encoded_bits(), 1 + 3);
        assert_eq!(0i64.encoded_bits(), 2);
    }

    #[test]
    fn composite_payload_sizes() {
        assert_eq!((3u32, true).encoded_bits(), 2 + 1);
        assert_eq!(Some(3u32).encoded_bits(), 1 + 2);
        assert_eq!(None::<u32>.encoded_bits(), 1);
        let v = vec![1u32, 2, 3];
        assert_eq!(v.encoded_bits(), bits_for(3) + 1 + 2 + 2);
        assert_eq!(().encoded_bits(), 1);
        assert_eq!(true.encoded_bits(), 1);
        assert_eq!(1.5f64.encoded_bits(), 64);
        assert_eq!((1u8, 2u8, 3u8, 4u8).encoded_bits(), 1 + 2 + 2 + 3);
    }
}
