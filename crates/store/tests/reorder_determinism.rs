//! Reordering must not break the determinism or correctness contracts:
//! a BFS/RCM/degree-renumbered graph (round-tripped through a binary
//! snapshot) colors to a checker-clean coloring that is **bit-identical
//! across every `ExecutionPolicy`**, and — because `renumber_nodes`
//! preserves `EdgeId`s — that coloring is proper on the original graph too.

use distgraph::{generators, reorder_permutation, Graph, ReorderStrategy};
use distsim::IdAssignment;
use diststore::{LoadedSnapshot, Snapshot, SnapshotSource};
use edgecolor::{color_edges_local, ColoringParams, ExecutionPolicy};
use edgecolor_verify::{check_complete, check_palette_size, check_proper_edge_coloring};

fn policies() -> [ExecutionPolicy; 3] {
    [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::parallel(4),
        ExecutionPolicy::sharded(4, 2),
    ]
}

fn assert_reordered_coloring_contract(g: &Graph, strategy: ReorderStrategy) {
    let perm = reorder_permutation(g, strategy);
    let reordered = g.renumber_nodes(&perm);

    // Round-trip the reordered graph (permutation attached) through the
    // binary format before coloring: what the bench and any out-of-core
    // pipeline would actually execute on.
    let bytes = SnapshotSource::graph(&reordered)
        .with_permutation(&perm)
        .encode()
        .expect("encodes");
    let snapshot = Snapshot::from_bytes(bytes).expect("opens");
    let loaded = LoadedSnapshot::load(&snapshot).expect("materializes");
    assert_eq!(
        loaded.graph(),
        &reordered,
        "{}: lossy round-trip",
        strategy.name()
    );

    let ids = IdAssignment::scattered(loaded.graph().n(), 1);
    let mut colorings = Vec::new();
    for policy in policies() {
        let params = ColoringParams::new(0.5).with_policy(policy);
        let outcome = color_edges_local(loaded.graph(), &ids, &params).unwrap_or_else(|e| {
            panic!("{}: coloring failed under {policy:?}: {e}", strategy.name())
        });
        check_proper_edge_coloring(loaded.graph(), &outcome.coloring).assert_ok();
        check_complete(loaded.graph(), &outcome.coloring).assert_ok();
        check_palette_size(&outcome.coloring, 2 * loaded.graph().max_degree() - 1).assert_ok();
        colorings.push(outcome.coloring);
    }
    for other in &colorings[1..] {
        assert_eq!(
            &colorings[0],
            other,
            "{}: policies disagree on the reordered graph",
            strategy.name()
        );
    }

    // EdgeIds survived the renumbering, so the very same color vector must
    // be proper and complete on the *original* graph as well.
    check_proper_edge_coloring(g, &colorings[0]).assert_ok();
    check_complete(g, &colorings[0]).assert_ok();
}

#[test]
fn torus_colorings_survive_reordering_across_policies() {
    let g = generators::grid_torus(12, 9);
    for strategy in [
        ReorderStrategy::Degree,
        ReorderStrategy::Bfs,
        ReorderStrategy::Rcm,
    ] {
        assert_reordered_coloring_contract(&g, strategy);
    }
}

#[test]
fn power_law_colorings_survive_reordering_across_policies() {
    let g = generators::power_law(300, 2.5, 24, 7);
    for strategy in [
        ReorderStrategy::Degree,
        ReorderStrategy::Bfs,
        ReorderStrategy::Rcm,
    ] {
        assert_reordered_coloring_contract(&g, strategy);
    }
}

#[test]
fn random_regular_colorings_survive_reordering_across_policies() {
    let g = generators::random_regular(128, 6, 42).expect("generator succeeds");
    for strategy in [ReorderStrategy::Bfs, ReorderStrategy::Rcm] {
        assert_reordered_coloring_contract(&g, strategy);
    }
}
