//! Error type for the edge coloring algorithms.

use std::error::Error;
use std::fmt;

/// Errors returned by the public entry points of the `edgecolor` crate.
#[derive(Debug, Clone, PartialEq)]
pub enum ColoringError {
    /// A bipartite-only entry point was given a non-bipartite graph.
    NotBipartite,
    /// A list edge coloring instance violates the `(degree+1)` requirement
    /// (`|L_e| ≥ deg_G(e) + 1`).
    ListTooSmall {
        /// The dense index of the offending edge.
        edge: usize,
        /// The size of its list.
        list_size: usize,
        /// Its edge degree.
        degree: usize,
    },
    /// The color space is too large for the algorithm's assumptions
    /// (Theorem 1.1 requires a color space of size `poly(Δ)`).
    ColorSpaceTooLarge {
        /// The size of the supplied color space.
        space: usize,
        /// The maximum allowed size.
        allowed: usize,
    },
    /// A parameter was outside its admissible range (for example `ε ≤ 0`).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::NotBipartite => write!(f, "the input graph is not bipartite"),
            ColoringError::ListTooSmall { edge, list_size, degree } => write!(
                f,
                "edge e{edge} has a list of size {list_size} but edge degree {degree}; the (degree+1)-list condition requires at least {}",
                degree + 1
            ),
            ColoringError::ColorSpaceTooLarge { space, allowed } => {
                write!(f, "color space of size {space} exceeds the allowed poly(Δ) bound {allowed}")
            }
            ColoringError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
        }
    }
}

impl Error for ColoringError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ColoringError::NotBipartite
            .to_string()
            .contains("bipartite"));
        let e = ColoringError::ListTooSmall {
            edge: 3,
            list_size: 2,
            degree: 4,
        };
        assert!(e.to_string().contains("e3"));
        assert!(e.to_string().contains('5'));
        let e = ColoringError::ColorSpaceTooLarge {
            space: 100,
            allowed: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = ColoringError::InvalidParameter {
            name: "eps",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("eps"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error>() {}
        assert_error::<ColoringError>();
    }
}
