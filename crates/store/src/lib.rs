//! # diststore
//!
//! Out-of-core graph substrate for the reproduction of *Distributed Edge
//! Coloring in Time Polylogarithmic in Δ* (PODC 2022): versioned binary
//! snapshots of graphs, colorings, stable-id tables and node permutations,
//! with a zero-copy read path.
//!
//! Three ways to get a graph off disk, from slowest to fastest:
//!
//! 1. **Text parse** — [`read_edge_list`] through
//!    [`distgraph::Graph::from_edges`] (integer parsing, hashing, sorting);
//! 2. **Binary decode** — [`Snapshot::open`] + [`LoadedSnapshot::load`]
//!    through [`distgraph::Graph::from_csr_parts`] (validated `memcpy`-level
//!    decoding, no hashing or sorting);
//! 3. **Zero-copy open** — [`Snapshot::open`] + [`Snapshot::view`]: serve
//!    `degree`/`neighbors`/`endpoints`/`color` straight from the file bytes
//!    without materializing anything.
//!
//! The format (magic + version + checksummed section table, see
//! `docs/SNAPSHOTS.md`) is hand-rolled over `std`; every corruption mode
//! returns a typed [`SnapshotError`], never a panic — property-tested by the
//! corruption battery in `tests/`.
//!
//! # Examples
//!
//! ```
//! use diststore::{LoadedSnapshot, Snapshot, SnapshotSource};
//! use distgraph::{generators, reorder_permutation, ReorderStrategy};
//! use distsim::{ExecutionPolicy, Model};
//!
//! // Reorder for locality, snapshot with the permutation attached.
//! let g = generators::grid_torus(8, 8);
//! let perm = reorder_permutation(&g, ReorderStrategy::Rcm);
//! let reordered = g.renumber_nodes(&perm);
//! let bytes = SnapshotSource::graph(&reordered)
//!     .with_permutation(&perm)
//!     .encode()?;
//!
//! // Zero-copy: query without materializing.
//! let snap = Snapshot::from_bytes(bytes)?;
//! assert_eq!(snap.view().n(), 64);
//!
//! // Materialize and drive a simulator round.
//! let loaded = LoadedSnapshot::load(&snap)?;
//! let mut net = loaded.network(Model::Local, ExecutionPolicy::Sequential);
//! net.broadcast(|v| loaded.graph().degree(v) as u64);
//! assert_eq!(net.rounds(), 1);
//! # Ok::<(), diststore::SnapshotError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod format;
mod load;
mod text;
mod view;

pub use error::SnapshotError;
pub use format::{SnapshotSource, MAGIC, VERSION};
pub use load::{load_graph, LoadedSnapshot};
pub use text::{parse_edge_list, read_edge_list, write_edge_list};
pub use view::{Snapshot, SnapshotView, U32s};
