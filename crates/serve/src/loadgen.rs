//! Deterministic load generator: seeded read/write mixes whose *accounting*
//! is reproducible under any thread interleaving, any pipelining depth and
//! any client→graph spread.
//!
//! Timing-dependent quantities (qps, latency histograms, tick counts) vary
//! run to run, but every count the bench regression gate compares exactly —
//! ops, reads, inserts, deletes, accepted, rejected — is a pure function of
//! the config. The trick is partitioning the write universe by client over
//! each served `rows × cols` grid torus:
//!
//! * **Graph spread**: client `k` of `K` drives graph `k mod G` (all `G`
//!   tenants must serve the same torus shape). Within its graph it is slot
//!   `k div G` of the `ceil((K − g) / G)` clients on that graph, and the
//!   anchor partition below runs per graph — tenants share no write
//!   universe at all, so admission counts are independent per tenant.
//! * **Inserts** are *diagonal* pairs `(a, diag(a))` with
//!   `diag(r, c) = ((r+1) mod rows, (c+1) mod cols)`. A diagonal is never a
//!   torus edge, every anchor yields a distinct pair (both need
//!   `rows, cols ≥ 3`), and slot `s` of `S` only uses anchors
//!   `a ≡ s (mod S)` — so no two clients ever race for the same pair and
//!   every insert is admitted no matter how submissions interleave.
//! * **Deletes** target initial stable ids `s, s + S, s + 2S, …` (all
//!   `< 2·rows·cols`, i.e. original torus edges), each exactly once — again
//!   collision-free across clients, so every delete is admitted.
//! * Each client that inserted anything re-submits its **first** diagonal at
//!   the end, after its window fully drains; that pair is by then pending or
//!   live, so the daemon's typed
//!   [`RejectCode::DuplicateEdge`](crate::wire::RejectCode) answer is
//!   guaranteed — pinning the reject path end-to-end with a deterministic
//!   `rejected` count.
//!
//! Every connection is a [`PipelinedClient`] keeping up to `inflight`
//! requests outstanding (`inflight = 1` degenerates to strict
//! request-reply). Pipelining cannot perturb the counts: the daemon
//! preserves per-connection per-graph FIFO, and a client's own ops are
//! mutually conflict-free by construction.
//!
//! Backpressure ([`RejectCode::QueueFull`](crate::wire::RejectCode)) and
//! swap quiescing re-enqueue the op and are counted separately in
//! `retries`, which the regression contract ignores (host-dependent).
//!
//! Degree growth is bounded by construction: a node gains at most two
//! diagonal edges (once as anchor, once as target), so Δ never exceeds 6
//! and a daemon provisioned with Δ-headroom ≥ 2 never full-recolors —
//! making `repaired_edges` (= total inserts) and `full_recolors` (= 0)
//! exact too, per tenant.

use crate::client::{PipelinedClient, Ticket};
use crate::error::ClientError;
use crate::wire::{MetricsReport, RejectCode, Request, Response};
use distsim::faults::splitmix64;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-mix parameters. Every graph served by the daemon must be the
/// `rows × cols` grid torus with its initial stable ids (the state
/// [`Tenant::new`](crate::state::Tenant::new) boots into).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Torus rows (≥ 3).
    pub rows: usize,
    /// Torus columns (≥ 3).
    pub cols: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Operations each client issues (excluding the final deliberate
    /// duplicate).
    pub ops_per_client: usize,
    /// Reads per 1000 operations; the rest are writes.
    pub read_permille: u32,
    /// Seed of the op-mix stream.
    pub seed: u64,
    /// Served graphs to spread clients across (client `k` drives graph
    /// `k mod graphs`). Must not exceed `clients` or the daemon's tenant
    /// count.
    pub graphs: usize,
    /// Requests each connection keeps in flight (1 = strict
    /// request-reply).
    pub inflight: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            rows: 30,
            cols: 30,
            clients: 4,
            ops_per_client: 300,
            read_permille: 700,
            seed: 42,
            graphs: 1,
            inflight: 1,
        }
    }
}

/// Aggregated client-side accounting of one load run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadgenReport {
    /// Total operations issued (reads + writes + deliberate duplicates).
    pub ops: u64,
    /// Lookup requests issued.
    pub reads: u64,
    /// Write submissions issued (inserts + deletes, excluding duplicates).
    pub writes: u64,
    /// Insert submissions (all admitted).
    pub inserts: u64,
    /// Delete submissions (all admitted).
    pub deletes: u64,
    /// Submissions the daemon admitted.
    pub accepted: u64,
    /// Deliberate duplicate submissions the daemon rejected with
    /// `DuplicateEdge`.
    pub rejected: u64,
    /// Backpressure retries (queue full / swap in progress) — host
    /// dependent, ignored by the regression contract.
    pub retries: u64,
    /// Unexpected responses (0 on a correct daemon).
    pub errors: u64,
    /// Wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// `ops / wall` in operations per second.
    pub qps: f64,
}

#[derive(Debug, Default)]
struct ClientStats {
    ops: u64,
    reads: u64,
    inserts: u64,
    deletes: u64,
    accepted: u64,
    rejected: u64,
    retries: u64,
    errors: u64,
}

/// One client-side operation of the seeded mix.
#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Insert(u32, u32),
    Delete(u64),
}

impl Op {
    fn request(&self) -> Request {
        match *self {
            Op::Read(stable) => Request::Lookup { stable },
            Op::Insert(a, b) => Request::Submit {
                delete: vec![],
                insert: vec![(a, b)],
            },
            Op::Delete(sid) => Request::Submit {
                delete: vec![sid],
                insert: vec![],
            },
        }
    }
}

/// Replays the seeded mix against a running daemon and aggregates the
/// per-client accounting.
///
/// # Errors
///
/// [`ClientError`] if any client connection fails mid-run.
///
/// # Panics
///
/// Panics if `rows` or `cols` is below 3 (no valid torus), `clients` is 0,
/// or `graphs` is 0 or exceeds `clients`.
pub fn run_against(addr: SocketAddr, cfg: &LoadgenConfig) -> Result<LoadgenReport, ClientError> {
    assert!(
        cfg.rows >= 3 && cfg.cols >= 3,
        "loadgen needs a ≥3×≥3 torus"
    );
    assert!(cfg.clients > 0, "loadgen needs at least one client");
    assert!(
        cfg.graphs > 0 && cfg.graphs <= cfg.clients,
        "loadgen needs 1 ≤ graphs ≤ clients"
    );
    let started = Instant::now();
    let stats: Vec<Result<ClientStats, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| scope.spawn(move || run_client(addr, cfg, client)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut report = LoadgenReport {
        wall_ms,
        ..LoadgenReport::default()
    };
    for s in stats {
        let s = s?;
        report.ops += s.ops;
        report.reads += s.reads;
        report.inserts += s.inserts;
        report.deletes += s.deletes;
        report.accepted += s.accepted;
        report.rejected += s.rejected;
        report.retries += s.retries;
        report.errors += s.errors;
    }
    report.writes = report.inserts + report.deletes;
    report.qps = if wall_ms > 0.0 {
        report.ops as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    Ok(report)
}

/// Builds client `k`'s op list (a pure function of the config) plus its
/// deliberate duplicate pair, if it inserts anything.
fn ops_for_client(cfg: &LoadgenConfig, client: usize) -> (Vec<Op>, Option<(u32, u32)>) {
    let n = cfg.rows * cfg.cols;
    let m0 = 2 * n;
    let graph = client % cfg.graphs;
    let slot = client / cfg.graphs;
    // Clients on this graph: k ∈ {graph, graph + G, …} ∩ [0, clients).
    let stride = (cfg.clients - graph - 1) / cfg.graphs + 1;
    let insert_budget = if slot < n {
        (n - slot).div_ceil(stride)
    } else {
        0
    };
    let delete_budget = if slot < m0 {
        (m0 - slot).div_ceil(stride)
    } else {
        0
    };
    let diag = |a: usize| {
        let (r, c) = (a / cfg.cols, a % cfg.cols);
        ((r + 1) % cfg.rows) * cfg.cols + (c + 1) % cfg.cols
    };

    let mut ops = Vec::with_capacity(cfg.ops_per_client);
    let mut inserts_done = 0usize;
    let mut deletes_done = 0usize;
    for i in 0..cfg.ops_per_client {
        let z = splitmix64(cfg.seed ^ ((client as u64) << 40) ^ (i as u64));
        let mut read = z % 1000 < u64::from(cfg.read_permille);
        if !read {
            let want_insert = (inserts_done + deletes_done).is_multiple_of(2);
            if want_insert && inserts_done < insert_budget {
                let a = slot + inserts_done * stride;
                ops.push(Op::Insert(a as u32, diag(a) as u32));
                inserts_done += 1;
            } else if deletes_done < delete_budget {
                let sid = (slot + deletes_done * stride) as u64;
                ops.push(Op::Delete(sid));
                deletes_done += 1;
            } else if inserts_done < insert_budget {
                let a = slot + inserts_done * stride;
                ops.push(Op::Insert(a as u32, diag(a) as u32));
                inserts_done += 1;
            } else {
                // Both write budgets exhausted: degrade to a read so the op
                // count stays exact.
                read = true;
            }
        }
        if read {
            ops.push(Op::Read((z >> 10) % m0 as u64));
        }
    }
    let dup = (inserts_done > 0).then(|| (slot as u32, diag(slot) as u32));
    (ops, dup)
}

/// Deterministic expected admissions per served graph — a pure function of
/// the config, independent of interleaving and pipelining depth.
///
/// Entry `g` is `(accepted, duplicate_rejects, inserts)` for graph `g`:
/// after a flush, the tenant's [`MetricsReport`] must show exactly
/// `accepted` admissions (inserts + deletes on that graph) and exactly
/// `inserts` repaired edges (each admitted insert repairs one edge;
/// deletes repair nothing). `duplicate_rejects` counts the clients on that
/// graph that inserted at least once — exact client-side, but only a lower
/// bound on the tenant's `rejected` counter, which also absorbs
/// host-dependent backpressure rejects.
pub fn expected_counts(cfg: &LoadgenConfig) -> Vec<(u64, u64, u64)> {
    let mut per_graph = vec![(0u64, 0u64, 0u64); cfg.graphs];
    for client in 0..cfg.clients {
        let (ops, dup) = ops_for_client(cfg, client);
        let slot = &mut per_graph[client % cfg.graphs];
        for op in &ops {
            match op {
                Op::Insert(..) => {
                    slot.0 += 1;
                    slot.2 += 1;
                }
                Op::Delete(_) => slot.0 += 1,
                Op::Read(_) => {}
            }
        }
        if dup.is_some() {
            slot.1 += 1;
        }
    }
    per_graph
}

fn run_client(
    addr: SocketAddr,
    cfg: &LoadgenConfig,
    client: usize,
) -> Result<ClientStats, ClientError> {
    let graph = (client % cfg.graphs) as u32;
    let (ops, dup) = ops_for_client(cfg, client);
    let mut conn = PipelinedClient::connect(addr)?;
    let window = cfg.inflight.max(1);
    let mut s = ClientStats::default();

    let mut queue: VecDeque<Op> = ops.into();
    let mut pending: VecDeque<(Ticket, Op)> = VecDeque::new();
    while !queue.is_empty() || !pending.is_empty() {
        while pending.len() < window {
            let Some(op) = queue.pop_front() else { break };
            let ticket = conn.send(graph, &op.request())?;
            pending.push_back((ticket, op));
        }
        let Some((ticket, op)) = pending.pop_front() else {
            break;
        };
        let resp = conn.recv(ticket)?;
        complete(&mut s, &mut queue, op, resp);
    }

    // Deliberate duplicate: the first diagonal again, after the window has
    // fully drained — its pair is pending or live by now, so the typed
    // reject is guaranteed.
    if let Some((a, b)) = dup {
        loop {
            let ticket = conn.send(graph, &Op::Insert(a, b).request())?;
            match conn.recv(ticket)? {
                Response::Rejected {
                    code: RejectCode::DuplicateEdge,
                    ..
                } => {
                    s.rejected += 1;
                    break;
                }
                Response::Rejected {
                    code: RejectCode::QueueFull | RejectCode::SwapInProgress,
                    ..
                } => {
                    s.retries += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                _ => {
                    s.errors += 1;
                    break;
                }
            }
        }
        s.ops += 1;
    }
    Ok(s)
}

/// Folds one completed op into the stats; backpressure rejects re-enqueue
/// the op (its write universe is private to this client, so replaying it
/// later is always valid).
fn complete(s: &mut ClientStats, queue: &mut VecDeque<Op>, op: Op, resp: Response) {
    match (&op, resp) {
        (Op::Read(_), Response::Color { .. }) => {
            s.reads += 1;
            s.ops += 1;
        }
        (
            _,
            Response::Rejected {
                code: RejectCode::QueueFull | RejectCode::SwapInProgress,
                ..
            },
        ) => {
            s.retries += 1;
            std::thread::sleep(Duration::from_micros(200));
            queue.push_back(op);
        }
        (Op::Insert(..), Response::Submitted { .. }) => {
            s.inserts += 1;
            s.accepted += 1;
            s.ops += 1;
        }
        (Op::Delete(_), Response::Submitted { .. }) => {
            s.deletes += 1;
            s.accepted += 1;
            s.ops += 1;
        }
        _ => {
            s.errors += 1;
            s.ops += 1;
        }
    }
}

/// Convenience for smoke checks: a one-line summary of a report plus the
/// final server metrics of one tenant.
pub fn summary(report: &LoadgenReport, metrics: &MetricsReport) -> String {
    format!(
        "ops {} (reads {}, writes {}, dup-rejects {}) qps {:.0} | server: epoch {} version {} \
         ticks {} repaired {} full-recolors {} protocol-errors {} repair p50/p95/p99/p99.9 \
         {:.2}/{:.2}/{:.2}/{:.2} ms lookup p99 {:.3} ms",
        report.ops,
        report.reads,
        report.writes,
        report.rejected,
        report.qps,
        metrics.epoch,
        metrics.version,
        metrics.ticks,
        metrics.repaired_edges,
        metrics.full_recolors,
        metrics.protocol_errors,
        metrics.repair.p50_ms(),
        metrics.repair.p95_ms(),
        metrics.repair.p99_ms(),
        metrics.repair.p999_ms(),
        metrics.lookup.p99_ms(),
    )
}
